"""Benchmark regenerating Figure 10: community-size CDF and the k parameter sweep."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp_fig10


def test_fig10a_community_size_cdf(benchmark, bench_workload):
    result = run_once(benchmark, exp_fig10.run_size_cdf, workload=bench_workload)
    values = [row["CDF"] for row in result.rows]
    assert values == sorted(values)
    assert values[-1] == 1.0
    # Figure 10a shape: the vast majority of local communities are small.
    by_point = {row["Community size <="]: row["CDF"] for row in result.rows}
    assert by_point[32] > 0.9
    print("\n" + result.to_text())


def test_fig10b_k_sweep(benchmark, bench_workload):
    result = run_once(
        benchmark,
        exp_fig10.run_k_sweep,
        workload=bench_workload,
        k_values=(5, 20, 40),
        cnn_epochs=10,
        seed=1,
    )
    scores = {row["k"]: row["Overall F1-score"] for row in result.rows}
    assert set(scores) == {5, 20, 40}
    assert all(0.0 <= score <= 1.0 for score in scores.values())
    print("\n" + result.to_text())
