"""Benchmark regenerating Figure 11: F1 vs percentage of labeled edges."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp_fig11


def test_fig11_label_fraction_sweep(benchmark, bench_workload):
    result = run_once(
        benchmark,
        exp_fig11.run,
        workload=bench_workload,
        label_fractions=(0.05, 0.4, 0.8),
        cnn_epochs=10,
        seed=1,
    )
    by_key = {(row["Labeled %"], row["Algorithm"]): row["Overall F1"] for row in result.rows}

    # Figure 11 shape #1: ProbWP collapses at 5 % labels but recovers with more.
    assert by_key[(5, "ProbWP")] < by_key[(80, "ProbWP")]
    # Figure 11 shape #2: the best LoCEC variant beats ProbWP at every fraction.
    for percent in (5, 40, 80):
        best_locec = max(by_key[(percent, "LoCEC-CNN")], by_key[(percent, "LoCEC-XGB")])
        assert best_locec >= by_key[(percent, "ProbWP")] - 0.02
    # Figure 11 shape #3: supervised LoCEC beats ProbWP by a wide margin at 5 %.
    best_locec_5 = max(by_key[(5, "LoCEC-CNN")], by_key[(5, "LoCEC-XGB")])
    assert best_locec_5 > by_key[(5, "ProbWP")] + 0.1
    print("\n" + result.to_text())
