"""Benchmark regenerating Table VI: projected WeChat-scale running time."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import exp_table6


def test_table6_projected_runtime(benchmark):
    result = run_once(benchmark, exp_table6.run)
    row = result.rows[0]
    # With the paper-derived calibration the projection reproduces Table VI.
    assert row["Phase I"] == pytest.approx(46.5, rel=0.02)
    assert row["Total"] == pytest.approx(73.7, rel=0.02)
    print("\n" + result.to_text())


def test_table6_locally_calibrated(benchmark, bench_workload):
    result = run_once(
        benchmark,
        exp_table6.run,
        workload=bench_workload,
        calibrate_from_measurement=True,
        max_egos=60,
    )
    row = result.rows[0]
    # Locally calibrated projection must preserve the phase ordering
    # (Phase I dominates, Phase III is the cheapest per-pass phase).
    assert row["Phase I"] > row["Phase III"]
    print("\n" + result.to_text())
