"""Benchmark regenerating Figure 12: scalability (projected and locally measured)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp_fig12


def test_fig12_projected_scalability(benchmark):
    result = run_once(benchmark, exp_fig12.run)
    panel_a = [row["Total (h)"] for row in result.rows if row["Panel"] == "a"]
    panel_b = [row["Total (h)"] for row in result.rows if row["Panel"] == "b"]
    # Figure 12 shape: linear growth with input nodes, shrinkage with servers.
    assert panel_a == sorted(panel_a)
    assert panel_b == sorted(panel_b, reverse=True)
    assert panel_a[-1] > 1.8 * panel_a[-2]
    print("\n" + result.to_text())


def test_fig12_measured_worker_scaling(benchmark, bench_workload):
    result = run_once(
        benchmark,
        exp_fig12.run_measured,
        bench_workload,
        worker_counts=(1, 2, 4),
        max_egos=80,
    )
    makespans = [row["Phase I makespan (s)"] for row in result.rows]
    # More shards → the slowest shard gets smaller (or at least no larger).
    assert makespans[-1] <= makespans[0] * 1.1
    print("\n" + result.to_text())
