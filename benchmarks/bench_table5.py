"""Benchmark regenerating Table V: local community classification."""

from __future__ import annotations

from benchmarks.conftest import BENCH_CNN_EPOCHS, run_once
from repro.experiments import exp_table5


def test_table5_community_classification(benchmark, bench_workload):
    result = run_once(
        benchmark,
        exp_table5.run,
        workload=bench_workload,
        cnn_epochs=max(BENCH_CNN_EPOCHS, 45),
        seed=1,
    )
    overall = {
        row["Algorithm"]: row["F1-score"]
        for row in result.rows
        if row["Community Type"] == "Overall"
    }
    # Both community classifiers must clearly beat a random 3-class guess
    # (chance is ~0.33 on three balanced classes).
    assert overall["LoCEC-XGB"] > 0.5
    assert overall["LoCEC-CNN"] > 0.45
    print("\n" + result.to_text())
