"""Benchmark regenerating Figure 14: social-advertising click and interact rates."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp_fig14


def test_fig14_social_advertising(benchmark, bench_workload):
    # Ground-truth labels are used for targeting to keep the benchmark focused
    # on the advertising simulation itself (the LoCEC-CNN-predicted variant is
    # exercised by the fig13 benchmark and the examples).
    result = run_once(
        benchmark,
        exp_fig14.run,
        workload=bench_workload,
        use_predicted_labels=False,
        num_seeds=30,
        audience_size=25,
        seed=1,
    )
    by_key = {
        (row["Ad Category"], row["Policy"]): row for row in result.rows
    }
    # Figure 14 shape: LoCEC targeting matches or beats Relation on click rate
    # and beats it on interact rate for both ad categories.
    for category in ("furniture", "mobile_game"):
        locec = by_key[(category, "LoCEC-CNN")]
        relation = by_key[(category, "Relation")]
        assert locec["Click Rate (%)"] >= relation["Click Rate (%)"] * 0.9
        assert locec["Interact Rate (%)"] >= relation["Interact Rate (%)"]
    print("\n" + result.to_text())
