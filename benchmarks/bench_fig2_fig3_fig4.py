"""Benchmarks regenerating the Section II analyses: Figures 2, 3 and 4."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp_fig2, exp_fig3, exp_fig4


def test_fig2_common_group_cdf(benchmark, bench_workload):
    result = run_once(benchmark, exp_fig2.run, workload=bench_workload)
    zero_row = result.rows[0]
    # Figure 2 shape: family pairs share the fewest common groups, colleagues the most.
    assert zero_row["Family members"] > zero_row["Colleagues"]
    last_row = result.rows[-1]
    assert last_row["Colleagues"] > 0.95
    print("\n" + result.to_text())


def test_fig3_moments_interaction_rates(benchmark, bench_workload):
    result = run_once(benchmark, exp_fig3.run, workload=bench_workload)
    like_rows = {
        row["Relationship"]: row for row in result.rows if row["Behaviour"] == "like"
    }
    # Figure 3 shape: pictures dominate; schoolmates lead on games; colleagues
    # like articles more than family members do.
    for row in like_rows.values():
        assert row["Pictures"] >= row["Games"]
    assert like_rows["Schoolmates"]["Games"] > like_rows["Colleague"]["Games"]
    assert like_rows["Colleague"]["Articles"] > like_rows["Family Members"]["Articles"]
    print("\n" + result.to_text())


def test_fig4_interaction_cdf(benchmark, bench_workload):
    result = run_once(benchmark, exp_fig4.run, workload=bench_workload)
    zero_row = result.rows[0]
    # Figure 4 shape: a large silent mass at zero for every type (~0.5–0.7).
    for column in ("Family members", "Colleagues", "Schoolmates"):
        assert 0.4 <= zero_row[column] <= 0.8
    print("\n" + result.to_text())
