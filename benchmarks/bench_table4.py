"""Benchmark regenerating Table IV: edge classification for all five methods."""

from __future__ import annotations

from benchmarks.conftest import BENCH_CNN_EPOCHS, run_once
from repro.experiments import exp_table4
from repro.experiments.common import EDGE_METHODS


def test_table4_relationship_classification(benchmark, bench_workload):
    result = run_once(
        benchmark,
        exp_table4.run,
        workload=bench_workload,
        cnn_epochs=BENCH_CNN_EPOCHS,
        seed=1,
    )
    overall = {
        row["Algorithm"]: row["F1-score"]
        for row in result.rows
        if row["Community Type"] == "Overall"
    }
    assert set(overall) == set(EDGE_METHODS)
    # Table IV headline shape: the LoCEC variants beat every baseline, and the
    # raw-feature XGBoost baseline is the weakest supervised method.
    best_locec = max(overall["LoCEC-CNN"], overall["LoCEC-XGB"])
    assert best_locec > overall["ProbWP"]
    assert best_locec > overall["Economix"]
    assert best_locec > overall["XGBoost"]
    assert overall["LoCEC-XGB"] > overall["XGBoost"]
    print("\n" + result.to_text())
