"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper on a small
synthetic workload.  The workload (and its expensive Phase I division) is
built once per session and shared across benchmark files, so the timings
reported per benchmark reflect the experiment itself rather than repeated
dataset generation.
"""

from __future__ import annotations

import pytest

from repro.synthetic import make_workload

BENCH_SCALE = "tiny"
BENCH_SEED = 1
#: Reduced CommCNN epochs so the full benchmark suite stays within minutes.
BENCH_CNN_EPOCHS = 30


@pytest.fixture(scope="session")
def bench_workload():
    """The shared benchmark workload (synthetic WeChat-like network + survey)."""
    workload = make_workload(BENCH_SCALE, seed=BENCH_SEED)
    # Pre-compute and cache the Phase I division so individual benchmarks
    # measure their own phase, not community detection over and over.
    workload.division()
    return workload


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
