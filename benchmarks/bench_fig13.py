"""Benchmark regenerating Figure 13: predicted type distributions at network level."""

from __future__ import annotations

from benchmarks.conftest import BENCH_CNN_EPOCHS, run_once
from repro.experiments import exp_fig13


def test_fig13_type_distributions(benchmark, bench_workload):
    result = run_once(
        benchmark,
        exp_fig13.run,
        workload=bench_workload,
        cnn_epochs=BENCH_CNN_EPOCHS,
        seed=1,
    )
    shares = {
        (row["Level"], row["Type"]): row["Share"] for row in result.rows
    }
    community_total = sum(v for (level, _), v in shares.items() if level == "community")
    edge_total = sum(v for (level, _), v in shares.items() if level == "relationship")
    assert abs(community_total - 1.0) < 1e-6
    assert abs(edge_total - 1.0) < 1e-6
    # Figure 13 shape: colleagues and family members dominate at both levels,
    # with colleagues the single largest relationship-level share.
    assert shares[("relationship", "Colleague")] >= shares[("relationship", "Schoolmates")]
    assert (
        shares[("community", "Colleague")] + shares[("community", "Family Members")]
        > 0.5
    )
    print("\n" + result.to_text())
