"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Phase I detector: Girvan–Newman vs label propagation vs Louvain.
* CommCNN kernel set: all three branches vs square-only.
* Feature-matrix row ordering: tightness-ordered vs arbitrary ordering.
* Phase III combiner: learned logistic regression vs the naive agreement rule.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core import (
    CNNCommunityClassifier,
    CommCNNConfig,
    EdgeLabelIndex,
    FeatureMatrixBuilder,
    LoCEC,
    LoCECConfig,
    divide,
    labeled_communities,
)
from repro.ml.metrics import accuracy, classification_report
from repro.ml.preprocessing import train_test_split_indices


def test_ablation_community_detector(benchmark, bench_workload):
    """Detector quality: GN/Louvain should produce communities at least as
    label-pure as the much cheaper label-propagation alternative."""
    dataset = bench_workload.dataset
    label_index = EdgeLabelIndex(bench_workload.labeled_edges)
    egos = list(dataset.graph.nodes())[:60]

    def run_all() -> dict[str, float]:
        purities: dict[str, float] = {}
        for detector in ("girvan_newman", "label_propagation", "louvain"):
            division = divide(dataset.graph, egos=egos, detector=detector)
            scores: list[float] = []
            for community in division.all_communities():
                labels = [
                    label_index.get(community.ego, member)
                    for member in community.members
                ]
                known = [label for label in labels if label is not None]
                if len(known) < 2:
                    continue
                top = max(known.count(value) for value in set(known))
                scores.append(top / len(known))
            purities[detector] = float(np.mean(scores)) if scores else 0.0
        return purities

    purities = run_once(benchmark, run_all)
    assert purities["girvan_newman"] > 0.7
    assert purities["girvan_newman"] >= purities["label_propagation"] - 0.05
    print("\ncommunity label purity per detector:", purities)


def _community_split(bench_workload):
    dataset = bench_workload.dataset
    division = bench_workload.division()
    label_index = EdgeLabelIndex(bench_workload.labeled_edges)
    communities, labels = labeled_communities(division, label_index)
    labels = np.asarray(labels)
    train_idx, test_idx = train_test_split_indices(
        len(communities), test_fraction=0.25, seed=3, stratify=labels
    )
    builder = FeatureMatrixBuilder(dataset.features, dataset.interactions, k=20)
    return builder, communities, labels, train_idx, test_idx


def test_ablation_commcnn_kernels(benchmark, bench_workload):
    """Kernel ablation: the full square+wide+long CommCNN vs square-only."""
    builder, communities, labels, train_idx, test_idx = _community_split(bench_workload)
    config = CommCNNConfig(epochs=12, seed=0)

    def run_all() -> dict[str, float]:
        scores: dict[str, float] = {}
        variants = {
            "all_kernels": {},
            "square_only": {
                "include_wide_branch": False,
                "include_long_branch": False,
            },
        }
        for name, toggles in variants.items():
            classifier = CNNCommunityClassifier(builder, config=config, **toggles)
            classifier.fit(
                [communities[i] for i in train_idx], labels[train_idx].tolist()
            )
            predictions = classifier.predict([communities[i] for i in test_idx])
            scores[name] = accuracy(labels[test_idx], predictions)
        return scores

    scores = run_once(benchmark, run_all)
    assert scores["all_kernels"] > 0.4
    print("\ncommunity accuracy per kernel set:", scores)


def test_ablation_tightness_ordering(benchmark, bench_workload):
    """Row-ordering ablation: tightness-ordered truncation vs arbitrary order.

    Measured as classification accuracy of the CommCNN community classifier;
    tightness ordering should never be substantially worse.
    """
    builder, communities, labels, train_idx, test_idx = _community_split(bench_workload)
    config = CommCNNConfig(epochs=12, seed=0)

    def run_both() -> dict[str, float]:
        scores: dict[str, float] = {}
        # Ordered (paper) variant.
        ordered = CNNCommunityClassifier(builder, config=config)
        ordered.fit([communities[i] for i in train_idx], labels[train_idx].tolist())
        scores["tightness_ordered"] = accuracy(
            labels[test_idx], ordered.predict([communities[i] for i in test_idx])
        )
        # Arbitrary-order variant: neutralise tightness by overwriting it with a
        # constant, so members_by_tightness falls back to an arbitrary (repr) order.
        from dataclasses import replace

        def scramble(community):
            return replace(
                community, tightness={node: 0.5 for node in community.members}
            )

        scrambled = [scramble(community) for community in communities]
        arbitrary = CNNCommunityClassifier(builder, config=config)
        arbitrary.fit([scrambled[i] for i in train_idx], labels[train_idx].tolist())
        scores["arbitrary_order"] = accuracy(
            labels[test_idx], arbitrary.predict([scrambled[i] for i in test_idx])
        )
        return scores

    scores = run_once(benchmark, run_both)
    assert scores["tightness_ordered"] >= scores["arbitrary_order"] - 0.1
    print("\ncommunity accuracy per row ordering:", scores)


def test_ablation_combination_rule(benchmark, bench_workload):
    """Phase III ablation: learned LR combiner vs the naive agreement rule."""
    dataset = bench_workload.dataset
    config = LoCECConfig.locec_xgb(seed=1)
    config.gbdt.num_rounds = 15
    pipeline = LoCEC(config)
    pipeline.fit(
        dataset.graph,
        dataset.features,
        dataset.interactions,
        bench_workload.train_edges,
        division=bench_workload.division(),
    )
    test_edges = [item.edge for item in bench_workload.test_edges]
    y_true = np.array([int(item.label) for item in bench_workload.test_edges])

    def run_both() -> dict[str, float]:
        learned = np.array([int(x) for x in pipeline.predict_edges(test_edges)])
        naive = pipeline.agreement_rule_predictions(test_edges)
        return {
            "logistic_regression": classification_report(y_true, learned).overall.f1,
            "agreement_rule": classification_report(y_true, naive).overall.f1,
        }

    scores = run_once(benchmark, run_both)
    assert scores["logistic_regression"] >= scores["agreement_rule"] - 0.05
    print("\nedge F1 per combination rule:", scores)
