"""Benchmark the CSR kernel layer against the dict-backend reference.

Complements ``scripts/perf_report.py`` (which emits ``BENCH_kernels.json``
for the regression gate) with pytest-benchmark timings that slot into the
same harness as the paper-figure benchmarks.  Each benchmark asserts result
parity, so a kernel that silently diverges fails here before it wins any
speed contest.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, run_once
from repro.community.betweenness import edge_betweenness
from repro.core.aggregation import FeatureMatrixBuilder
from repro.core.commcnn import build_commcnn_classifier
from repro.core.config import CommCNNConfig, LoCECConfig
from repro.core.division import divide
from repro.core.pipeline import LoCEC
from repro.graph.csr import CSRGraph, edge_betweenness_csr, ego_network_csr
from repro.graph.ego import ego_network
from repro.graph.shm import SharedCSRGraph, shm_supported
from repro.ml.gbdt import GradientBoostedClassifier
from repro.serve import ServingSession, replay_traffic
from repro.synthetic import make_workload


def test_ego_extraction_csr(benchmark, bench_workload):
    graph = bench_workload.dataset.graph
    csr = CSRGraph.from_graph(graph)
    nodes = list(graph.nodes())

    def extract_all():
        return [ego_network_csr(csr, ego) for ego in nodes]

    nets = run_once(benchmark, extract_all)
    assert nets[0] == ego_network(graph, nodes[0])


def test_edge_betweenness_csr(benchmark, bench_workload):
    graph = bench_workload.dataset.graph
    nets = [ego_network(graph, ego) for ego in list(graph.nodes())[:40]]

    def betweenness_all():
        return [edge_betweenness_csr(net) for net in nets]

    values = run_once(benchmark, betweenness_all)
    reference = edge_betweenness(nets[0])
    assert all(abs(values[0][e] - reference[e]) < 1e-9 for e in reference)


def test_phase1_division_dict(benchmark, bench_workload):
    graph = bench_workload.dataset.graph
    result = run_once(benchmark, lambda: divide(graph, backend="dict"))
    assert result.num_egos == graph.num_nodes


def test_phase1_division_csr(benchmark, bench_workload):
    graph = bench_workload.dataset.graph
    result = run_once(benchmark, lambda: divide(graph, backend="csr"))
    reference = bench_workload.division()
    assert result.num_communities == reference.num_communities


def test_graph_transport_pickle(benchmark, bench_workload):
    """Per-worker graph receive cost under pickle transport: a full copy."""
    graph = bench_workload.dataset.graph
    payload = pickle.dumps(graph, pickle.HIGHEST_PROTOCOL)
    received = run_once(benchmark, lambda: pickle.loads(payload))
    assert list(received.nodes()) == list(graph.nodes())


def test_graph_transport_shm(benchmark, bench_workload):
    """Per-worker receive cost under shm transport: unpickle an O(1) handle
    and attach the published segments — no graph bytes cross the pipe."""
    if not shm_supported():
        pytest.skip("POSIX shared memory unavailable")
    csr = CSRGraph.from_graph(bench_workload.dataset.graph)
    lease = SharedCSRGraph.publish(csr)
    try:
        payload = pickle.dumps(lease.handle, pickle.HIGHEST_PROTOCOL)

        def receive():
            attached = pickle.loads(payload).attach()
            num_nodes = attached.num_nodes
            attached.close()
            return num_nodes

        assert run_once(benchmark, receive) == csr.num_nodes
    finally:
        lease.close()


def _phase2_builders(bench_workload):
    dataset = bench_workload.dataset
    dict_builder = FeatureMatrixBuilder(
        dataset.features, dataset.interactions, k=20, backend="dict"
    )
    csr_builder = FeatureMatrixBuilder(
        dataset.features, dataset.interactions, k=20, backend="csr"
    )
    communities = list(bench_workload.division().all_communities())
    return dict_builder, csr_builder, communities


def test_phase2_feature_matrices_dict(benchmark, bench_workload):
    dict_builder, _, communities = _phase2_builders(bench_workload)
    matrices = run_once(benchmark, lambda: dict_builder.feature_matrices(communities))
    assert len(matrices) == len(communities)


def test_phase2_feature_matrices_csr(benchmark, bench_workload):
    dict_builder, csr_builder, communities = _phase2_builders(bench_workload)
    csr_builder.feature_matrices(communities[:1])  # compile outside timing
    matrices = run_once(benchmark, lambda: csr_builder.feature_matrices(communities))
    reference = dict_builder.feature_matrix(communities[0])
    assert matrices[0].member_order == reference.member_order
    assert np.array_equal(matrices[0].matrix, reference.matrix)


def test_phase2_statistic_vectors_dict(benchmark, bench_workload):
    dict_builder, _, communities = _phase2_builders(bench_workload)
    design = run_once(benchmark, lambda: dict_builder.statistic_vectors(communities))
    assert design.shape[0] == len(communities)


def test_phase2_statistic_vectors_csr(benchmark, bench_workload):
    dict_builder, csr_builder, communities = _phase2_builders(bench_workload)
    csr_builder.statistic_vectors(communities[:1])  # compile outside timing
    design = run_once(benchmark, lambda: csr_builder.statistic_vectors(communities))
    assert np.array_equal(design[0], dict_builder.statistic_vector(communities[0]))


def test_phase2_statistic_vectors_sharded(benchmark, bench_workload):
    """Sharded Phase II statistic vectors (in-process slice-and-merge).

    Times the full sharded path — LPT partition, per-shard kernel calls,
    positional merge — and asserts bit-identity against the serial CSR
    builder.  The multi-worker *projection* lives in
    ``scripts/perf_report.py`` (``phase2_sharded_dense_workers``), which
    reports the runner's LPT makespan instead of local wall-clock.
    """
    dataset = bench_workload.dataset
    serial_builder = FeatureMatrixBuilder(
        dataset.features, dataset.interactions, k=20, backend="csr"
    )
    communities = list(bench_workload.division().all_communities())
    with FeatureMatrixBuilder(
        dataset.features,
        dataset.interactions,
        k=20,
        backend="csr",
        phase2_workers=1,
        phase2_shards=4,
    ) as sharded_builder:
        sharded_builder.statistic_vectors(communities[:1])  # compile outside timing
        design = run_once(
            benchmark, lambda: sharded_builder.statistic_vectors(communities)
        )
        assert np.array_equal(design, serial_builder.statistic_vectors(communities))


def test_phase2_tensor_sharded(benchmark, bench_workload):
    """Sharded CommCNN tensor emission, bit-identical to the serial builder."""
    dataset = bench_workload.dataset
    serial_builder = FeatureMatrixBuilder(
        dataset.features, dataset.interactions, k=20, backend="csr"
    )
    communities = list(bench_workload.division().all_communities())
    with FeatureMatrixBuilder(
        dataset.features,
        dataset.interactions,
        k=20,
        backend="csr",
        phase2_workers=1,
        phase2_shards=4,
    ) as sharded_builder:
        sharded_builder.matrices_as_tensor(communities[:1])  # compile outside timing
        tensor = run_once(
            benchmark, lambda: sharded_builder.matrices_as_tensor(communities)
        )
        assert np.array_equal(tensor, serial_builder.matrices_as_tensor(communities))


def _model_design(bench_workload):
    """Statistic-vector design matrix + deterministic labels for GBDT timing."""
    _, csr_builder, communities = _phase2_builders(bench_workload)
    design = csr_builder.statistic_vectors(communities)
    labels = np.arange(len(communities)) % 3
    return design, labels


def test_gbdt_fit_node(benchmark, bench_workload):
    design, labels = _model_design(bench_workload)
    model = run_once(
        benchmark,
        lambda: GradientBoostedClassifier(
            num_rounds=10, num_classes=3, backend="node"
        ).fit(design, labels),
    )
    assert model.num_trees == 30


def test_gbdt_fit_array(benchmark, bench_workload):
    design, labels = _model_design(bench_workload)
    model = run_once(
        benchmark,
        lambda: GradientBoostedClassifier(
            num_rounds=10, num_classes=3, backend="array"
        ).fit(design, labels),
    )
    assert model.forest_ is not None


def test_gbdt_fit_hist(benchmark, bench_workload):
    design, labels = _model_design(bench_workload)
    model = run_once(
        benchmark,
        lambda: GradientBoostedClassifier(
            num_rounds=10, num_classes=3, backend="hist"
        ).fit(design, labels),
    )
    assert model.forest_ is not None
    # The hist search is approximate where features exceed max_bins distinct
    # values, so assert model quality (train loss), not bit equality — the
    # exactness-regime bit parity lives in tests/test_ml_hist.py.
    reference = GradientBoostedClassifier(
        num_rounds=10, num_classes=3, backend="array"
    ).fit(design, labels)
    assert model.train_loss_history_[-1] <= reference.train_loss_history_[-1] * 1.25


def test_forest_predict_node(benchmark, bench_workload):
    design, labels = _model_design(bench_workload)
    model = GradientBoostedClassifier(
        num_rounds=10, num_classes=3, backend="node"
    ).fit(design, labels)
    proba, _ = run_once(
        benchmark, lambda: (model.predict_proba(design), model.leaf_values(design))
    )
    assert proba.shape == (design.shape[0], 3)


def test_forest_predict_array(benchmark, bench_workload):
    design, labels = _model_design(bench_workload)
    node_model = GradientBoostedClassifier(
        num_rounds=10, num_classes=3, backend="node"
    ).fit(design, labels)
    array_model = GradientBoostedClassifier(
        num_rounds=10, num_classes=3, backend="array"
    ).fit(design, labels)
    proba, leaves = run_once(
        benchmark,
        lambda: (array_model.predict_proba(design), array_model.leaf_values(design)),
    )
    assert np.array_equal(proba, node_model.predict_proba(design))
    assert np.array_equal(leaves, node_model.leaf_values(design))


def test_commcnn_tensor_dict(benchmark, bench_workload):
    dict_builder, _, communities = _phase2_builders(bench_workload)
    tensor = run_once(benchmark, lambda: dict_builder.matrices_as_tensor(communities))
    assert tensor.shape[0] == len(communities)


def test_commcnn_tensor_csr(benchmark, bench_workload):
    dict_builder, csr_builder, communities = _phase2_builders(bench_workload)
    csr_builder.matrices_as_tensor(communities[:1])  # compile outside timing
    tensor = run_once(benchmark, lambda: csr_builder.matrices_as_tensor(communities))
    assert np.array_equal(tensor, dict_builder.matrices_as_tensor(communities))


def _commcnn_problem(bench_workload):
    """CNN input tensor + deterministic labels for the CommCNN kernel pair."""
    _, csr_builder, communities = _phase2_builders(bench_workload)
    tensor = csr_builder.matrices_as_tensor(communities)
    labels = np.arange(tensor.shape[0]) % 3
    config = CommCNNConfig(epochs=4)
    return tensor, labels, csr_builder.num_columns, config


def _commcnn_fit(tensor, labels, num_columns, config, backend):
    config = replace(config, nn_backend=backend)
    clf = build_commcnn_classifier(20, num_columns, 3, config=config)
    return clf.fit(tensor, labels)


def test_commcnn_fit_loop(benchmark, bench_workload):
    tensor, labels, num_columns, config = _commcnn_problem(bench_workload)
    clf = run_once(
        benchmark, lambda: _commcnn_fit(tensor, labels, num_columns, config, "loop")
    )
    assert clf.backend_used_ == "loop"


def test_commcnn_fit_fused(benchmark, bench_workload):
    tensor, labels, num_columns, config = _commcnn_problem(bench_workload)
    clf = run_once(
        benchmark, lambda: _commcnn_fit(tensor, labels, num_columns, config, "fused")
    )
    reference = _commcnn_fit(tensor, labels, num_columns, config, "loop")
    assert clf.loss_history_ == reference.loss_history_
    for (_, fused_param, _), (_, loop_param, _) in zip(
        clf.model.parameters(), reference.model.parameters()
    ):
        assert np.array_equal(fused_param, loop_param)


def test_commcnn_predict_loop(benchmark, bench_workload):
    tensor, labels, num_columns, config = _commcnn_problem(bench_workload)
    clf = _commcnn_fit(tensor, labels, num_columns, config, "loop")
    proba = run_once(benchmark, lambda: clf.predict_proba(tensor))
    assert proba.shape == (tensor.shape[0], 3)


def test_commcnn_predict_fused(benchmark, bench_workload):
    tensor, labels, num_columns, config = _commcnn_problem(bench_workload)
    loop_clf = _commcnn_fit(tensor, labels, num_columns, config, "loop")
    fused_clf = _commcnn_fit(tensor, labels, num_columns, config, "fused")
    fused_clf.predict_proba(tensor)  # grow inference workspaces outside timing
    proba = run_once(benchmark, lambda: fused_clf.predict_proba(tensor))
    assert np.array_equal(proba, loop_clf.predict_proba(tensor))


# The serving benchmarks build private workloads: ``apply_updates`` and the
# replay driver mutate the graph/stores and splice the division in place,
# which would corrupt the session-scoped ``bench_workload``.
def _serving_fit(workload):
    config = LoCECConfig.locec_xgb(seed=0)
    config.gbdt.num_rounds = 10
    pipeline = LoCEC(config)
    pipeline.fit(
        workload.dataset.graph,
        features=workload.dataset.features,
        interactions=workload.dataset.interactions,
        labeled_edges=workload.train_edges,
    )
    return pipeline


def test_serving_incremental_update(benchmark):
    """One ``apply_updates`` batch, asserted bit-identical to a scratch fit."""
    workload = make_workload(BENCH_SCALE, seed=BENCH_SEED)
    graph = workload.dataset.graph
    pipeline = _serving_fit(workload)
    # Idempotent re-add of the sparsest edge: the smallest dirty set, and a
    # per-op cost that is stable across benchmark rounds.
    edge = min(
        graph.edges(), key=lambda e: len(graph.neighbors(e[0]) & graph.neighbors(e[1]))
    )
    delta = np.ones(workload.dataset.interactions.num_dims)

    def update():
        return pipeline.apply_updates(
            added_edges=[edge],
            interaction_deltas=[(edge[0], edge[1], delta)],
        )

    report = run_once(benchmark, update)
    assert not report.degraded
    baseline = make_workload(BENCH_SCALE, seed=BENCH_SEED)
    inter = baseline.dataset.interactions
    inter.set_vector(edge[0], edge[1], inter.vector(*edge) + delta)
    scratch = _serving_fit(baseline)
    queries = [item.edge for item in workload.test_edges]
    assert np.array_equal(
        pipeline.predict_edge_proba(queries), scratch.predict_edge_proba(queries)
    )


def test_serving_replay(benchmark):
    """Sustained update + query traffic through a ServingSession."""
    workload = make_workload(BENCH_SCALE, seed=BENCH_SEED)
    with ServingSession(_serving_fit(workload)) as session:
        report = run_once(
            benchmark,
            lambda: replay_traffic(
                session, num_batches=6, queries_per_batch=32, seed=0
            ),
        )
    assert report.num_queries == 6 * 32
    assert report.num_degraded_updates == 0
    assert report.stale_egos == ()
