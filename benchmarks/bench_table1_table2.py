"""Benchmarks regenerating Table I (survey ratios) and Table II (group-name rules)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import exp_table1, exp_table2
from repro.types import RelationType


def test_table1_survey_ratios(benchmark, bench_workload):
    result = run_once(benchmark, exp_table1.run, workload=bench_workload)
    first_ratios = {row["First Category"]: row["First Ratio"] for row in result.rows}
    # Table I shape: colleagues > family > schoolmates.
    assert first_ratios["Colleague"] > first_ratios["Family Members"]
    assert first_ratios["Family Members"] > first_ratios["Schoolmates"]
    print("\n" + result.to_text())


def test_table2_group_name_rules(benchmark, bench_workload):
    result = run_once(benchmark, exp_table2.run, workload=bench_workload)
    rows = {row["Relationship Type"]: row for row in result.rows}
    # Table II shape: very low recall for every type; high precision whenever
    # the rule fires at all.
    for relation in RelationType.classification_targets():
        row = rows[relation.display_name]
        assert row["Recall"] < 0.5
        if row["Precision"] > 0:
            assert row["Precision"] > 0.6
    print("\n" + result.to_text())
