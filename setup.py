"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that ``pip install -e .`` keeps working on offline machines whose
setuptools/pip lack PEP 660 editable-wheel support.
"""

from setuptools import setup

setup()
