#!/usr/bin/env python
"""Kernel micro-benchmark report: emits ``BENCH_kernels.json``.

Measures ops/sec for the Phase I hot-path kernels on both graph backends
(dict-of-sets reference vs NumPy CSR) and for full Phase I division at the
``tiny`` and ``small`` synthetic scales, then writes the results to
``BENCH_kernels.json`` at the repo root.  Every PR regenerates the file
(``--update``) so the repo carries a perf trajectory, and CI runs the
regression gate (``--check``): if any kernel's ops/sec drops more than 30%
below the committed baseline the script exits non-zero.

Usage::

    python scripts/perf_report.py               # measure, check vs committed, update file
    python scripts/perf_report.py --check       # measure + gate only, leave file untouched
    python scripts/perf_report.py --check-ratios # gate backend speedup ratios only (CI-safe
                                                 # on machines that didn't produce the baseline)
    python scripts/perf_report.py --update      # measure + rewrite file, no gate
    python scripts/perf_report.py --quick ...   # smoke mode (tiny scale, 1 repeat)

The per-benchmark result is the *best* of ``--repeats`` runs, which is the
standard way to suppress scheduler noise for CPU-bound micro-benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.clock import Clock, SystemClock  # noqa: E402 — needs the sys.path fix above

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernels.json"
REGRESSION_TOLERANCE = 0.30
SCHEMA_VERSION = 1

# The ratio gate (--check-ratios) only guards speedup pairs the baseline
# recorded as decisive wins; near-parity pairs (deliberate crossovers like
# community_tightness at WeChat-like sizes) would flap on scheduler noise.
RATIO_GATE_MIN_SPEEDUP = 1.5

# Fast-backend vs reference-backend speedup pairs: csr/dict for the graph +
# aggregation kernels, array/node for the tree-model kernels, fused/loop for
# the NN engine, hist/array for the histogram split search (keyed with a
# "_hist" suffix so it doesn't collide with the array/node pair), shm/pickle
# for the pool-worker graph transport, and workers/serial for sharded
# Phase II aggregation (projected makespan vs the serial kernel).
SPEEDUP_PAIRS = (
    ("_csr", "_dict", ""),
    ("_array", "_node", ""),
    ("_fused", "_loop", ""),
    ("_hist", "_array", "_hist"),
    ("_shm", "_pickle", ""),
    ("_workers", "_serial", ""),
    ("_incremental", "_full", ""),
)

#: Worker count the sharded Phase II benchmarks project onto.  The runner
#: measures real per-shard compute seconds in-process and LPT-packs them
#: (``Phase2ExecutionReport.makespan_seconds``) — the same host-independent
#: projection ``measure_worker_scaling`` uses — so the number is meaningful
#: even on single-core CI runners where a live pool would just time-slice.
PHASE2_PROJECTED_WORKERS = 4


class SelfTimedBenchmark:
    """A benchmark whose callable *returns* its seconds-per-op.

    Most benchmarks are wall-clocked from the outside by :func:`measure`.
    Benchmarks wrapped in this class instead report their own duration —
    used by the sharded Phase II pair, where the figure of merit is the
    runner's projected parallel makespan, not the local serial wall-clock.
    """

    def __init__(self, function: Callable[[], float]) -> None:
        self.function = function


def _time_once(function: Callable[[], object], clock: Clock) -> float:
    start = clock.perf_counter()
    function()
    return clock.perf_counter() - start


def measure(
    function: Callable[[], object], repeats: int, clock: Clock | None = None
) -> dict[str, float]:
    """Best-of-``repeats`` wall-clock timing for one benchmark callable.

    The time source is an injectable :class:`repro.clock.Clock` (default
    ``SystemClock``) — same abstraction the runtime uses, so the lint
    engine's determinism rules apply to this script unmodified.
    """
    clock = clock or SystemClock()
    best = min(_time_once(function, clock) for _ in range(repeats))
    best = max(best, 1e-9)
    return {
        "seconds_per_op": best,
        "ops_per_sec": 1.0 / best,
        "repeats": repeats,
    }


def measure_self_timed(
    benchmark: SelfTimedBenchmark, repeats: int
) -> dict[str, float]:
    """Best-of-``repeats`` for a benchmark that reports its own seconds."""
    best = min(float(benchmark.function()) for _ in range(repeats))
    best = max(best, 1e-9)
    return {
        "seconds_per_op": best,
        "ops_per_sec": 1.0 / best,
        "repeats": repeats,
        "self_timed": True,
    }


def _dense_sample_graph(num_nodes: int, probability: float, seed: int = 0):
    """A denser Erdos-Renyi graph (degree ~60) for the scaling benchmarks."""
    import random

    from repro.graph import Graph

    rng = random.Random(seed)
    graph = Graph(nodes=range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def build_benchmarks(
    quick: bool,
) -> dict[str, Callable[[], object] | SelfTimedBenchmark]:
    """The benchmark suite: name -> zero-arg callable (one op per call).

    Kernel benchmarks are framed the way the pipeline uses them: CSR
    snapshots are built once outside the timed region (they are per-shard,
    not per-call), and each backend runs its native representation (the
    dict backend materialises ``Graph`` ego nets, the CSR backend its flat
    ``DenseEgoNet`` arrays).  The headline pairs are
    ``phase1_division_small_{dict,csr}`` — end-to-end Phase I division —
    and ``phase2_{feature_matrices,statistic_vectors}_small_{dict,csr}`` —
    end-to-end Phase II aggregation over every division community (the
    Phase II kernel is likewise compiled outside the timed region, matching
    its once-per-fit lifecycle).  The model layer gets the same treatment:
    ``gbdt_fit_{node,array,hist}`` (boosted fit on the statistic vectors:
    pointer walks, exact vectorized split search, and the histogram split
    search of ``repro.ml.hist``),
    ``forest_predict_{node,array}`` (probabilities + leaf-value embedding,
    the LoCEC-XGB inference hot path), ``commcnn_tensor_{dict,csr}``
    (CNN input tensor emission, direct Phase2Kernel path on csr) and
    ``commcnn_{fit,predict}_{loop,fused}`` (CommCNN SGD training and batched
    inference: layer-by-layer object graph vs the compiled tape engine of
    ``repro.ml.nn.engine``; bit-identical outputs),
    ``graph_transport_{tiny,dense}_{pickle,shm}`` (per-worker graph receive
    cost: full pickled copy vs O(1) handle + shared-memory attach), and
    ``phase2_sharded_{small,dense}_{serial,workers}`` (serial Phase II
    statistic-vector aggregation vs the sharded runner's projected
    ``PHASE2_PROJECTED_WORKERS``-worker makespan; the workers leg is
    self-timed — see :class:`SelfTimedBenchmark`).
    """
    import numpy as np

    from repro.community.betweenness import edge_betweenness
    from repro.community.louvain import louvain_communities
    from repro.core.aggregation import FeatureMatrixBuilder
    from repro.core.commcnn import build_commcnn_classifier
    from repro.core.config import CommCNNConfig
    from repro.core.division import divide
    from repro.core.tightness import community_tightness
    from repro.graph.csr import (
        CSRGraph,
        community_tightness_csr,
        dense_ego_net,
        edge_betweenness_csr,
        louvain_communities_csr,
    )
    from repro.graph.ego import ego_network
    from repro.ml.gbdt import GradientBoostedClassifier
    from repro.synthetic import make_workload

    scales = ["tiny"] if quick else ["tiny", "small"]
    workloads = {scale: make_workload(scale, seed=0) for scale in scales}
    graph = workloads[scales[-1]].dataset.graph
    csr = CSRGraph.from_graph(graph)
    nodes = list(graph.nodes())
    sample_nets = [
        ego_network(graph, ego) for ego in nodes[:: max(1, len(nodes) // 40)]
    ]
    sample_communities = [
        (net, CSRGraph.from_graph(net), list(net.nodes()))
        for net in sample_nets
        if net.num_nodes > 1
    ]
    # Degree ~60 graph: where the array kernels' O(sum-of-degrees) scaling
    # pulls away from the per-neighbour Python loops.
    dense = _dense_sample_graph(80 if quick else 400, 0.15)
    dense_csr = CSRGraph.from_graph(dense)
    dense_nodes = list(dense.nodes())

    benchmarks: dict[str, Callable[[], object] | SelfTimedBenchmark] = {
        "ego_extraction_dict": lambda: [ego_network(graph, ego) for ego in nodes],
        "ego_extraction_csr": lambda: [dense_ego_net(csr, ego) for ego in nodes],
        "ego_extraction_dense_dict": lambda: [
            ego_network(dense, ego) for ego in dense_nodes
        ],
        "ego_extraction_dense_csr": lambda: [
            dense_ego_net(dense_csr, ego) for ego in dense_nodes
        ],
        "edge_betweenness_dict": lambda: edge_betweenness(graph),
        "edge_betweenness_csr": lambda: edge_betweenness_csr(csr),
        "community_tightness_dict": lambda: [
            community_tightness(net, community)
            for net, _, community in sample_communities
        ],
        "community_tightness_csr": lambda: [
            community_tightness_csr(csr_net, community)
            for _, csr_net, community in sample_communities
        ],
        "louvain_dict": lambda: louvain_communities(graph),
        "louvain_csr": lambda: louvain_communities_csr(graph),
    }
    for scale in scales:
        scale_graph = workloads[scale].dataset.graph
        benchmarks[f"phase1_division_{scale}_dict"] = (
            lambda g=scale_graph: divide(g, backend="dict")
        )
        benchmarks[f"phase1_division_{scale}_csr"] = (
            lambda g=scale_graph: divide(g, backend="csr")
        )

    # Graph transport kernels: what one pool worker pays to receive the
    # graph.  pickle transport deserializes a full copy (linear in graph
    # size, per worker); shm transport unpickles an O(1) handle and attaches
    # the published shared-memory segments.  The tiny pair documents the
    # crossover — attach's fixed syscall cost rivals a tiny graph's pickle
    # time, so its ratio hovers around 1x and stays outside the ratio gate —
    # while the dense pair is the decisive, gate-protected win: its pickle
    # cost is milliseconds, attach stays O(1).  Publishing happens outside
    # the timed region (a once-per-pool cost, measured separately by
    # ``repro.runtime.scalability.measure_transport``) and every lease is
    # closed, segments unlinked, when the suite exits.
    import atexit
    import pickle

    from repro.graph.shm import SharedCSRGraph, shm_supported

    # One "op" is a batch of worker receives: single receives are 0.1-2 ms,
    # where scheduler jitter on one shm_open syscall could flap the ratio.
    transport_batch = 8
    for label, transport_graph in {"tiny": workloads["tiny"].dataset.graph,
                                   "dense": dense}.items():
        payload = pickle.dumps(transport_graph, pickle.HIGHEST_PROTOCOL)

        def receive_pickle(p=payload):
            for _ in range(transport_batch):
                received = pickle.loads(p)
            return received.num_nodes

        benchmarks[f"graph_transport_{label}_pickle"] = receive_pickle
        if shm_supported():
            lease = SharedCSRGraph.publish(CSRGraph.from_graph(transport_graph))
            atexit.register(lease.close)
            handle_payload = pickle.dumps(lease.handle, pickle.HIGHEST_PROTOCOL)

            def receive_shm(p=handle_payload):
                for _ in range(transport_batch):
                    attached = pickle.loads(p).attach()
                    num_nodes = attached.num_nodes
                    attached.close()
                return num_nodes

            benchmarks[f"graph_transport_{label}_shm"] = receive_shm
    for scale in scales:
        workload = workloads[scale]
        communities = list(workload.division().all_communities())
        builders = {
            backend: FeatureMatrixBuilder(
                workload.dataset.features,
                workload.dataset.interactions,
                k=20,
                backend=backend,
            )
            for backend in ("dict", "csr")
        }
        builders["csr"].feature_matrices(communities[:1])  # compile once
        for backend, builder in builders.items():
            benchmarks[f"phase2_feature_matrices_{scale}_{backend}"] = (
                lambda b=builder, cs=communities: b.feature_matrices(cs)
            )
            benchmarks[f"phase2_statistic_vectors_{scale}_{backend}"] = (
                lambda b=builder, cs=communities: b.statistic_vectors(cs)
            )
            benchmarks[f"commcnn_tensor_{scale}_{backend}"] = (
                lambda b=builder, cs=communities: b.matrices_as_tensor(cs)
            )

    # Sharded Phase II aggregation: serial kernel vs the sharded runner's
    # projected makespan at PHASE2_PROJECTED_WORKERS workers.  Both legs
    # aggregate statistic vectors for the same community batch through the
    # same compiled Phase2Kernel, so the pair isolates the sharding
    # machinery: the serial leg is one ``community_statistics`` call; the
    # workers leg drives ``Phase2ShardedRunner`` in-process (num_workers=1
    # runs shards sequentially, so per-shard timings are not corrupted by
    # time-slicing against sibling workers) and self-reports the report's
    # LPT ``makespan_seconds`` re-packed onto PHASE2_PROJECTED_WORKERS —
    # the same host-independent projection ``measure_worker_scaling`` uses.
    # The first pair covers the synthetic workload's own division
    # communities (near the cost model's crossover, ratio not gate
    # protected); the ``dense`` pair a skewed batch of many large
    # communities well past it, where the gate expects a decisive win.
    from dataclasses import replace as dc_replace

    from repro.core.division import LocalCommunity
    from repro.graph import InteractionStore, NodeFeatureStore
    from repro.graph.phase2 import Phase2Kernel
    from repro.runtime.phase2_exec import Phase2ShardedRunner

    def sharded_phase2_pair(label, kernel, pair_communities):
        pairs = [
            (community.members, community.members_by_tightness())
            for community in pair_communities
        ]
        kernel.community_statistics(pairs[:1])  # warm caches outside timing
        benchmarks[f"phase2_sharded_{label}_serial"] = (
            lambda kn=kernel, ps=pairs: kn.community_statistics(ps)
        )
        runner = Phase2ShardedRunner(
            kernel, num_workers=1, num_shards=2 * PHASE2_PROJECTED_WORKERS
        )
        atexit.register(runner.close)

        def projected_makespan(r=runner, ps=pairs) -> float:
            r.statistics(ps)
            report = dc_replace(r.last_report, num_workers=PHASE2_PROJECTED_WORKERS)
            return report.makespan_seconds

        benchmarks[f"phase2_sharded_{label}_workers"] = SelfTimedBenchmark(
            projected_makespan
        )

    sharded_phase2_pair(
        scales[-1],
        Phase2Kernel.compile(
            workloads[scales[-1]].dataset.features,
            workloads[scales[-1]].dataset.interactions,
        ),
        communities,
    )

    import random

    shard_rng = random.Random(17)
    dense_labels = [f"user:{node:04d}" for node in range(120 if quick else 240)]
    dense_features = NodeFeatureStore(["f0", "f1", "f2", "f3", "f4", "f5"])
    dense_interactions = InteractionStore(num_dims=4)
    for node in dense_labels:
        if shard_rng.random() < 0.9:
            dense_features.set(
                node, [shard_rng.randint(0, 5) + 0.5 for _ in range(6)]
            )
    for i, u in enumerate(dense_labels):
        for v in dense_labels[i + 1 :]:
            if shard_rng.random() < 0.2:
                dense_interactions.record(
                    u, v, shard_rng.randrange(4), shard_rng.randint(1, 9)
                )
    dense_communities = [
        LocalCommunity(
            ego=dense_labels[0],
            members=(members := frozenset(
                shard_rng.sample(dense_labels, shard_rng.randint(20, 80))
            )),
            tightness={member: shard_rng.random() for member in members},
            index=index,
        )
        for index in range(12 if quick else 48)
    ]
    sharded_phase2_pair(
        "dense",
        Phase2Kernel.compile(dense_features, dense_interactions),
        dense_communities,
    )

    # Model-layer kernels: GBDT fit + batched forest inference on the last
    # scale's statistic vectors (the LoCEC-XGB design matrix), node walks vs
    # stacked forest tensors.  10 rounds x 3 classes keeps the node fit
    # within the benchmark budget while exercising every kernel.
    model_scale = scales[-1]
    design = builders["csr"].statistic_vectors(
        list(workloads[model_scale].division().all_communities())
    )
    labels = np.arange(design.shape[0]) % 3
    fitted = {
        backend: GradientBoostedClassifier(
            num_rounds=10, num_classes=3, backend=backend
        ).fit(design, labels)
        for backend in ("node", "array")
    }
    # gbdt_fit_hist: the histogram split search (one per-fit quantization,
    # O(rows + bins) per node per feature, parent-minus-sibling histogram
    # subtraction) against the exact array search above.
    for backend in ("node", "array", "hist"):
        benchmarks[f"gbdt_fit_{model_scale}_{backend}"] = (
            lambda be=backend, d=design, y=labels: GradientBoostedClassifier(
                num_rounds=10, num_classes=3, backend=be
            ).fit(d, y)
        )
    for backend in ("node", "array"):
        benchmarks[f"forest_predict_{model_scale}_{backend}"] = (
            lambda m=fitted[backend], d=design: (
                m.predict_proba(d),
                m.leaf_values(d),
            )
        )

    # CommCNN execution-engine kernels: the Figure-8 network trained on the
    # CNN input tensor of every division community (k=20 rows, |I|+|f|
    # columns, 3 classes), layer-by-layer loop vs compiled fused tape.
    # 4 epochs keeps the loop fit inside the benchmark budget while
    # exercising ragged batches and every optimiser step.
    cnn_builder = builders["csr"]
    tensor = cnn_builder.matrices_as_tensor(
        list(workloads[model_scale].division().all_communities())
    )
    cnn_labels = np.arange(tensor.shape[0]) % 3

    def commcnn_fit(backend: str):
        classifier = build_commcnn_classifier(
            20,
            cnn_builder.num_columns,
            3,
            config=CommCNNConfig(epochs=4, nn_backend=backend),
        )
        return classifier.fit(tensor, cnn_labels)

    cnn_fitted = {backend: commcnn_fit(backend) for backend in ("loop", "fused")}
    cnn_fitted["fused"].predict_proba(tensor)  # grow workspaces outside timing
    for backend in ("loop", "fused"):
        benchmarks[f"commcnn_fit_{model_scale}_{backend}"] = (
            lambda be=backend: commcnn_fit(be)
        )
        benchmarks[f"commcnn_predict_{model_scale}_{backend}"] = (
            lambda m=cnn_fitted[backend], t=tensor: m.predict_proba(t)
        )

    # Serving-layer benchmarks.  ``serving_update_{scale}_{incremental,full}``
    # is the headline pair of the online layer: one ``LoCEC.apply_updates``
    # batch (a single touched friendship edge + one interaction delta, chosen
    # so the dirty-ego set stays under 10% of the graph) against a full
    # from-scratch refit on the same inputs.  Incremental cost scales with
    # the *dirty* slice, full refit with the whole graph, so the gated
    # ``speedup_serving_update_{scale}`` ratio must stay decisively above 1.
    # ``serving_replay_{scale}`` is self-timed sustained-traffic throughput:
    # one op replays a fixed synthetic schedule of batched edge queries plus
    # periodic update batches through a ``ServingSession`` and reports the
    # replay's own clock-injected wall-clock.  All three use private
    # workload instances — replay mutates its graph and stores in place.
    from repro.core.config import LoCECConfig
    from repro.core.pipeline import LoCEC
    from repro.serve import ServingSession, replay_traffic

    def serving_pipeline(workload):
        config = LoCECConfig.locec_xgb(seed=0)
        config.gbdt.num_rounds = 10
        return LoCEC(config).fit(
            workload.dataset.graph,
            workload.dataset.features,
            workload.dataset.interactions,
            workload.train_edges,
            division=workload.division(),
        )

    serve_scale = scales[-1]
    full_workload = make_workload(serve_scale, seed=0)

    def full_refit(w=full_workload):
        config = LoCECConfig.locec_xgb(seed=0)
        config.gbdt.num_rounds = 10
        return LoCEC(config).fit(
            w.dataset.graph,
            w.dataset.features,
            w.dataset.interactions,
            w.train_edges,
        )

    benchmarks[f"serving_update_{serve_scale}_full"] = full_refit

    incr_workload = make_workload(serve_scale, seed=0)
    incr_pipeline = serving_pipeline(incr_workload)
    serve_graph = incr_workload.dataset.graph
    # The edge whose endpoints share the fewest common friends dirties the
    # smallest ego set ({u, v} plus the common neighbourhood); re-adding an
    # existing edge is idempotent on the graph, so every op re-divides the
    # same dirty egos and the per-op cost is stable.
    update_edge = min(
        serve_graph.edges(),
        key=lambda e: len(serve_graph.neighbors(e[0]) & serve_graph.neighbors(e[1])),
    )
    num_dirty = 2 + len(
        serve_graph.neighbors(update_edge[0]) & serve_graph.neighbors(update_edge[1])
    )
    assert num_dirty < 0.1 * serve_graph.num_nodes, (
        f"update edge dirties {num_dirty}/{serve_graph.num_nodes} egos; "
        "the incremental benchmark needs a <10% dirty slice"
    )
    update_delta = [1.0] * incr_workload.dataset.interactions.num_dims

    def incremental_update(p=incr_pipeline, e=update_edge, d=update_delta):
        return p.apply_updates(
            added_edges=[e], interaction_deltas=[(e[0], e[1], d)]
        )

    benchmarks[f"serving_update_{serve_scale}_incremental"] = incremental_update

    replay_workload = make_workload(serve_scale, seed=0)
    replay_session = ServingSession(serving_pipeline(replay_workload))
    atexit.register(replay_session.close)

    def replay_seconds(s=replay_session) -> float:
        return replay_traffic(
            s, num_batches=6, queries_per_batch=32, seed=0
        ).seconds

    benchmarks[f"serving_replay_{serve_scale}"] = SelfTimedBenchmark(replay_seconds)
    return benchmarks


def run_suite(quick: bool, repeats: int) -> dict:
    benchmarks = build_benchmarks(quick)
    results: dict[str, dict[str, float]] = {}
    for name, function in benchmarks.items():
        if isinstance(function, SelfTimedBenchmark):
            function.function()  # warm-up (pool/lease setup, compile caches)
            results[name] = measure_self_timed(function, repeats)
            print(
                f"{name:32s} {results[name]['seconds_per_op'] * 1e3:10.2f} ms/op "
                f"({results[name]['ops_per_sec']:10.3f} ops/s, self-timed)"
            )
            continue
        function()  # warm-up (imports, allocator, caches)
        results[name] = measure(function, repeats)
        print(
            f"{name:32s} {results[name]['seconds_per_op'] * 1e3:10.2f} ms/op "
            f"({results[name]['ops_per_sec']:10.3f} ops/s)"
        )
    report = {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "benchmarks": results,
        "derived": {},
    }
    for fast, reference, key_suffix in SPEEDUP_PAIRS:
        for name in list(results):
            if name.endswith(fast):
                twin = name[: -len(fast)] + reference
                if twin in results:
                    speedup = results[twin]["seconds_per_op"] / results[name][
                        "seconds_per_op"
                    ]
                    key = f"speedup_{name[: -len(fast)]}{key_suffix}"
                    report["derived"][key] = speedup
    for key, value in sorted(report["derived"].items()):
        print(f"{key:40s} {value:6.2f}x")
    return report


def check_regressions(report: dict, baseline_path: Path) -> list[str]:
    """Names of benchmarks that regressed >30% vs the committed baseline."""
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping regression gate")
        return []
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick", False) != report.get("quick", False):
        print("baseline and run use different modes; skipping regression gate")
        return []
    regressions = []
    for name, result in report["benchmarks"].items():
        base = baseline.get("benchmarks", {}).get(name)
        if base is None:
            continue
        floor = base["ops_per_sec"] * (1.0 - REGRESSION_TOLERANCE)
        if result["ops_per_sec"] < floor:
            regressions.append(
                f"{name}: {result['ops_per_sec']:.3f} ops/s < "
                f"{floor:.3f} (baseline {base['ops_per_sec']:.3f} - 30%)"
            )
    return regressions


def check_ratio_regressions(report: dict, baseline_path: Path) -> list[str]:
    """Names of *speedup ratios* that regressed >30% vs the committed baseline.

    Absolute ops/sec gating (:func:`check_regressions`) only works when the
    run and the baseline come from the same machine; CI runners are not that
    machine.  Speedup ratios compare two backends measured in the *same*
    run on the *same* host, so they transfer: a fast kernel that loses its
    edge over its reference backend regressed no matter the hardware.  Only
    ratios the baseline recorded as decisive (>= ``RATIO_GATE_MIN_SPEEDUP``)
    are gated — near-parity pairs are deliberate crossovers, not wins to
    protect.
    """
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping ratio gate")
        return []
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick", False) != report.get("quick", False):
        print("baseline and run use different modes; skipping ratio gate")
        return []
    regressions = []
    for name, base_ratio in baseline.get("derived", {}).items():
        if base_ratio < RATIO_GATE_MIN_SPEEDUP:
            continue
        ratio = report.get("derived", {}).get(name)
        if ratio is None:
            # A guarded ratio with no counterpart means the benchmark pair
            # was removed or renamed — fail loudly instead of going
            # vacuously green (the gate would otherwise protect nothing).
            regressions.append(
                f"{name}: baseline ratio {base_ratio:.2f}x has no counterpart "
                "in this run (benchmark pair removed or renamed?)"
            )
            continue
        floor = base_ratio * (1.0 - REGRESSION_TOLERANCE)
        if ratio < floor:
            regressions.append(
                f"{name}: {ratio:.2f}x < {floor:.2f}x (baseline {base_ratio:.2f}x - 30%)"
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smoke mode: tiny scale, 1 repeat"
    )
    def positive_int(value: str) -> int:
        parsed = int(value)
        if parsed < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return parsed

    parser.add_argument(
        "--repeats",
        type=positive_int,
        default=None,
        help="runs per benchmark (best-of, >= 1)",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the JSON, skip the gate"
    )
    parser.add_argument(
        "--check", action="store_true", help="gate only, leave the JSON untouched"
    )
    parser.add_argument(
        "--check-ratios",
        action="store_true",
        help="gate the backend speedup *ratios* only (machine-portable: the "
        "CI job for runners that did not produce the absolute baseline)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="report path"
    )
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)

    report = run_suite(quick=args.quick, repeats=repeats)

    failures: list[str] = []
    if args.check_ratios:
        failures = check_ratio_regressions(report, args.output)
        for line in failures:
            print(f"RATIO REGRESSION: {line}", file=sys.stderr)
    elif not args.update:
        failures = check_regressions(report, args.output)
        for line in failures:
            print(f"REGRESSION: {line}", file=sys.stderr)
    if not args.check and not args.check_ratios:
        args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    if failures:
        print(f"{len(failures)} kernel(s) regressed >30%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
