"""Parity and behaviour tests for the histogram GBDT split search.

The exactness contract of :mod:`repro.ml.hist`: whenever every feature has
at most ``max_bins`` distinct values, the binned split search must choose
splits **identical** to the exact vectorized search
(:func:`repro.ml.forest.best_split_array`) — same split features, same
(bit-equal) thresholds, same row partitions, same leaf numbering — because
every candidate boundary and its threshold midpoint coincide with an exact
candidate.  Gains are accumulated per bin instead of per sorted row, so
leaf *values* may differ in the last ulp; structure may not differ at all.

Beyond the bin budget the search is approximate (thresholds snap to
quantile bin edges); those tests assert consistency (training rows split
the way the codes said they would) and model quality, not equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import GBDTConfig, LoCECConfig
from repro.exceptions import ModelConfigError
from repro.ml.forest import HIST_AUTO_MIN_ROWS, resolve_ml_backend
from repro.ml.gbdt import GradientBoostedClassifier
from repro.ml.hist import BinnedDataset, HistTreeGrower
from repro.ml.tree import GradientRegressionTree, RegressionTreeConfig

SEEDS = (0, 1, 2, 3, 4)


def random_tree_problem(seed: int, n: int = 150, num_features: int = 5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, num_features))
    # A coarse column exercises duplicate values / per-value bins heavily.
    X[:, 0] = np.round(X[:, 0] * 2.0) / 2.0
    gradients = rng.normal(size=n)
    hessians = np.abs(rng.normal(size=n)) + 0.05
    return X, gradients, hessians


def random_classification_problem(seed: int, n: int = 120, num_classes: int = 3):
    rng = np.random.default_rng(seed + 100)
    X = rng.normal(size=(n, 4))
    y = rng.integers(0, num_classes, size=n)
    return X, y


def tree_structure(root) -> list[tuple]:
    """Preorder (feature, threshold, leaf_id) tuples — values excluded, they
    are compared separately with an ulp tolerance."""
    out: list[tuple] = []
    stack = [root]
    while stack:
        node = stack.pop()
        out.append((node.feature, node.threshold, node.leaf_id))
        if node.feature is not None:
            stack.append(node.right)
            stack.append(node.left)
    return out


class TestBinnedDataset:
    def test_exact_features_one_bin_per_value(self):
        X = np.array([[3.0], [1.0], [3.0], [2.0], [1.0]])
        binned = BinnedDataset.from_matrix(X, max_bins=8)
        assert binned.exact[0]
        assert binned.num_bins[0] == 3
        assert np.array_equal(binned.codes[:, 0], [2, 0, 2, 1, 0])
        assert np.array_equal(binned.bin_values[0], [1.0, 2.0, 3.0])

    def test_quantile_features_respect_bin_budget(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 2))
        binned = BinnedDataset.from_matrix(X, max_bins=16)
        assert not binned.exact.any()
        assert (binned.num_bins <= 16).all()
        # Codes are order-preserving: sorting by code never contradicts the
        # raw values, so "code <= b" is a threshold split.
        for feature in range(2):
            order = np.argsort(X[:, feature], kind="mergesort")
            codes = binned.codes[order, feature]
            assert (np.diff(codes) >= 0).all()

    def test_quantile_partition_consistent_with_thresholds(self):
        # The rows a boundary sends left must be exactly the rows the
        # real-valued threshold sends left — otherwise training and
        # inference would disagree.
        rng = np.random.default_rng(1)
        column = rng.normal(size=(400, 1))
        binned = BinnedDataset.from_matrix(column, max_bins=8)
        cuts = binned.edges[0]
        for boundary in range(binned.num_bins[0] - 1):
            threshold = binned.boundary_threshold(
                0, boundary, np.bincount(binned.codes[:, 0])
            )
            by_code = binned.codes[:, 0] <= boundary
            by_value = column[:, 0] <= threshold
            assert np.array_equal(by_code, by_value)
        assert cuts.size == binned.num_bins[0] - 1

    def test_exact_threshold_skips_values_absent_from_node(self):
        # Node holding only values {1, 5} of global {1, 3, 5}: the boundary
        # after bin(1) must produce the exact search's midpoint 3.0, not the
        # global-adjacent midpoint 2.0.
        X = np.array([[1.0], [3.0], [5.0]])
        binned = BinnedDataset.from_matrix(X, max_bins=8)
        node_counts = np.array([1, 0, 1])  # value 3 not present in the node
        assert binned.boundary_threshold(0, 0, node_counts) == 3.0
        assert binned.boundary_threshold(0, 1, node_counts) == 3.0

    def test_subset_shares_metadata(self):
        X = np.arange(12, dtype=np.float64).reshape(6, 2)
        binned = BinnedDataset.from_matrix(X, max_bins=16)
        sub = binned.subset(np.array([4, 0, 2]))
        assert np.array_equal(sub.codes, binned.codes[[4, 0, 2]])
        assert sub.bin_values is binned.bin_values
        assert sub.num_bins is binned.num_bins

    def test_max_bins_validation(self):
        with pytest.raises(ModelConfigError):
            BinnedDataset.from_matrix(np.zeros((4, 1)), max_bins=1)
        with pytest.raises(ModelConfigError):
            RegressionTreeConfig(max_bins=0).validate()
        with pytest.raises(ModelConfigError):
            GBDTConfig(max_bins=1).validate()


class TestBackendRouting:
    def test_hist_is_a_valid_backend_everywhere(self):
        assert resolve_ml_backend("hist") == "hist"
        GBDTConfig(backend="hist").validate()
        LoCECConfig(ml_backend="hist").validate()
        GradientRegressionTree(backend="hist")
        GradientBoostedClassifier(backend="hist")

    def test_auto_prefers_hist_above_row_crossover(self):
        assert resolve_ml_backend("auto") == "array"
        assert resolve_ml_backend("auto", num_rows=HIST_AUTO_MIN_ROWS - 1) == "array"
        assert resolve_ml_backend("auto", num_rows=HIST_AUTO_MIN_ROWS) == "hist"
        # Explicit choices are never overridden by the crossover.
        assert resolve_ml_backend("array", num_rows=10**9) == "array"
        assert resolve_ml_backend("hist", num_rows=1) == "hist"

    def test_auto_tree_resolves_at_fit_time(self):
        X, gradients, hessians = random_tree_problem(0, n=64)
        tree = GradientRegressionTree(backend="auto").fit(X, gradients, hessians)
        assert tree._resolved_backend == "array"

    def test_misaligned_binned_dataset_rejected(self):
        from repro.exceptions import DimensionMismatchError

        X, gradients, hessians = random_tree_problem(0, n=64)
        full = BinnedDataset.from_matrix(X, max_bins=32)
        with pytest.raises(DimensionMismatchError):
            GradientRegressionTree(backend="hist").fit(
                X[:32], gradients[:32], hessians[:32], binned=full
            )


class TestExactnessParity:
    """max_bins >= distinct values per feature: splits identical to array."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tree_structure_identical(self, seed):
        X, gradients, hessians = random_tree_problem(seed)
        config = RegressionTreeConfig(max_depth=4, min_samples_leaf=3, max_bins=512)
        array_tree = GradientRegressionTree(config, backend="array").fit(
            X, gradients, hessians
        )
        hist_tree = GradientRegressionTree(config, backend="hist").fit(
            X, gradients, hessians
        )
        assert tree_structure(array_tree.root_) == tree_structure(hist_tree.root_)
        assert array_tree.num_leaves_ == hist_tree.num_leaves_
        assert hist_tree.tensor_ is not None  # hist builds the tensor eagerly

    @pytest.mark.parametrize("seed", SEEDS)
    def test_tree_predictions_match_to_ulp(self, seed):
        # Structure is identical; leaf values are sums associated per bin
        # instead of per sorted row, so allow last-ulp differences only.
        X, gradients, hessians = random_tree_problem(seed)
        config = RegressionTreeConfig(max_depth=5, max_bins=512)
        array_tree = GradientRegressionTree(config, backend="array").fit(
            X, gradients, hessians
        )
        hist_tree = GradientRegressionTree(config, backend="hist").fit(
            X, gradients, hessians
        )
        fresh = np.random.default_rng(seed + 50).normal(size=(60, X.shape[1]))
        for batch in (X, fresh):
            np.testing.assert_allclose(
                array_tree.predict(batch), hist_tree.predict(batch), rtol=1e-12
            )
            # Identical thresholds => identical leaf routing.
            assert np.array_equal(array_tree.apply(batch), hist_tree.apply(batch))

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_boosted_ensemble_structure_identical(self, seed):
        X, y = random_classification_problem(seed)
        kwargs = dict(num_rounds=6, max_depth=3, seed=seed, max_bins=512)
        array_model = GradientBoostedClassifier(backend="array", **kwargs).fit(X, y)
        hist_model = GradientBoostedClassifier(backend="hist", **kwargs).fit(X, y)
        for array_round, hist_round in zip(array_model.trees_, hist_model.trees_):
            for array_tree, hist_tree in zip(array_round, hist_round):
                assert tree_structure(array_tree.root_) == tree_structure(
                    hist_tree.root_
                )
        np.testing.assert_allclose(
            array_model.predict_proba(X), hist_model.predict_proba(X), rtol=1e-9
        )
        assert np.array_equal(array_model.predict(X), hist_model.predict(X))
        assert np.array_equal(array_model.leaf_indices(X), hist_model.leaf_indices(X))

    def test_subsampled_fit_structure_identical(self):
        X, y = random_classification_problem(11, n=200)
        kwargs = dict(num_rounds=6, subsample=0.6, seed=7, max_bins=512)
        array_model = GradientBoostedClassifier(backend="array", **kwargs).fit(X, y)
        hist_model = GradientBoostedClassifier(backend="hist", **kwargs).fit(X, y)
        for array_round, hist_round in zip(array_model.trees_, hist_model.trees_):
            for array_tree, hist_tree in zip(array_round, hist_round):
                assert tree_structure(array_tree.root_) == tree_structure(
                    hist_tree.root_
                )

    def test_min_samples_leaf_respected(self):
        X, gradients, hessians = random_tree_problem(2, n=80)
        config = RegressionTreeConfig(max_depth=6, min_samples_leaf=9, max_bins=512)
        tree = GradientRegressionTree(config, backend="hist").fit(
            X, gradients, hessians
        )
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert (counts >= 9).all()

    def test_single_value_matrix_grows_single_leaf(self):
        X = np.ones((8, 2))
        tree = GradientRegressionTree(backend="hist").fit(
            X, np.full(8, -1.0), np.ones(8)
        )
        assert tree.num_leaves_ == 1
        assert np.array_equal(tree.apply(X), np.zeros(8, dtype=np.int64))


class TestQuantileRegime:
    """max_bins < distinct values: approximate but consistent and competitive."""

    def test_training_partition_matches_inference(self):
        # Every internal node's threshold must route the training rows the
        # same way the bin codes did during growth: train predictions off a
        # freshly-traversed tensor equal the grower's leaf assignment.
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 4))
        gradients = rng.normal(size=300)
        hessians = np.abs(rng.normal(size=300)) + 0.05
        config = RegressionTreeConfig(max_depth=5, max_bins=16)
        tree = GradientRegressionTree(config, backend="hist").fit(
            X, gradients, hessians
        )
        binned = BinnedDataset.from_matrix(X, 16)
        grower = HistTreeGrower(binned, gradients, hessians, config)

        def route_by_codes(node, indices):
            if node.feature is None:
                return {node.leaf_id: set(indices.tolist())}
            threshold = node.threshold
            go_left = X[indices, node.feature] <= threshold
            result = route_by_codes(node.left, indices[go_left])
            result.update(route_by_codes(node.right, indices[~go_left]))
            return result

        routed = route_by_codes(tree.root_, np.arange(300))
        leaves = tree.apply(X)
        for leaf_id, members in routed.items():
            assert set(np.flatnonzero(leaves == leaf_id).tolist()) == members
        assert grower.binned.hist_width <= 16

    def test_coarse_bins_still_learn(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(400, 3))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = GradientBoostedClassifier(
            num_rounds=15, num_classes=2, backend="hist", max_bins=16
        ).fit(X, y)
        assert float((model.predict(X) == y).mean()) > 0.9

    def test_hist_loss_tracks_exact_loss(self):
        X, y = random_classification_problem(8, n=500)
        array_model = GradientBoostedClassifier(
            num_rounds=8, backend="array", seed=8
        ).fit(X, y)
        hist_model = GradientBoostedClassifier(
            num_rounds=8, backend="hist", max_bins=32, seed=8
        ).fit(X, y)
        assert (
            hist_model.train_loss_history_[-1]
            <= array_model.train_loss_history_[-1] * 1.25
        )


class TestSubtraction:
    def test_sibling_subtraction_equals_direct_accumulation(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(200, 3))
        gradients = rng.normal(size=200)
        hessians = np.abs(rng.normal(size=200)) + 0.05
        binned = BinnedDataset.from_matrix(X, max_bins=64)
        grower = HistTreeGrower(
            binned, gradients, hessians, RegressionTreeConfig(max_depth=3)
        )
        indices = np.arange(200)
        parent = grower._accumulate(indices)
        left = indices[: 200 // 3]
        right = indices[200 // 3 :]
        small = grower._accumulate(left)
        derived_right = tuple(p - s for p, s in zip(parent, small))
        direct_right = grower._accumulate(right)
        assert np.array_equal(derived_right[0], direct_right[0])  # counts: exact
        np.testing.assert_allclose(derived_right[1], direct_right[1], atol=1e-12)
        np.testing.assert_allclose(derived_right[2], direct_right[2], atol=1e-12)


class TestPipelineIntegration:
    def test_gbdt_community_classifier_accepts_hist(self):
        from repro.core.aggregation import FeatureMatrixBuilder
        from repro.core.community_classifier import GBDTCommunityClassifier
        from tests.test_ml_forest import random_stores_and_communities

        features, interactions, communities = random_stores_and_communities(0)
        labels = [index % 3 for index in range(len(communities))]
        builder = FeatureMatrixBuilder(features, interactions, k=6)
        classifier = GBDTCommunityClassifier(
            builder, config=GBDTConfig(num_rounds=4, backend="hist")
        ).fit(communities, labels)
        proba = classifier.predict_proba(communities)
        assert proba.shape == (len(communities), 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        vectors = classifier.result_vectors(communities)
        assert vectors.shape == (len(communities), 6)
