"""Tests for the NumPy neural-network stack (layers, losses, optimisers, models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    DimensionMismatchError,
    ModelConfigError,
    TrainingDivergedError,
)
from repro.ml.nn import (
    Adam,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalMaxPool2D,
    MaxPool2D,
    NeuralNetworkClassifier,
    ParallelConcat,
    ReLU,
    SGD,
    Sequential,
    SoftmaxCrossEntropy,
)


def _numerical_gradient(function, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function w.r.t. ``array``."""
    gradient = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = gradient.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = function()
        flat[index] = original - epsilon
        minus = function()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * epsilon)
    return gradient


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(1, 4, (3, 3))
        out = layer.forward(rng.normal(size=(2, 1, 8, 6)))
        assert out.shape == (2, 4, 6, 4)

    def test_known_convolution_value(self):
        layer = Conv2D(1, 1, (2, 2))
        layer.weight[...] = np.ones((1, 1, 2, 2))
        layer.bias[...] = 0.0
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = layer.forward(x)
        # Top-left window is [[0,1],[3,4]] -> sum 8.
        assert out[0, 0, 0, 0] == pytest.approx(8.0)

    def test_rejects_wrong_channel_count(self, rng):
        layer = Conv2D(2, 3, (3, 3))
        with pytest.raises(DimensionMismatchError):
            layer.forward(rng.normal(size=(1, 1, 5, 5)))

    def test_rejects_too_small_input(self, rng):
        layer = Conv2D(1, 1, (3, 3))
        with pytest.raises(DimensionMismatchError):
            layer.forward(rng.normal(size=(1, 1, 2, 5)))

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Conv2D(1, 2, (2, 2), seed=1)
        x = rng.normal(size=(3, 1, 4, 4))

        def loss() -> float:
            return float(layer.forward(x, training=True).sum())

        loss()
        layer.backward(np.ones((3, 2, 3, 3)))
        numerical = _numerical_gradient(loss, layer.weight)
        np.testing.assert_allclose(layer.grad_weight, numerical, atol=1e-4)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Conv2D(1, 1, (2, 2), seed=2)
        x = rng.normal(size=(1, 1, 4, 3))

        def loss() -> float:
            return float(layer.forward(x, training=True).sum())

        loss()
        dx = layer.backward(np.ones((1, 1, 3, 2)))
        numerical = _numerical_gradient(loss, x)
        np.testing.assert_allclose(dx, numerical, atol=1e-4)

    def test_invalid_configuration(self):
        with pytest.raises(ModelConfigError):
            Conv2D(0, 1, (3, 3))
        with pytest.raises(ModelConfigError):
            Conv2D(1, 1, (0, 3))


class TestPoolingAndActivation:
    def test_relu_forward_and_backward(self):
        layer = ReLU()
        x = np.array([[-1.0, 2.0], [3.0, -4.0]])
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out, [[0.0, 2.0], [3.0, 0.0]])
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_maxpool_forward(self):
        layer = MaxPool2D((2, 2))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_backward_routes_to_argmax(self):
        layer = MaxPool2D((2, 2))
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer.forward(x, training=True)
        dx = layer.backward(np.ones((1, 1, 2, 2)))
        assert dx.sum() == pytest.approx(4.0)
        assert dx[0, 0, 1, 1] == 1.0  # position of value 5

    def test_maxpool_clamps_small_inputs(self, rng):
        layer = MaxPool2D((2, 2))
        out = layer.forward(rng.normal(size=(1, 3, 1, 5)))
        assert out.shape == (1, 3, 1, 2)

    def test_maxpool_rejects_bad_config(self):
        with pytest.raises(ModelConfigError):
            MaxPool2D((0, 2))

    def test_global_maxpool_forward_backward(self):
        layer = GlobalMaxPool2D()
        x = np.arange(12, dtype=float).reshape(1, 2, 2, 3)
        out = layer.forward(x, training=True)
        np.testing.assert_allclose(out, [[5.0, 11.0]])
        dx = layer.backward(np.array([[1.0, 2.0]]))
        assert dx[0, 0, 1, 2] == 1.0
        assert dx[0, 1, 1, 2] == 2.0
        assert dx.sum() == pytest.approx(3.0)

    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 5))
        out = layer.forward(x, training=True)
        assert out.shape == (3, 40)
        assert layer.backward(out).shape == x.shape

    def test_dropout_inference_is_identity(self, rng):
        layer = Dropout(0.5)
        x = rng.normal(size=(4, 10))
        np.testing.assert_allclose(layer.forward(x, training=False), x)

    def test_dropout_training_zeroes_some_units(self, rng):
        layer = Dropout(0.5, seed=0)
        x = np.ones((10, 100))
        out = layer.forward(x, training=True)
        assert (out == 0).sum() > 0
        # Inverted dropout keeps the expectation roughly unchanged.
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ModelConfigError):
            Dropout(1.0)


class TestDense:
    def test_forward_shape_and_validation(self, rng):
        layer = Dense(4, 3)
        out = layer.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)
        with pytest.raises(DimensionMismatchError):
            layer.forward(rng.normal(size=(5, 2)))

    def test_gradients_match_numerical(self, rng):
        layer = Dense(3, 2, seed=0)
        x = rng.normal(size=(4, 3))

        def loss() -> float:
            return float(layer.forward(x, training=True).sum())

        loss()
        dx = layer.backward(np.ones((4, 2)))
        np.testing.assert_allclose(
            layer.grad_weight, _numerical_gradient(loss, layer.weight), atol=1e-5
        )
        np.testing.assert_allclose(dx, _numerical_gradient(loss, x), atol=1e-5)

    def test_parameters_exposed(self):
        layer = Dense(2, 2)
        names = [name for name, _, _ in layer.parameters()]
        assert names == ["weight", "bias"]


class TestLossAndOptimizers:
    def test_cross_entropy_perfect_prediction_is_small(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        assert loss.forward(logits, np.array([0, 1])) < 1e-3

    def test_cross_entropy_uniform_prediction(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 3)), np.array([0, 1, 2, 0]))
        assert value == pytest.approx(np.log(3.0))

    def test_cross_entropy_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])

        def value() -> float:
            return loss.forward(logits, labels)

        value()
        analytic = loss.backward()
        numerical = _numerical_gradient(value, logits)
        np.testing.assert_allclose(analytic, numerical, atol=1e-5)

    def test_cross_entropy_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(DimensionMismatchError):
            loss.forward(np.zeros((2, 3)), np.array([0, 1, 2]))
        with pytest.raises(DimensionMismatchError):
            loss.forward(np.zeros(3), np.array([0]))

    def test_sgd_moves_against_gradient(self):
        param = np.array([1.0, 1.0])
        grad = np.array([0.5, -0.5])
        SGD(learning_rate=0.1).step([("w", param, grad)])
        np.testing.assert_allclose(param, [0.95, 1.05])

    def test_optimizer_state_keyed_by_name_not_id(self):
        """State must follow the parameter *name*, not the array's id().

        A recycled ``id()`` (array garbage-collected, address reused) used to
        splice stale momentum onto an unrelated parameter; a stable name key
        also keeps state attached when a parameter array is swapped out.
        """
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        param = np.array([0.0])
        grad = np.array([1.0])
        optimizer.step([("w", param, grad)])
        assert set(optimizer._velocity) == {"w"}
        # A replacement array under the same name continues the velocity.
        replacement = np.array([0.0])
        optimizer.step([("w", replacement, grad)])
        assert replacement[0] == pytest.approx(-0.19)

    def test_adam_per_name_timesteps(self):
        optimizer = Adam(learning_rate=0.1)
        first = np.array([1.0])
        second = np.array([1.0])
        optimizer.step([("a", first, np.array([0.5]))])
        optimizer.step([("a", first, np.array([0.5])), ("b", second, np.array([0.5]))])
        assert optimizer._step_count == {"a": 2, "b": 1}

    def test_sgd_momentum_accumulates(self):
        param = np.array([0.0])
        grad = np.array([1.0])
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        optimizer.step([("w", param, grad)])
        first = param.copy()
        optimizer.step([("w", param, grad)])
        assert abs(param[0] - first[0]) > 0.1  # second step is larger

    def test_adam_reduces_quadratic_loss(self):
        param = np.array([5.0])
        optimizer = Adam(learning_rate=0.1)
        for _ in range(200):
            grad = 2.0 * param
            optimizer.step([("w", param, grad)])
        assert abs(param[0]) < 0.5

    def test_optimizer_validation(self):
        with pytest.raises(ModelConfigError):
            SGD(learning_rate=0.0)
        with pytest.raises(ModelConfigError):
            Adam(beta1=1.0)


class TestModelContainers:
    def test_sequential_collects_parameters(self):
        model = Sequential([Dense(3, 4), ReLU(), Dense(4, 2)])
        assert len(model.parameters()) == 4

    def test_parallel_concat_output_width(self, rng):
        branches = ParallelConcat(
            [
                Sequential([Conv2D(1, 2, (2, 2)), Flatten()]),
                Sequential([Conv2D(1, 3, (1, 4)), GlobalMaxPool2D()]),
            ]
        )
        out = branches.forward(rng.normal(size=(2, 1, 4, 4)))
        assert out.shape == (2, 2 * 3 * 3 + 3)

    def test_parallel_concat_requires_2d_branches(self, rng):
        branches = ParallelConcat([Sequential([Conv2D(1, 2, (2, 2))])])
        with pytest.raises(ModelConfigError):
            branches.forward(rng.normal(size=(1, 1, 4, 4)))

    def test_parallel_concat_requires_branches(self):
        with pytest.raises(ModelConfigError):
            ParallelConcat([])

    def test_classifier_learns_simple_task(self, rng):
        X = rng.normal(size=(200, 6))
        y = (X[:, 0] + X[:, 1] > 0).astype(int)
        model = Sequential([Dense(6, 16, seed=0), ReLU(), Dense(16, 2, seed=1)])
        clf = NeuralNetworkClassifier(model, num_classes=2, epochs=30, batch_size=32)
        clf.fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9
        assert clf.loss_history_[-1] < clf.loss_history_[0]

    def test_classifier_validation(self):
        model = Sequential([Dense(2, 2)])
        with pytest.raises(ModelConfigError):
            NeuralNetworkClassifier(model, num_classes=1)
        clf = NeuralNetworkClassifier(model, num_classes=2)
        with pytest.raises(ModelConfigError):
            clf.fit(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_classifier_detects_wrong_output_width(self, rng):
        model = Sequential([Dense(2, 5)])
        clf = NeuralNetworkClassifier(model, num_classes=3, epochs=1)
        with pytest.raises(ModelConfigError):
            clf.fit(rng.normal(size=(8, 2)), np.zeros(8, dtype=int))

    def test_num_parameters(self):
        model = Sequential([Dense(3, 4), Dense(4, 2)])
        clf = NeuralNetworkClassifier(model, num_classes=2)
        assert clf.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)

    @pytest.mark.parametrize("backend", ["loop", "fused"])
    def test_fit_is_deterministic(self, rng, backend):
        """Two fits with the same seed produce identical weights and losses."""
        X = rng.normal(size=(60, 5))
        y = (X[:, 0] > 0).astype(int)
        runs = []
        for _ in range(2):
            model = Sequential(
                [Dense(5, 8, seed=0), ReLU(), Dropout(0.3, seed=7), Dense(8, 2, seed=1)]
            )
            clf = NeuralNetworkClassifier(
                model, num_classes=2, epochs=4, batch_size=16, seed=3, backend=backend
            )
            clf.fit(X, y)
            runs.append(clf)
        assert runs[0].loss_history_ == runs[1].loss_history_
        for (_, first, _), (_, second, _) in zip(
            runs[0].model.parameters(), runs[1].model.parameters()
        ):
            assert np.array_equal(first, second)

    @pytest.mark.parametrize("backend", ["loop", "fused"])
    def test_non_finite_loss_raises_naming_epoch(self, backend):
        X = np.full((8, 3), np.nan)
        y = np.zeros(8, dtype=np.int64)
        model = Sequential([Dense(3, 4, seed=0), ReLU(), Dense(4, 2, seed=1)])
        clf = NeuralNetworkClassifier(model, num_classes=2, epochs=3, backend=backend)
        with pytest.raises(TrainingDivergedError, match="epoch 1"):
            clf.fit(X, y)
        # A diverged fit must leave the classifier reporting not-fitted
        # instead of serving predictions from a half-trained model.
        assert clf.loss_history_ is None
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            clf.predict_proba(np.zeros((2, 3)))

    def test_fit_clears_training_caches(self, rng):
        """Layer caches must not pin the last batch's tensors after fit."""
        conv = Conv2D(1, 2, (2, 2), seed=0)
        relu = ReLU()
        pool = MaxPool2D((2, 2))
        glob = GlobalMaxPool2D()
        flat = Flatten()
        drop = Dropout(0.4, seed=1)
        dense = Dense(2, 2, seed=2)
        model = Sequential([conv, relu, pool, glob, flat, drop, dense])
        clf = NeuralNetworkClassifier(
            model, num_classes=2, epochs=1, backend="loop"
        )
        clf.fit(rng.normal(size=(12, 1, 6, 5)), rng.integers(0, 2, size=12))
        assert conv._cache is None
        assert relu._mask is None
        assert pool._cache is None
        assert glob._cache is None
        assert flat._input_shape is None
        assert drop._mask is None
        assert dense._input is None
