"""Tests for the interaction store and the node feature store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    DimensionMismatchError,
    FeatureError,
    NodeNotFoundError,
)
from repro.graph import InteractionStore, NodeFeatureStore
from repro.types import InteractionDim


class TestInteractionStore:
    def test_default_dimension_count(self):
        store = InteractionStore()
        assert store.num_dims == InteractionDim.count()

    def test_invalid_dimension_count(self):
        with pytest.raises(FeatureError):
            InteractionStore(num_dims=0)

    def test_record_and_get_symmetric(self):
        store = InteractionStore()
        store.record(1, 2, InteractionDim.MESSAGE, 3)
        assert store.get(1, 2, InteractionDim.MESSAGE) == 3.0
        assert store.get(2, 1, InteractionDim.MESSAGE) == 3.0

    def test_record_accumulates(self):
        store = InteractionStore()
        store.record(1, 2, 0, 1)
        store.record(2, 1, 0, 2)
        assert store.get(1, 2, 0) == 3.0

    def test_get_unknown_pair_is_zero(self):
        store = InteractionStore()
        assert store.get(7, 8, 0) == 0.0
        assert store.total(7, 8) == 0.0
        assert not store.has_interaction(7, 8)

    def test_out_of_range_dimension_raises(self):
        store = InteractionStore(num_dims=3)
        with pytest.raises(FeatureError):
            store.record(1, 2, 5)
        with pytest.raises(FeatureError):
            store.get(1, 2, -1)

    def test_vector_returns_copy(self):
        store = InteractionStore(num_dims=2)
        store.record(1, 2, 0, 1)
        vector = store.vector(1, 2)
        vector[0] = 99
        assert store.get(1, 2, 0) == 1.0

    def test_set_vector_and_shape_validation(self):
        store = InteractionStore(num_dims=3)
        store.set_vector(1, 2, np.array([1.0, 0.0, 2.0]))
        assert store.total(1, 2) == 3.0
        with pytest.raises(DimensionMismatchError):
            store.set_vector(1, 2, np.array([1.0, 2.0]))

    def test_set_vector_rejects_negative(self):
        store = InteractionStore(num_dims=2)
        with pytest.raises(FeatureError):
            store.set_vector(1, 2, np.array([-1.0, 0.0]))

    def test_set_zero_vector_removes_edge(self):
        store = InteractionStore(num_dims=2)
        store.record(1, 2, 0, 1)
        store.set_vector(1, 2, np.zeros(2))
        assert not store.has_interaction(1, 2)

    def test_update_from_bulk(self):
        store = InteractionStore(num_dims=2)
        store.update_from([(1, 2, 0, 1.0), (2, 3, 1, 2.0)])
        assert store.num_edges_with_interaction == 2

    def test_restrict_to(self, small_interactions):
        restricted = small_interactions.restrict_to([1, 2, 3])
        assert restricted.has_interaction(1, 2)
        assert not restricted.has_interaction(4, 5)

    def test_sparsity(self):
        store = InteractionStore(num_dims=2)
        store.record(1, 2, 0, 1)
        assert store.sparsity(total_edges=4) == pytest.approx(0.75)
        assert store.sparsity(total_edges=0) == 0.0

    def test_len_and_items(self, small_interactions):
        assert len(small_interactions) == 4
        items = dict(small_interactions.items())
        assert len(items) == 4

    def test_total_sums_all_dimensions(self):
        store = InteractionStore(num_dims=3)
        store.record(1, 2, 0, 1)
        store.record(1, 2, 2, 4)
        assert store.total(1, 2) == 5.0


class TestNodeFeatureStore:
    def test_requires_at_least_one_feature(self):
        with pytest.raises(FeatureError):
            NodeFeatureStore([])

    def test_set_and_get(self):
        store = NodeFeatureStore(["a", "b"])
        store.set(1, [1.0, 2.0])
        np.testing.assert_allclose(store.get(1), [1.0, 2.0])

    def test_get_returns_copy(self):
        store = NodeFeatureStore(["a"])
        store.set(1, [5.0])
        vector = store.get(1)
        vector[0] = 0.0
        assert store.get(1)[0] == 5.0

    def test_get_missing_raises(self):
        store = NodeFeatureStore(["a"])
        with pytest.raises(NodeNotFoundError):
            store.get(1)

    def test_get_or_default_is_zeros(self):
        store = NodeFeatureStore(["a", "b"])
        np.testing.assert_allclose(store.get_or_default(9), [0.0, 0.0])

    def test_shape_validation(self):
        store = NodeFeatureStore(["a", "b"])
        with pytest.raises(DimensionMismatchError):
            store.set(1, [1.0])

    def test_matrix_stacking(self, small_features):
        matrix = small_features.matrix([1, 2, 3])
        assert matrix.shape == (3, 2)
        np.testing.assert_allclose(matrix[0], small_features.get(1))

    def test_matrix_empty(self, small_features):
        assert small_features.matrix([]).shape == (0, 2)

    def test_feature_index(self, small_features):
        assert small_features.feature_index("age") == 1
        with pytest.raises(FeatureError):
            small_features.feature_index("missing")

    def test_restrict_to(self, small_features):
        restricted = small_features.restrict_to([1, 2])
        assert restricted.has(1)
        assert not restricted.has(5)

    def test_set_many_and_contains(self):
        store = NodeFeatureStore(["a"])
        store.set_many([(1, [1.0]), (2, [2.0])])
        assert 1 in store and 2 in store
        assert len(store) == 2

    def test_num_features(self, small_features):
        assert small_features.num_features == 2
