"""Tests for graph IO and the random-graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    DatasetError,
    DuplicateEdgeError,
    GraphError,
    MalformedLineError,
    NonFiniteWeightError,
)
from repro.graph import (
    Graph,
    InteractionStore,
    NodeFeatureStore,
    load_dataset_json,
    read_edge_list,
    read_labeled_edges,
    save_dataset_json,
    write_edge_list,
    write_labeled_edges,
)
from repro.graph.generators import (
    barabasi_albert,
    clique,
    erdos_renyi,
    paper_figure1_network,
    paper_figure7_network,
    planted_partition,
)
from repro.types import LabeledEdge, RelationType


class TestEdgeListIO:
    def test_round_trip(self, tmp_path, fig7_graph):
        path = tmp_path / "edges.tsv"
        write_edge_list(fig7_graph, path)
        loaded = read_edge_list(path)
        assert loaded == fig7_graph

    def test_read_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# comment\n\n1\t2\n2 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_read_malformed_line_raises(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("justonetoken\n")
        with pytest.raises(DatasetError):
            read_edge_list(path)

    def test_node_type_conversion(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("a b\n")
        graph = read_edge_list(path, node_type=str)
        assert graph.has_edge("a", "b")

    def test_malformed_line_names_line_number(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("1 2\nnot-an-int 3\n")
        with pytest.raises(MalformedLineError) as info:
            read_edge_list(path)
        assert info.value.lineno == 2
        assert str(path) in str(info.value)

    def test_self_loop_is_malformed(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("5 5\n")
        with pytest.raises(MalformedLineError):
            read_edge_list(path)

    def test_duplicate_edge_raises_either_orientation(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("1 2\n2 1\n")
        with pytest.raises(DuplicateEdgeError) as info:
            read_edge_list(path)
        assert info.value.lineno == 2

    def test_weight_column_validated(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("1 2 0.5\n2 3 nan\n")
        with pytest.raises(NonFiniteWeightError) as info:
            read_edge_list(path)
        assert info.value.lineno == 2
        path.write_text("1 2 heavy\n")
        with pytest.raises(MalformedLineError):
            read_edge_list(path)

    def test_on_error_skip_drops_bad_lines(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("1 2\nbroken\n2 3 0.7\n1 2\n3 4 inf\n")
        graph = read_edge_list(path, on_error="skip")
        # Kept: 1-2 and weighted 2-3.  Dropped: short line, duplicate 1-2,
        # non-finite 3-4.
        assert sorted(map(sorted, graph.edges())) == [[1, 2], [2, 3]]
        with pytest.raises(DatasetError):
            read_edge_list(path, on_error="quarantine")

    def test_errors_are_both_graph_and_dataset_errors(self, tmp_path):
        # Back-compat: callers catching the old DatasetError still work.
        path = tmp_path / "edges.tsv"
        path.write_text("justonetoken\n")
        with pytest.raises(GraphError):
            read_edge_list(path)
        with pytest.raises(DatasetError):
            read_edge_list(path)


class TestLabeledEdgeIO:
    def test_round_trip(self, tmp_path):
        labels = [
            LabeledEdge(1, 2, RelationType.FAMILY),
            LabeledEdge(2, 3, RelationType.SCHOOLMATE),
        ]
        path = tmp_path / "labels.tsv"
        write_labeled_edges(labels, path)
        loaded = read_labeled_edges(path)
        assert {item.edge for item in loaded} == {item.edge for item in labels}
        assert {item.label for item in loaded} == {item.label for item in labels}

    def test_unknown_label_raises(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("1\t2\tNOT_A_TYPE\n")
        with pytest.raises(DatasetError):
            read_labeled_edges(path)

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("1\t2\n")
        with pytest.raises(DatasetError):
            read_labeled_edges(path)

    def test_duplicate_labeled_edge_raises(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("1\t2\tFAMILY\n2\t1\tCOLLEAGUE\n")
        with pytest.raises(DuplicateEdgeError) as info:
            read_labeled_edges(path)
        assert info.value.lineno == 2

    def test_on_error_skip_drops_bad_labeled_lines(self, tmp_path):
        path = tmp_path / "labels.tsv"
        path.write_text("1\t2\tFAMILY\nx\nnope\t3\tNOT_A_TYPE\n2\t3\tSCHOOLMATE\n")
        loaded = read_labeled_edges(path, on_error="skip")
        assert [item.edge for item in loaded] == [(1, 2), (2, 3)]


class TestDatasetJson:
    def test_full_round_trip(self, tmp_path, fig7_graph):
        features = NodeFeatureStore(["gender"])
        features.set(1, [1.0])
        interactions = InteractionStore(num_dims=2)
        interactions.record(1, 2, 0, 3)
        labels = [LabeledEdge(1, 2, RelationType.COLLEAGUE)]

        path = tmp_path / "dataset.json"
        save_dataset_json(path, fig7_graph, features, interactions, labels)
        graph, loaded_features, loaded_interactions, loaded_labels = load_dataset_json(path)

        assert graph == fig7_graph
        assert loaded_features is not None
        np.testing.assert_allclose(loaded_features.get(1), [1.0])
        assert loaded_interactions is not None
        assert loaded_interactions.get(1, 2, 0) == 3.0
        assert loaded_labels[0].label is RelationType.COLLEAGUE

    def test_graph_only_round_trip(self, tmp_path):
        graph = Graph(edges=[(1, 2)])
        graph.add_node(5)
        path = tmp_path / "dataset.json"
        save_dataset_json(path, graph)
        loaded, features, interactions, labels = load_dataset_json(path)
        assert loaded == graph
        assert features is None and interactions is None and labels == []

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            load_dataset_json(path)

    def test_wrong_format_marker_raises(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(DatasetError):
            load_dataset_json(path)


class TestGenerators:
    def test_erdos_renyi_determinism_and_bounds(self):
        a = erdos_renyi(30, 0.2, seed=7)
        b = erdos_renyi(30, 0.2, seed=7)
        assert a == b
        assert a.num_nodes == 30
        assert 0 <= a.num_edges <= 30 * 29 / 2

    def test_erdos_renyi_extreme_probabilities(self):
        assert erdos_renyi(10, 0.0, seed=0).num_edges == 0
        assert erdos_renyi(10, 1.0, seed=0).num_edges == 45

    def test_erdos_renyi_validation(self):
        with pytest.raises(DatasetError):
            erdos_renyi(-1, 0.5)
        with pytest.raises(DatasetError):
            erdos_renyi(10, 1.5)

    def test_barabasi_albert_size_and_min_degree(self):
        graph = barabasi_albert(50, 3, seed=0)
        assert graph.num_nodes == 50
        assert min(graph.degrees().values()) >= 3

    def test_barabasi_albert_validation(self):
        with pytest.raises(DatasetError):
            barabasi_albert(5, 5)
        with pytest.raises(DatasetError):
            barabasi_albert(10, 0)

    def test_planted_partition_structure(self):
        graph, communities = planted_partition([8, 8], 1.0, 0.0, seed=0)
        assert graph.num_nodes == 16
        assert len(communities) == 2
        # No inter-community edges were sampled.
        for u in communities[0]:
            for v in communities[1]:
                assert not graph.has_edge(u, v)

    def test_planted_partition_validation(self):
        with pytest.raises(DatasetError):
            planted_partition([5, 5], 0.1, 0.5)

    def test_clique_generator(self):
        graph = clique(5, offset=10)
        assert set(graph.nodes()) == set(range(10, 15))
        assert graph.num_edges == 10

    def test_paper_figure7_matches_description(self):
        graph = paper_figure7_network()
        assert graph.num_nodes == 9
        assert graph.degree(1) == 5

    def test_paper_figure1_has_u1_with_five_friends(self):
        graph = paper_figure1_network()
        assert graph.degree(1) == 5
        assert graph.has_edge(2, 7)
