"""Integration tests for the full LoCEC pipeline (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LoCEC, LoCECConfig
from repro.exceptions import NotFittedError, PipelineError
from repro.types import RelationType


@pytest.fixture(scope="module")
def fitted_xgb(request):
    """A LoCEC-XGB pipeline fitted on the tiny shared workload."""
    workload = request.getfixturevalue("tiny_workload")
    config = LoCECConfig.locec_xgb(seed=0)
    config.gbdt.num_rounds = 15
    pipeline = LoCEC(config)
    pipeline.fit(
        workload.dataset.graph,
        workload.dataset.features,
        workload.dataset.interactions,
        workload.train_edges,
        division=workload.division(),
    )
    return workload, pipeline


class TestPipelineFit:
    def test_fit_requires_labeled_edges(self, tiny_workload):
        pipeline = LoCEC(LoCECConfig.locec_xgb())
        with pytest.raises(PipelineError):
            pipeline.fit(
                tiny_workload.dataset.graph,
                tiny_workload.dataset.features,
                tiny_workload.dataset.interactions,
                [],
            )

    def test_unfitted_pipeline_refuses_to_predict(self):
        with pytest.raises(NotFittedError):
            LoCEC().predict_edges([(1, 2)])

    def test_fit_summary_counts(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        summary = pipeline.fit_summary_
        assert summary is not None
        assert summary.num_egos == workload.dataset.num_users
        assert summary.num_communities > summary.num_egos  # several circles per ego
        assert summary.num_labeled_communities > 0
        assert summary.num_training_edges == len(workload.train_edges)
        assert summary.timings.total > 0.0

    def test_phase_timings_dict(self, fitted_xgb):
        _, pipeline = fitted_xgb
        timings = pipeline.fit_summary_.timings.as_dict()
        assert set(timings) == {
            "training",
            "phase1_division",
            "phase2_aggregation",
            "phase3_combination",
            "total",
        }


class TestPipelinePredictions:
    def test_predict_edges_returns_relation_types(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        edges = [item.edge for item in workload.test_edges[:10]]
        predictions = pipeline.predict_edges(edges)
        assert len(predictions) == len(edges)
        assert all(isinstance(label, RelationType) for label in predictions)
        assert all(
            label in RelationType.classification_targets() for label in predictions
        )

    def test_predict_proba_rows_sum_to_one(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        edges = [item.edge for item in workload.test_edges[:10]]
        probabilities = pipeline.predict_edge_proba(edges)
        assert probabilities.shape == (len(edges), 3)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(len(edges)), atol=1e-9)

    def test_single_edge_prediction(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        u, v = workload.test_edges[0].edge
        assert isinstance(pipeline.predict_edge(u, v), RelationType)

    def test_evaluation_beats_majority_baseline(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        report = pipeline.evaluate(workload.test_edges)
        assert report.overall is not None
        # The aggregated-feature pipeline must clearly beat a majority guess.
        assert report.overall.f1 > 0.6

    def test_agreement_rule_is_usable_but_not_better(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        edges = [item.edge for item in workload.test_edges]
        y_true = np.array([int(item.label) for item in workload.test_edges])
        naive = pipeline.agreement_rule_predictions(edges)
        learned = np.array([int(x) for x in pipeline.predict_edges(edges)])
        naive_accuracy = float((naive == y_true).mean())
        learned_accuracy = float((learned == y_true).mean())
        assert naive_accuracy > 0.3
        assert learned_accuracy >= naive_accuracy - 0.05


class TestNetworkClassification:
    def test_classify_communities_covers_division(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        classifications = pipeline.classify_communities()
        assert len(classifications) == workload.division().num_communities
        for item in classifications[:20]:
            assert item.label in RelationType.classification_targets()
            assert len(item.probabilities) == 3

    def test_classify_network_distributions(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        result = pipeline.classify_network()
        assert result.num_edges == workload.dataset.num_edges
        community_dist = result.community_type_distribution()
        edge_dist = result.edge_type_distribution()
        assert sum(community_dist.values()) == pytest.approx(1.0)
        assert sum(edge_dist.values()) == pytest.approx(1.0)

    def test_classify_network_subset_of_edges(self, fitted_xgb):
        workload, pipeline = fitted_xgb
        some_edges = [item.edge for item in workload.test_edges[:5]]
        result = pipeline.classify_network(edges=some_edges)
        assert result.num_edges == 5


class TestDetectorAblation:
    def test_label_propagation_detector_pipeline(self, tiny_workload):
        config = LoCECConfig.locec_xgb(community_detector="label_propagation", seed=0)
        config.gbdt.num_rounds = 10
        pipeline = LoCEC(config)
        pipeline.fit(
            tiny_workload.dataset.graph,
            tiny_workload.dataset.features,
            tiny_workload.dataset.interactions,
            tiny_workload.train_edges,
            division=tiny_workload.division("label_propagation"),
        )
        report = pipeline.evaluate(tiny_workload.test_edges)
        assert report.overall is not None
        assert report.overall.f1 > 0.5
