"""Tests for the experiment harness (registry + the cheap experiments end to end)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    EDGE_METHODS,
    ExperimentResult,
    evaluate_method,
    exp_fig2,
    exp_fig3,
    exp_fig4,
    exp_fig10,
    exp_fig12,
    exp_table1,
    exp_table2,
    exp_table6,
    overall_f1,
)
from repro.experiments.registry import get_experiment, list_experiments
from repro.types import RelationType


class TestHarness:
    def test_registry_contains_every_paper_artifact(self):
        ids = list_experiments()
        for expected in (
            "table1",
            "table2",
            "table4",
            "table5",
            "table6",
            "fig2",
            "fig3",
            "fig4",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
        ):
            assert expected in ids

    def test_registry_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("table99")

    def test_result_rendering(self):
        result = ExperimentResult(
            experiment_id="x", title="demo", rows=[{"a": 1, "b": 0.5}], notes="n"
        )
        text = result.to_text()
        assert "demo" in text and "0.500" in text and "note: n" in text
        empty = ExperimentResult(experiment_id="y", title="empty")
        assert "(no rows)" in empty.to_text()

    def test_evaluate_method_rejects_unknown(self, tiny_workload):
        with pytest.raises(ExperimentError):
            evaluate_method("SVM", tiny_workload)

    def test_edge_methods_constant(self):
        assert "LoCEC-CNN" in EDGE_METHODS and "ProbWP" in EDGE_METHODS


class TestCheapExperiments:
    def test_table1(self, tiny_workload):
        result = exp_table1.run(workload=tiny_workload)
        assert result.experiment_id == "table1"
        assert len(result.rows) >= 8
        first_ratios = {row["First Category"]: row["First Ratio"] for row in result.rows}
        assert first_ratios["Colleague"] > first_ratios["Schoolmates"]

    def test_table2_high_precision_low_recall(self, tiny_workload):
        result = exp_table2.run(workload=tiny_workload)
        recalls = [row["Recall"] for row in result.rows]
        assert all(recall < 0.5 for recall in recalls)

    def test_table6_matches_paper(self):
        result = exp_table6.run()
        row = result.rows[0]
        assert row["Total"] == pytest.approx(73.7, rel=0.01)

    def test_table6_measured_calibration(self, tiny_workload):
        result = exp_table6.run(
            workload=tiny_workload, calibrate_from_measurement=True, max_egos=15
        )
        assert result.rows[0]["Phase I"] > 0.0

    def test_fig2_shape(self, tiny_workload):
        result = exp_fig2.run(workload=tiny_workload)
        zero_row = result.rows[0]
        assert zero_row["Family members"] > zero_row["Colleagues"]

    def test_fig3_game_shape(self, tiny_workload):
        result = exp_fig3.run(workload=tiny_workload)
        like_rows = {row["Relationship"]: row for row in result.rows if row["Behaviour"] == "like"}
        assert like_rows["Schoolmates"]["Games"] > like_rows["Colleague"]["Games"]

    def test_fig4_shape(self, tiny_workload):
        result = exp_fig4.run(workload=tiny_workload)
        zero_row = result.rows[0]
        for column in ("Family members", "Colleagues", "Schoolmates"):
            assert 0.4 <= zero_row[column] <= 0.8

    def test_fig10a_cdf(self, tiny_workload):
        result = exp_fig10.run_size_cdf(workload=tiny_workload)
        values = [row["CDF"] for row in result.rows]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_fig12_shapes(self):
        result = exp_fig12.run()
        panel_a = [row for row in result.rows if row["Panel"] == "a"]
        panel_b = [row for row in result.rows if row["Panel"] == "b"]
        totals_a = [row["Total (h)"] for row in panel_a]
        totals_b = [row["Total (h)"] for row in panel_b]
        assert totals_a == sorted(totals_a)
        assert totals_b == sorted(totals_b, reverse=True)


@pytest.mark.slow
class TestEvaluateMethodIntegration:
    @pytest.mark.parametrize("method", ["ProbWP", "Economix", "XGBoost"])
    def test_baselines_beat_chance(self, tiny_workload, method):
        report = evaluate_method(method, tiny_workload, seed=1)
        assert overall_f1(report) > 0.35

    def test_locec_xgb_beats_raw_xgboost(self, tiny_workload):
        locec = evaluate_method("LoCEC-XGB", tiny_workload, seed=1)
        raw = evaluate_method("XGBoost", tiny_workload, seed=1)
        assert overall_f1(locec) > overall_f1(raw)

    def test_report_covers_three_classes(self, tiny_workload):
        report = evaluate_method("XGBoost", tiny_workload, seed=1)
        assert set(report.per_class) == set(RelationType.classification_targets())
