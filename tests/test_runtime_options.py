"""RuntimeOptions surface: legacy-kwarg mapping table, warnings, config sync.

``LEGACY_KNOB_TO_OPTION`` is the single source of truth for the
one-release-behind deprecation shim.  The lint-style tests here enforce, by
signature inspection, that every ``_UNSET``-defaulted parameter of a shimmed
callable appears in the table and that every table target is a real
``RuntimeOptions`` field — so adding a knob without wiring the shim (or
vice versa) fails CI rather than silently dropping the kwarg.
"""

from __future__ import annotations

import dataclasses
import inspect
import warnings

import pytest

from repro.core.aggregation import FeatureMatrixBuilder
from repro.core.config import (
    _UNSET,
    LEGACY_KNOB_TO_OPTION,
    LoCECConfig,
    ResilienceConfig,
    RuntimeOptions,
    resolve_runtime_options,
)
from repro.exceptions import ModelConfigError
from repro.graph import InteractionStore, NodeFeatureStore
from repro.runtime.scalability import measure_phases

SHIMMED_CALLABLES = [FeatureMatrixBuilder.__init__, measure_phases]


def _legacy_params(func):
    return [
        name
        for name, param in inspect.signature(func).parameters.items()
        if param.default is _UNSET
    ]


class TestMappingTable:
    @pytest.mark.parametrize(
        "func", SHIMMED_CALLABLES, ids=lambda f: f.__qualname__
    )
    def test_every_unset_param_is_in_the_table(self, func):
        params = _legacy_params(func)
        assert params, f"{func.__qualname__} has no shimmed params"
        missing = set(params) - set(LEGACY_KNOB_TO_OPTION)
        assert not missing, f"unmapped legacy kwargs: {sorted(missing)}"

    def test_every_target_is_a_runtime_options_field(self):
        fields = {field.name for field in dataclasses.fields(RuntimeOptions)}
        stray = set(LEGACY_KNOB_TO_OPTION.values()) - fields
        assert not stray, f"mapping targets without a field: {sorted(stray)}"

    def test_every_table_knob_is_shimmed_somewhere(self):
        shimmed = set().union(*(_legacy_params(f) for f in SHIMMED_CALLABLES))
        dead = set(LEGACY_KNOB_TO_OPTION) - shimmed
        assert not dead, f"table rows no callable accepts: {sorted(dead)}"


def _builder_inputs():
    features = NodeFeatureStore(["f0", "f1"])
    interactions = InteractionStore(num_dims=2)
    return features, interactions


class TestDeprecationShim:
    def test_legacy_kwarg_warns_and_names_replacement(self):
        features, interactions = _builder_inputs()
        with pytest.warns(DeprecationWarning, match=r"FeatureMatrixBuilder\(backend=") as caught:
            builder = FeatureMatrixBuilder(
                features, interactions, k=5, backend="csr"
            )
        assert builder.backend == "csr"
        message = str(caught[0].message)
        assert "options=RuntimeOptions(backend=...)" in message

    def test_options_path_is_warning_free(self):
        features, interactions = _builder_inputs()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            builder = FeatureMatrixBuilder(
                features,
                interactions,
                k=5,
                options=RuntimeOptions(backend="csr"),
            )
        assert builder.backend == "csr"

    def test_explicit_legacy_kwarg_overrides_options(self):
        # One-release-behind semantics: an explicitly passed legacy kwarg
        # still wins over the options block (with a warning), so call sites
        # migrating field by field never silently change behaviour.
        features, interactions = _builder_inputs()
        with pytest.warns(DeprecationWarning):
            builder = FeatureMatrixBuilder(
                features,
                interactions,
                k=5,
                backend="dict",
                options=RuntimeOptions(backend="csr"),
            )
        assert builder.backend == "dict"

    def test_measure_phases_legacy_kwarg_warns(self, tiny_workload):
        with pytest.warns(DeprecationWarning, match=r"measure_phases\(backend="):
            measure_phases(
                tiny_workload.dataset,
                detector="label_propagation",
                max_egos=4,
                backend="csr",
            )

    def test_resolve_rejects_unknown_legacy_name(self):
        # A shim passing a knob missing from the table is a programming
        # error, surfaced immediately rather than silently dropped.
        with pytest.raises(KeyError):
            resolve_runtime_options(None, {"bogus": "csr"}, caller="test")

    def test_resolve_validates_the_merged_options(self):
        with pytest.raises(ModelConfigError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                resolve_runtime_options(
                    None, {"backend": "sparse"}, caller="test"
                )


class TestRuntimeOptions:
    def test_validate_rejects_bad_values(self):
        with pytest.raises(ModelConfigError):
            RuntimeOptions(backend="sparse").validate()
        with pytest.raises(ModelConfigError):
            RuntimeOptions(phase2_workers=-1).validate()
        with pytest.raises(ModelConfigError):
            RuntimeOptions(transport="tcp").validate()
        RuntimeOptions().validate()  # defaults are valid

    def test_resolved_resilience_threads_transport(self):
        assert RuntimeOptions().resolved_resilience() is None
        resolved = RuntimeOptions(transport="shm").resolved_resilience()
        assert resolved is not None and resolved.transport == "shm"
        base = ResilienceConfig(max_attempts=5)
        merged = RuntimeOptions(
            transport="pickle", resilience=base
        ).resolved_resilience()
        assert merged.max_attempts == 5
        assert merged.transport == "pickle"
        # transport="auto" leaves a provided resilience untouched.
        assert RuntimeOptions(resilience=base).resolved_resilience() is base


class TestLoCECConfigSync:
    def test_runtime_block_wins_over_flat_fields(self):
        config = LoCECConfig.locec_xgb(seed=0)
        config.runtime = RuntimeOptions(
            backend="csr", phase2_workers=2, transport="shm"
        )
        config.validate()
        assert config.backend == "csr"
        assert config.phase2_workers == 2
        assert config.resilience is not None
        assert config.resilience.transport == "shm"

    def test_runtime_options_property_roundtrip(self):
        config = LoCECConfig.locec_xgb(seed=0)
        config.runtime = RuntimeOptions(backend="csr", phase2_workers=2)
        config.validate()
        rebuilt = config.runtime_options
        assert rebuilt.backend == "csr"
        assert rebuilt.phase2_workers == 2
