"""Tests for logistic regression, regression trees and gradient boosting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    DimensionMismatchError,
    ModelConfigError,
    NotFittedError,
)
from repro.ml import (
    GradientBoostedClassifier,
    GradientRegressionTree,
    LogisticRegression,
    RegressionTreeConfig,
)


def _linearly_separable(n: int = 120, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


def _three_class_blobs(n: int = 150, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
    X = np.vstack([rng.normal(loc=center, scale=0.6, size=(n // 3, 2)) for center in centers])
    y = np.repeat(np.arange(3), n // 3)
    return X, y


class TestLogisticRegression:
    def test_learns_linear_boundary(self):
        X, y = _linearly_separable()
        model = LogisticRegression(num_iterations=400).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_three_class_problem(self):
        X, y = _three_class_blobs()
        model = LogisticRegression(num_iterations=400).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95
        probabilities = model.predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(len(y)), atol=1e-9)

    def test_loss_decreases(self):
        X, y = _linearly_separable()
        model = LogisticRegression(num_iterations=200).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((2, 3)))

    def test_single_row_prediction(self):
        X, y = _linearly_separable()
        model = LogisticRegression(num_iterations=100).fit(X, y)
        assert model.predict_proba(X[0]).shape == (1, 2)

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelConfigError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ModelConfigError):
            LogisticRegression(num_iterations=0)
        with pytest.raises(ModelConfigError):
            LogisticRegression(l2=-1.0)

    def test_single_class_rejected(self):
        X = np.zeros((5, 2))
        y = np.zeros(5, dtype=int)
        with pytest.raises(ModelConfigError):
            LogisticRegression().fit(X, y)

    def test_explicit_num_classes_allows_missing_class_in_train(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 0, 1])
        model = LogisticRegression(num_classes=3, num_iterations=50).fit(X, y)
        assert model.predict_proba(X).shape == (3, 3)


class TestRegressionTree:
    def test_fits_a_simple_step_function(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        gradients = np.where(X[:, 0] < 0.5, -1.0, 1.0)
        hessians = np.ones(50)
        tree = GradientRegressionTree(RegressionTreeConfig(max_depth=2)).fit(
            X, gradients, hessians
        )
        predictions = tree.predict(X)
        # Leaf weight is -G/(H+λ): negative gradients → positive weights.
        assert predictions[0] > 0 > predictions[-1]

    def test_respects_max_depth(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        gradients = rng.normal(size=200)
        tree = GradientRegressionTree(RegressionTreeConfig(max_depth=2)).fit(
            X, gradients, np.ones(200)
        )
        assert tree.depth <= 2

    def test_pure_leaf_when_no_split_improves(self):
        X = np.ones((10, 2))
        gradients = np.full(10, -1.0)
        tree = GradientRegressionTree().fit(X, gradients, np.ones(10))
        assert tree.num_leaves_ == 1

    def test_apply_returns_valid_leaf_ids(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        gradients = X[:, 0]
        tree = GradientRegressionTree().fit(X, gradients, np.ones(100))
        leaves = tree.apply(X)
        assert leaves.min() >= 0
        assert leaves.max() < tree.num_leaves_

    def test_input_validation(self):
        tree = GradientRegressionTree()
        with pytest.raises(DimensionMismatchError):
            tree.fit(np.zeros(5), np.zeros(5), np.ones(5))
        with pytest.raises(DimensionMismatchError):
            tree.fit(np.zeros((5, 2)), np.zeros(4), np.ones(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GradientRegressionTree().predict(np.zeros((2, 2)))

    def test_config_validation(self):
        with pytest.raises(ModelConfigError):
            RegressionTreeConfig(max_depth=0).validate()
        with pytest.raises(ModelConfigError):
            RegressionTreeConfig(min_samples_leaf=0).validate()
        with pytest.raises(ModelConfigError):
            RegressionTreeConfig(reg_lambda=-1.0).validate()


class TestGradientBoostedClassifier:
    def test_binary_classification_accuracy(self):
        X, y = _linearly_separable()
        model = GradientBoostedClassifier(num_rounds=15).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_multiclass_classification_accuracy(self):
        X, y = _three_class_blobs()
        model = GradientBoostedClassifier(num_rounds=15).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_probabilities_are_normalised(self):
        X, y = _three_class_blobs()
        model = GradientBoostedClassifier(num_rounds=5).fit(X, y)
        probabilities = model.predict_proba(X)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(len(y)), atol=1e-9)

    def test_training_loss_decreases(self):
        X, y = _three_class_blobs()
        model = GradientBoostedClassifier(num_rounds=10).fit(X, y)
        assert model.train_loss_history_[-1] < model.train_loss_history_[0]

    def test_leaf_embeddings_shapes(self):
        X, y = _three_class_blobs(n=90)
        model = GradientBoostedClassifier(num_rounds=4).fit(X, y)
        values = model.leaf_values(X[:7])
        indices = model.leaf_indices(X[:7])
        assert values.shape == (7, 4 * 3)
        assert indices.shape == (7, 4 * 3)
        assert indices.dtype == np.int64
        assert model.num_trees == 12

    def test_subsampling_still_learns(self):
        X, y = _linearly_separable(n=200)
        model = GradientBoostedClassifier(num_rounds=20, subsample=0.6, seed=3).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GradientBoostedClassifier().predict(np.zeros((2, 3)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelConfigError):
            GradientBoostedClassifier(num_rounds=0)
        with pytest.raises(ModelConfigError):
            GradientBoostedClassifier(learning_rate=0.0)
        with pytest.raises(ModelConfigError):
            GradientBoostedClassifier(subsample=0.0)

    def test_single_class_rejected(self):
        with pytest.raises(ModelConfigError):
            GradientBoostedClassifier().fit(np.zeros((4, 2)), np.zeros(4, dtype=int))

    def test_single_row_prediction(self):
        X, y = _linearly_separable()
        model = GradientBoostedClassifier(num_rounds=3).fit(X, y)
        assert model.predict_proba(X[0]).shape == (1, 2)
