"""Tests for Phase I: tightness (Eq. 3) and ego-network division."""

from __future__ import annotations

import pytest

from repro.core import (
    DivisionResult,
    LocalCommunity,
    community_tightness,
    divide,
    divide_ego,
    get_detector,
    tightness,
)
from repro.exceptions import PipelineError
from repro.graph import Graph, ego_network


class TestTightness:
    def test_paper_example_values(self, fig7_graph):
        """The worked example of Section IV-B: C1 = {2, 3, 4} in U1's ego network."""
        ego = ego_network(fig7_graph, 1)
        community = {2, 3, 4}
        assert tightness(ego, 2, community) == pytest.approx(1.0)
        assert tightness(ego, 3, community) == pytest.approx(1.0)
        # U4 also connects to U6 outside C1: (2/3) * (2/2) = 0.67.
        assert tightness(ego, 4, community) == pytest.approx(2 / 3, abs=1e-9)

    def test_singleton_community_is_one(self):
        ego = Graph(nodes=[7])
        assert tightness(ego, 7, {7}) == 1.0

    def test_isolated_member_of_larger_community_is_zero(self):
        ego = Graph(nodes=[1, 2, 3])
        ego.add_edge(2, 3)
        assert tightness(ego, 1, {1, 2, 3}) == 0.0

    def test_node_must_belong_to_community(self, fig7_graph):
        ego = ego_network(fig7_graph, 1)
        with pytest.raises(ValueError):
            tightness(ego, 5, {2, 3, 4})

    def test_tightness_in_unit_interval(self, fig7_graph):
        ego = ego_network(fig7_graph, 1)
        for community in ({2, 3, 4}, {5, 6}):
            for node in community:
                assert 0.0 <= tightness(ego, node, community) <= 1.0

    def test_community_tightness_covers_all_members(self, fig7_graph):
        ego = ego_network(fig7_graph, 1)
        values = community_tightness(ego, {2, 3, 4})
        assert set(values) == {2, 3, 4}


class TestDivideEgo:
    def test_paper_example_division(self, fig7_graph):
        communities = divide_ego(fig7_graph, 1)
        members = {community.members for community in communities}
        assert frozenset({2, 3, 4}) in members
        assert frozenset({5, 6}) in members

    def test_tightness_attached_to_members(self, fig7_graph):
        communities = divide_ego(fig7_graph, 1)
        for community in communities:
            assert set(community.tightness) == set(community.members)
            assert all(0.0 <= value <= 1.0 for value in community.tightness.values())

    def test_ego_with_no_friends(self):
        graph = Graph(nodes=[1])
        assert divide_ego(graph, 1) == []

    def test_leaf_ego_gets_single_singleton_community(self, fig7_graph):
        communities = divide_ego(fig7_graph, 9)
        assert len(communities) == 1
        assert communities[0].members == frozenset({6})
        assert communities[0].tightness[6] == 1.0

    def test_members_by_tightness_ordering(self, fig7_graph):
        communities = divide_ego(fig7_graph, 1)
        c1 = next(c for c in communities if c.members == frozenset({2, 3, 4}))
        ordered = c1.members_by_tightness()
        assert ordered[-1] == 4  # the loosest member comes last

    def test_members_by_tightness_cached_and_copy_safe(self, fig7_graph):
        communities = divide_ego(fig7_graph, 1)
        community = max(communities, key=lambda c: c.size)
        ordered = community.members_by_tightness()
        ordered.append("mutated")  # returned list is a copy
        assert community.members_by_tightness() == ordered[:-1]

    def test_members_by_tightness_lexsort_branch_matches_sorted(self):
        # Communities >= _LEXSORT_MIN_SIZE order via np.lexsort; ties on
        # tightness must still break by repr exactly like the key sort.
        import random

        from repro.core.division import LocalCommunity

        rng = random.Random(3)
        size = LocalCommunity._LEXSORT_MIN_SIZE + 10
        members = frozenset(range(size))
        tightness = {member: rng.choice([0.0, 0.25, 0.5]) for member in members}
        community = LocalCommunity(ego=0, members=members, tightness=tightness)
        expected = sorted(members, key=lambda node: (-tightness[node], repr(node)))
        assert community.members_by_tightness() == expected

    def test_alternative_detectors(self, fig7_graph):
        for detector in ("label_propagation", "louvain"):
            communities = divide_ego(fig7_graph, 1, detector=detector)
            covered = set().union(*(c.members for c in communities))
            assert covered == {2, 3, 4, 5, 6}

    def test_unknown_detector_raises(self):
        with pytest.raises(PipelineError):
            get_detector("spectral")


class TestDivide:
    def test_covers_requested_egos_only(self, fig7_graph):
        result = divide(fig7_graph, egos=[1, 2])
        assert set(result.communities_by_ego) == {1, 2}

    def test_default_covers_all_nodes(self, fig7_graph):
        result = divide(fig7_graph)
        assert result.num_egos == fig7_graph.num_nodes

    def test_community_containing(self, fig7_graph):
        result = divide(fig7_graph, egos=[1])
        community = result.community_containing(1, 2)
        assert community is not None and 2 in community
        assert result.community_containing(1, 99) is None
        assert result.community_containing(42, 2) is None

    def test_all_communities_and_sizes(self, fig7_graph):
        result = divide(fig7_graph, egos=[1, 9])
        sizes = result.community_sizes()
        assert len(sizes) == result.num_communities
        assert sum(sizes) == sum(c.size for c in result.all_communities())

    def test_merge_disjoint_shards(self, fig7_graph):
        left = divide(fig7_graph, egos=[1])
        right = divide(fig7_graph, egos=[2])
        merged = left.merge(right)
        assert set(merged.communities_by_ego) == {1, 2}

    def test_merge_overlapping_shards_raises(self, fig7_graph):
        left = divide(fig7_graph, egos=[1])
        with pytest.raises(PipelineError):
            left.merge(left)

    def test_every_friend_appears_in_exactly_one_local_community(self, fig7_graph):
        result = divide(fig7_graph)
        for ego, communities in result.communities_by_ego.items():
            friends = set(fig7_graph.neighbors(ego))
            covered: list = []
            for community in communities:
                covered.extend(community.members)
            assert sorted(map(repr, covered)) == sorted(map(repr, friends))

    def test_local_community_contains_protocol(self, fig7_graph):
        result = divide(fig7_graph, egos=[1])
        community = result.community_containing(1, 5)
        assert isinstance(community, LocalCommunity)
        assert 5 in community and 2 not in community

    def test_empty_result_helpers(self):
        result = DivisionResult()
        assert result.num_egos == 0
        assert result.num_communities == 0
        assert list(result.all_communities()) == []
        assert result.communities_of(3) == []
