"""Fault-injection suite for the supervised shard executor.

The fast tier runs every retry/backoff/timeout path on an injected
:class:`FakeClock` — **zero real sleeps** (enforced by a fixture that makes
``time.sleep`` raise).  Process-pool recovery (hard worker kill →
``BrokenProcessPool`` → rebuild/degrade, real hang → future timeout) needs
real subprocesses and real waiting, so those tests are marked ``slow``.

The invariant checked throughout: any fault schedule that eventually
succeeds yields a merged ``DivisionResult`` bit-identical to the clean
serial run.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import ResilienceConfig
from repro.exceptions import (
    CheckpointError,
    ModelConfigError,
    PipelineError,
    RetryExhaustedError,
    ShardFailedError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.graph.generators import paper_figure7_network
from repro.runtime import (
    FakeClock,
    Fault,
    FaultPlan,
    PermanentInjectedError,
    RetryPolicy,
    Shard,
    ShardCheckpointStore,
    ShardedDivisionExecutor,
    TransientInjectedError,
    run_chaos,
    shard_fingerprint,
    shard_nodes,
    validate_shards,
)


@pytest.fixture
def no_real_sleep(monkeypatch):
    """Fail the test if anything in the fast tier actually wall-sleeps."""

    def _boom(seconds):  # pragma: no cover - only fires on regression
        raise AssertionError(f"real time.sleep({seconds}) in fast-tier test")

    monkeypatch.setattr("time.sleep", _boom)


@pytest.fixture
def graph():
    return paper_figure7_network()


@pytest.fixture
def clean_division(graph):
    report = ShardedDivisionExecutor(num_shards=3, detector="girvan_newman").run(graph)
    return report.division


def _executor(graph, plan=None, clock=None, **resilience_kwargs):
    resilience = ResilienceConfig(**resilience_kwargs)
    return ShardedDivisionExecutor(
        num_shards=3,
        detector="girvan_newman",
        resilience=resilience,
        fault_plan=plan,
        clock=clock if clock is not None else FakeClock(),
    )


# --------------------------------------------------------------- RetryPolicy
class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, backoff_factor=2.0, max_delay=0.3,
                             jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        first = policy.delay(1, key=3)
        assert first == policy.delay(1, key=3)  # pure function of (seed, key, n)
        assert 0.1 <= first <= 0.1 * 1.5
        assert policy.delay(1, key=4) != first  # per-shard schedules differ

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(ShardTimeoutError(0, 1.0))
        assert policy.is_retryable(WorkerCrashError(0))
        assert policy.is_retryable(TransientInjectedError(0, 0))  # transient attr
        assert not policy.is_retryable(PermanentInjectedError(0, 0))
        assert not policy.is_retryable(ValueError("boom"))

    def test_validation(self):
        with pytest.raises(ModelConfigError):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ModelConfigError):
            RetryPolicy(backoff_factor=0.5).validate()
        with pytest.raises(ModelConfigError):
            RetryPolicy(jitter=1.5).validate()

    def test_from_config(self):
        config = ResilienceConfig(max_attempts=5, backoff_base=0.2, seed=11)
        policy = RetryPolicy.from_config(config)
        assert policy.max_attempts == 5
        assert policy.base_delay == pytest.approx(0.2)
        assert policy.seed == 11


class TestResilienceConfig:
    def test_validation(self):
        ResilienceConfig().validate()
        with pytest.raises(ModelConfigError):
            ResilienceConfig(on_shard_failure="retry_forever").validate()
        with pytest.raises(ModelConfigError):
            ResilienceConfig(shard_timeout=0.0).validate()
        with pytest.raises(ModelConfigError):
            ResilienceConfig(max_pool_rebuilds=-1).validate()

    def test_locec_config_carries_resilience(self):
        from repro.core.config import LoCECConfig

        config = LoCECConfig()
        config.resilience.on_shard_failure = "bogus"
        with pytest.raises(ModelConfigError):
            config.validate()


class TestFakeClock:
    def test_sleep_advances_and_records(self):
        clock = FakeClock()
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.monotonic() == pytest.approx(2.0)
        assert clock.sleeps == [1.5, 0.5]


# ----------------------------------------------------------------- FaultPlan
class TestFaultPlan:
    def test_fault_lookup(self):
        plan = FaultPlan([Fault(1, 0, "transient"), Fault(2, 1, "hang")])
        assert plan.fault_for(1, 0).kind == "transient"
        assert plan.fault_for(1, 1) is None
        assert len(plan) == 2

    def test_duplicate_and_unknown_kind_rejected(self):
        with pytest.raises(PipelineError):
            FaultPlan([Fault(0, 0, "transient"), Fault(0, 0, "kill")])
        with pytest.raises(PipelineError):
            Fault(0, 0, "meteor_strike")

    def test_random_plan_is_seeded_and_eventually_succeeds(self):
        plans = [
            FaultPlan.random(range(8), seed=3, fault_rate=0.9, max_attempts=3)
            for _ in range(2)
        ]
        assert [list(p) for p in plans][0] == [list(p) for p in plans][1]
        # Faults only land on non-final attempts: attempt budget 3 means no
        # fault beyond attempt index 1, so every shard can still succeed.
        assert all(fault.attempt < 2 for fault in plans[0])
        assert len(plans[0]) > 0

    def test_injected_errors_survive_pickling(self):
        for error in (TransientInjectedError(3, 1), PermanentInjectedError(2, 0)):
            clone = pickle.loads(pickle.dumps(error))
            assert type(clone) is type(error)
            assert (clone.shard_id, clone.attempt) == (error.shard_id, error.attempt)
        timeout = pickle.loads(pickle.dumps(ShardTimeoutError(4, 2.5)))
        assert timeout.shard_id == 4 and timeout.timeout_seconds == 2.5


# ---------------------------------------------------------- shard validation
class TestShardValidation:
    def test_shard_nodes_dedupes_input(self):
        shards = shard_nodes([1, 2, 1, 3, 2], num_shards=2)
        covered = [node for shard in shards for node in shard.egos]
        assert sorted(covered) == [1, 2, 3]

    def test_empty_shards_dropped(self):
        shards = validate_shards(shard_nodes([1, 2], num_shards=5))
        assert len(shards) == 2
        assert all(shard.size > 0 for shard in shards)

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(PipelineError):
            validate_shards([Shard(0, (1,)), Shard(0, (2,))])

    def test_overlapping_egos_rejected(self):
        with pytest.raises(PipelineError):
            validate_shards([Shard(0, (1, 2)), Shard(1, (2, 3))])

    def test_executor_drops_empty_shards(self, graph):
        report = ShardedDivisionExecutor(num_shards=6, detector="girvan_newman").run(
            graph, egos=[1, 2, 3]
        )
        assert len(report.shard_reports) == 3  # six requested, three non-empty
        assert report.division.num_egos == 3


# ------------------------------------------------------- serial supervision
class TestSerialSupervision:
    def test_transient_faults_and_timeout_yield_identical_division(
        self, graph, clean_division, no_real_sleep
    ):
        # Transient failures on two shards plus one hang-past-timeout: the
        # acceptance scenario.  Everything recovers within the retry budget.
        plan = FaultPlan(
            [
                Fault(0, 0, "transient"),
                Fault(1, 0, "transient"),
                Fault(1, 1, "transient"),
                Fault(2, 0, "hang"),
            ]
        )
        clock = FakeClock()
        executor = _executor(graph, plan=plan, clock=clock, shard_timeout=5.0)
        report = executor.run(graph)
        assert report.division.communities_by_ego == clean_division.communities_by_ego
        assert report.total_retries == 4
        assert report.total_timeouts == 1
        assert not report.failed_shards
        by_id = {r.shard_id: r for r in report.shard_reports}
        assert by_id[0].attempts == 2
        assert by_id[1].attempts == 3
        assert by_id[2].attempts == 2 and by_id[2].timeouts == 1
        # Backoff happened — on the virtual clock only.
        assert len(clock.sleeps) >= 4

    def test_kill_fault_is_simulated_and_retried_in_serial_mode(
        self, graph, clean_division, no_real_sleep
    ):
        plan = FaultPlan([Fault(0, 0, "kill")])
        report = _executor(graph, plan=plan).run(graph)
        assert report.division.communities_by_ego == clean_division.communities_by_ego
        assert report.total_retries == 1

    def test_retry_exhaustion_raises(self, graph, no_real_sleep):
        plan = FaultPlan([Fault(1, attempt, "transient") for attempt in range(3)])
        executor = _executor(graph, plan=plan, max_attempts=3)
        with pytest.raises(RetryExhaustedError) as info:
            executor.run(graph)
        assert info.value.shard_id == 1
        assert info.value.attempts == 3
        assert isinstance(info.value.cause, TransientInjectedError)

    def test_timeout_exhaustion_raises(self, graph, no_real_sleep):
        plan = FaultPlan([Fault(0, attempt, "hang") for attempt in range(3)])
        executor = _executor(graph, plan=plan, max_attempts=3, shard_timeout=1.0)
        with pytest.raises(RetryExhaustedError) as info:
            executor.run(graph)
        assert isinstance(info.value.cause, ShardTimeoutError)

    def test_permanent_fault_raises_without_retries(self, graph, no_real_sleep):
        plan = FaultPlan([Fault(2, 0, "permanent")])
        with pytest.raises(ShardFailedError) as info:
            _executor(graph, plan=plan).run(graph)
        assert not isinstance(info.value, RetryExhaustedError)
        assert info.value.attempts == 1

    def test_skip_mode_keeps_partial_result_first_class(
        self, graph, clean_division, no_real_sleep
    ):
        plan = FaultPlan([Fault(1, attempt, "transient") for attempt in range(3)])
        report = _executor(
            graph, plan=plan, max_attempts=3, on_shard_failure="skip"
        ).run(graph)
        assert [f.shard_id for f in report.failed_shards] == [1]
        assert report.failed_shards[0].attempts == 3
        assert "TransientInjectedError" in report.failed_shards[0].error
        # Exactly the other shards' egos survive, with correct content.
        done = {r.shard_id for r in report.shard_reports}
        assert done == {0, 2}
        for ego, communities in report.division.communities_by_ego.items():
            assert communities == clean_division.communities_by_ego[ego]

    def test_serial_fallback_completes_despite_permanent_faults(
        self, graph, clean_division, no_real_sleep
    ):
        # The fallback re-runs the shard in-process with fault injection
        # bypassed (injected faults model infrastructure failures).
        plan = FaultPlan([Fault(0, 0, "permanent")])
        report = _executor(
            graph, plan=plan, on_shard_failure="serial_fallback"
        ).run(graph)
        assert report.division.communities_by_ego == clean_division.communities_by_ego
        assert not report.failed_shards

    def test_backoff_uses_injected_clock_deterministically(self, graph, no_real_sleep):
        plan = FaultPlan([Fault(0, 0, "transient")])
        sleeps = []
        for _ in range(2):
            clock = FakeClock()
            _executor(graph, plan=plan, clock=clock).run(graph)
            sleeps.append(clock.sleeps)
        assert sleeps[0] == sleeps[1]  # deterministic jitter
        assert len(sleeps[0]) == 1


# -------------------------------------------------------- checkpoint/resume
class TestCheckpointResume:
    def test_mid_run_failure_then_resume_recomputes_only_unfinished(
        self, graph, clean_division, tmp_path, no_real_sleep
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        # Shard 2 fails permanently: the run dies, shards 0 and 1 spilled.
        plan = FaultPlan([Fault(2, 0, "permanent")])
        executor = _executor(graph, plan=plan, checkpoint_dir=checkpoint_dir)
        with pytest.raises(ShardFailedError):
            executor.run(graph)
        store = ShardCheckpointStore(checkpoint_dir)
        shards = validate_shards(shard_nodes(list(graph.nodes()), 3))
        assert store.load(shards[0], "girvan_newman") is not None
        assert store.load(shards[1], "girvan_newman") is not None
        assert store.load(shards[2], "girvan_newman") is None

        # Resume without faults: only shard 2 is recomputed.
        report = _executor(graph, checkpoint_dir=checkpoint_dir).run(
            graph, resume_from=checkpoint_dir
        )
        assert report.division.communities_by_ego == clean_division.communities_by_ego
        by_id = {r.shard_id: r for r in report.shard_reports}
        assert by_id[0].from_checkpoint and by_id[1].from_checkpoint
        assert not by_id[2].from_checkpoint
        # The resumed run completed shard 2's checkpoint too.
        assert store.load(shards[2], "girvan_newman") is not None

    def test_checkpoints_with_wrong_fingerprint_are_ignored(
        self, graph, tmp_path, no_real_sleep
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        _executor(graph, checkpoint_dir=checkpoint_dir).run(graph)
        # Same directory, different detector: nothing may be reused.
        report = ShardedDivisionExecutor(
            num_shards=3,
            detector="label_propagation",
            resilience=ResilienceConfig(),
            clock=FakeClock(),
        ).run(graph, resume_from=checkpoint_dir)
        assert all(not r.from_checkpoint for r in report.shard_reports)

    def test_no_tmp_files_left_behind(self, graph, tmp_path, no_real_sleep):
        checkpoint_dir = tmp_path / "ckpt"
        _executor(graph, checkpoint_dir=str(checkpoint_dir)).run(graph)
        assert not list(checkpoint_dir.glob("*.tmp"))
        assert len(list(checkpoint_dir.glob("shard-*.pkl"))) == 3

    def test_corrupt_checkpoint_raises_checkpoint_error(self, tmp_path):
        store = ShardCheckpointStore(tmp_path)
        shard = Shard(0, (1, 2))
        (tmp_path / "shard-00000.pkl").write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            store.load(shard, "girvan_newman")

    def test_fingerprint_depends_on_content(self):
        shard = Shard(0, (1, 2, 3))
        assert shard_fingerprint(shard, "girvan_newman") != shard_fingerprint(
            shard, "louvain"
        )
        assert shard_fingerprint(shard, "girvan_newman") != shard_fingerprint(
            Shard(0, (1, 2)), "girvan_newman"
        )


# ------------------------------------------------------------------- chaos
class TestChaos:
    def test_run_chaos_is_bit_identical_and_sleep_free(
        self, tiny_workload, no_real_sleep
    ):
        report = run_chaos(
            tiny_workload.dataset, num_shards=4, fault_rate=0.5, seed=3, max_egos=40
        )
        assert report.identical_to_clean
        assert not report.failed_shards
        assert report.completed_shards == report.num_shards == 4
        text = report.to_text()
        assert "identical to clean run: True" in text

    def test_cli_chaos_exit_code(self, capsys, no_real_sleep):
        from repro.cli import main

        code = main(
            ["chaos", "--scale", "tiny", "--seed", "1", "--fault-rate", "0.4",
             "--max-egos", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "identical to clean run: True" in out


# ------------------------------------------------------- process-pool tier
@pytest.mark.slow
class TestPoolSupervision:
    def test_worker_transient_fault_is_retried(self, graph, clean_division):
        plan = FaultPlan([Fault(0, 0, "transient"), Fault(1, 0, "transient")])
        executor = ShardedDivisionExecutor(
            num_shards=3,
            num_workers=2,
            detector="girvan_newman",
            resilience=ResilienceConfig(backoff_base=0.01, backoff_max=0.05),
            fault_plan=plan,
        )
        report = executor.run(graph)
        assert report.division.communities_by_ego == clean_division.communities_by_ego
        assert report.total_retries == 2

    def test_hard_worker_kill_rebuilds_pool_and_recovers(self, graph, clean_division):
        # os._exit in a worker breaks the whole pool: the executor rebuilds
        # it once and the killed shard (plus collateral in-flight shards)
        # retries to a bit-identical merge without data loss.
        plan = FaultPlan([Fault(1, 0, "kill")])
        executor = ShardedDivisionExecutor(
            num_shards=3,
            num_workers=2,
            detector="girvan_newman",
            resilience=ResilienceConfig(
                backoff_base=0.01, backoff_max=0.05,
                on_shard_failure="serial_fallback",
            ),
            fault_plan=plan,
        )
        report = executor.run(graph)
        assert report.division.communities_by_ego == clean_division.communities_by_ego
        assert report.pool_rebuilds == 1
        assert not report.failed_shards

    def test_repeated_pool_breakage_degrades_to_serial(self, graph, clean_division):
        # Kills on consecutive attempts of the same shard exceed the rebuild
        # budget (0): execution degrades to in-process serial, where kills
        # are simulated as WorkerCrashError and retried — no data loss.
        plan = FaultPlan([Fault(1, 0, "kill"), Fault(1, 1, "kill")])
        executor = ShardedDivisionExecutor(
            num_shards=3,
            num_workers=2,
            detector="girvan_newman",
            resilience=ResilienceConfig(
                backoff_base=0.01, backoff_max=0.05, max_pool_rebuilds=0,
                max_attempts=4,
            ),
            fault_plan=plan,
        )
        report = executor.run(graph)
        assert report.degraded_to_serial
        assert report.division.communities_by_ego == clean_division.communities_by_ego

    def test_real_hang_hits_future_timeout_and_retries(self, graph, clean_division):
        plan = FaultPlan([Fault(0, 0, "hang", duration=1.2)])
        executor = ShardedDivisionExecutor(
            num_shards=3,
            num_workers=2,
            detector="girvan_newman",
            resilience=ResilienceConfig(
                shard_timeout=0.3, backoff_base=0.01, backoff_max=0.05
            ),
            fault_plan=plan,
        )
        report = executor.run(graph)
        assert report.division.communities_by_ego == clean_division.communities_by_ego
        assert report.total_timeouts == 1
