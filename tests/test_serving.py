"""Online serving layer: incremental updates, parity, chaos, sessions.

The parity suite asserts the serving layer's core contract:
``fit(G)`` followed by ``apply_updates(Δ)`` is **bit-identical** to a
from-scratch ``fit(G + Δ)``.  Baselines are built by *re-running the
deterministic generator* (identical dict/set insertion history) and
mutating the fresh inputs the same way — never ``deepcopy``, which rebuilds
adjacency sets in iteration order and perturbs detector tie-breaks.
"""

from __future__ import annotations

import statistics

import numpy as np
import pytest

from repro.clock import FakeClock
from repro.core import LoCEC, LoCECConfig
from repro.core.aggregation import FeatureMatrixBuilder
from repro.core.combination import community_key
from repro.exceptions import NotFittedError, PipelineError
from repro.graph import Graph, InteractionStore, NodeFeatureStore
from repro.lifecycle import Closeable
from repro.runtime import Fault, FaultPlan
from repro.runtime.executor import ShardedDivisionExecutor
from repro.runtime.phase2_exec import Phase2ShardedRunner
from repro.serve import ServingSession, StreamingMoments, replay_traffic
from repro.synthetic import make_workload
from repro.types import LabeledEdge


def _config(detector="label_propagation", phase2_workers=0, model="xgb"):
    maker = LoCECConfig.locec_xgb if model == "xgb" else LoCECConfig.locec_cnn
    config = maker(seed=0, community_detector=detector)
    config.gbdt.num_rounds = 8
    config.cnn.epochs = 2
    config.phase2_workers = phase2_workers
    return config


def _fit(config, graph, features, interactions, labeled_edges):
    return LoCEC(config).fit(graph, features, interactions, labeled_edges)


def _choose_deltas(graph, features, interactions):
    """Deterministic delta batch: one add, one remove, one interaction
    delta on an already-interacting pair, one feature replacement."""
    nodes = list(graph.nodes())
    added = next(
        (u, v)
        for i, u in enumerate(nodes)
        for v in nodes[i + 1 :]
        if not graph.has_edge(u, v)
    )
    removed = next(edge for edge in graph.edges() if edge != added)
    pair = next(edge for edge, vector in interactions.items() if vector.any())
    delta = np.full(interactions.num_dims, 2.0)
    feat_node = nodes[3]
    new_feat = np.asarray(features.get_view(feat_node)) + 1.0
    return added, removed, pair, delta, feat_node, new_feat


def _apply_to_inputs(graph, features, interactions, deltas):
    """Mutate pristine inputs the way ``apply_updates`` would."""
    added, removed, pair, delta, feat_node, new_feat = deltas
    graph.add_edge(*added)
    graph.remove_edge(*removed)
    interactions.set_vector(pair[0], pair[1], interactions.vector(*pair) + delta)
    features.set(feat_node, new_feat)


def _assert_bit_identical(incremental, scratch, query_edges):
    div_a = incremental.division_.communities_by_ego
    div_b = scratch.division_.communities_by_ego
    assert list(div_a) == list(div_b)
    assert div_a == div_b
    rv_a = incremental.edge_feature_builder_.result_vectors
    rv_b = scratch.edge_feature_builder_.result_vectors
    assert set(rv_a) == set(rv_b)
    for key in rv_a:
        assert np.array_equal(rv_a[key], rv_b[key]), key
    assert np.array_equal(
        incremental.predict_edge_proba(query_edges),
        scratch.predict_edge_proba(query_edges),
    )


class TestIncrementalParity:
    @pytest.mark.parametrize(
        "detector,phase2_workers",
        [
            ("girvan_newman", 0),
            ("label_propagation", 0),
            ("louvain", 0),
            ("label_propagation", 2),
        ],
    )
    def test_apply_updates_matches_scratch_fit(self, detector, phase2_workers):
        workload = make_workload("tiny", seed=1)
        dataset = workload.dataset
        deltas = _choose_deltas(dataset.graph, dataset.features, dataset.interactions)
        with _fit(
            _config(detector, phase2_workers),
            dataset.graph,
            dataset.features,
            dataset.interactions,
            workload.train_edges,
        ) as incremental:
            added, removed, pair, delta, feat_node, new_feat = deltas
            report = incremental.apply_updates(
                added_edges=[added],
                removed_edges=[removed],
                interaction_deltas=[(pair[0], pair[1], delta)],
                feature_updates=[(feat_node, new_feat)],
            )
            assert not report.degraded
            assert report.num_dirty_egos > 0

            baseline = make_workload("tiny", seed=1)  # identical history
            _apply_to_inputs(
                baseline.dataset.graph,
                baseline.dataset.features,
                baseline.dataset.interactions,
                deltas,
            )
            with _fit(
                _config(detector, phase2_workers),
                baseline.dataset.graph,
                baseline.dataset.features,
                baseline.dataset.interactions,
                baseline.train_edges,
            ) as scratch:
                _assert_bit_identical(
                    incremental, scratch, [item.edge for item in workload.test_edges]
                )

    def test_apply_updates_matches_scratch_fit_cnn(self):
        """CommCNN warm path re-scores the full batch — parity must hold."""
        workload = make_workload("tiny", seed=1)
        dataset = workload.dataset
        pair = next(
            edge for edge, vector in dataset.interactions.items() if vector.any()
        )
        delta = np.full(dataset.interactions.num_dims, 3.0)
        with _fit(
            _config(model="cnn"),
            dataset.graph,
            dataset.features,
            dataset.interactions,
            workload.train_edges,
        ) as incremental:
            incremental.apply_updates(interaction_deltas=[(pair[0], pair[1], delta)])
            baseline = make_workload("tiny", seed=1)
            inter = baseline.dataset.interactions
            inter.set_vector(pair[0], pair[1], inter.vector(*pair) + delta)
            with _fit(
                _config(model="cnn"),
                baseline.dataset.graph,
                baseline.dataset.features,
                inter,
                baseline.train_edges,
            ) as scratch:
                _assert_bit_identical(
                    incremental, scratch, [item.edge for item in workload.test_edges]
                )

    def test_apply_updates_matches_scratch_fit_string_labels(self):
        def relabeled():
            workload = make_workload("tiny", seed=1)
            dataset = workload.dataset
            rename = {node: f"user:{node}" for node in dataset.graph.nodes()}
            graph = Graph(nodes=(rename[n] for n in dataset.graph.nodes()))
            for u, v in dataset.graph.edges():
                graph.add_edge(rename[u], rename[v])
            features = NodeFeatureStore(dataset.features.feature_names)
            for node in dataset.features.nodes():
                features.set(rename[node], np.asarray(dataset.features.get_view(node)))
            interactions = InteractionStore(num_dims=dataset.interactions.num_dims)
            for (u, v), vector in dataset.interactions.items():
                interactions.set_vector(rename[u], rename[v], vector.copy())
            labeled = [
                LabeledEdge(rename[item.u], rename[item.v], item.label)
                for item in workload.train_edges
            ]
            queries = [
                (rename[item.u], rename[item.v]) for item in workload.test_edges
            ]
            return graph, features, interactions, labeled, queries

        graph, features, interactions, labeled, queries = relabeled()
        deltas = _choose_deltas(graph, features, interactions)
        with _fit(_config(), graph, features, interactions, labeled) as incremental:
            added, removed, pair, delta, feat_node, new_feat = deltas
            incremental.apply_updates(
                added_edges=[added],
                removed_edges=[removed],
                interaction_deltas=[(pair[0], pair[1], delta)],
                feature_updates=[(feat_node, new_feat)],
            )
            graph_b, features_b, interactions_b, labeled_b, _ = relabeled()
            _apply_to_inputs(graph_b, features_b, interactions_b, deltas)
            with _fit(
                _config(), graph_b, features_b, interactions_b, labeled_b
            ) as scratch:
                _assert_bit_identical(incremental, scratch, queries)


@pytest.fixture()
def fitted_tiny():
    workload = make_workload("tiny", seed=1)
    dataset = workload.dataset
    pipeline = _fit(
        _config(),
        dataset.graph,
        dataset.features,
        dataset.interactions,
        workload.train_edges,
    )
    yield pipeline, workload
    pipeline.close()


class TestWarmModels:
    def test_idempotent_readd_skips_rescore_and_refit(self, fitted_tiny):
        pipeline, workload = fitted_tiny
        edge = next(workload.dataset.graph.edges())
        report = pipeline.apply_updates(added_edges=[edge])
        assert report.num_dirty_egos >= 2
        assert report.num_redivided_egos == report.num_dirty_egos
        assert report.num_rescored_communities == 0
        assert not report.classifier_refit
        assert report.kernel_patched
        assert not report.degraded

    def test_interaction_delta_rescores_exactly_dirty_communities(
        self, fitted_tiny
    ):
        pipeline, workload = fitted_tiny
        graph = workload.dataset.graph
        division = pipeline.division_
        pair = next(
            (u, v)
            for (u, v), vector in workload.dataset.interactions.items()
            if vector.any() and graph.neighbors(u) & graph.neighbors(v)
        )
        # The dirty-community rule: the ego is never a member of its own
        # communities, so a delta on (u, v) touches exactly the communities
        # of the common neighbourhood containing both endpoints.
        expected = {
            community_key(community)
            for ego in graph.neighbors(pair[0]) & graph.neighbors(pair[1])
            for community in division.communities_of(ego)
            if pair[0] in community and pair[1] in community
        }
        total = sum(1 for _ in division.all_communities())
        delta = np.full(workload.dataset.interactions.num_dims, 5.0)
        report = pipeline.apply_updates(
            interaction_deltas=[(pair[0], pair[1], delta)]
        )
        assert report.kernel_patched  # in-place delta compilation
        if report.classifier_refit:
            # A dirty community sat in the training set: the GBDT refits and
            # (for batch-shape parity) everything is re-scored.
            assert report.num_rescored_communities == total
        else:
            assert report.num_rescored_communities == len(expected)
            assert len(expected) < total

    def test_update_epoch_and_always_fresh_labeler(self, fitted_tiny):
        pipeline, workload = fitted_tiny
        labeler_before = pipeline.edge_labeler_
        epoch_before = pipeline.update_epoch
        pipeline.apply_updates(added_edges=[next(workload.dataset.graph.edges())])
        assert pipeline.update_epoch == epoch_before + 1
        assert pipeline.edge_labeler_ is not labeler_before

    def test_apply_updates_requires_fit(self):
        with pytest.raises(NotFittedError):
            LoCEC(_config()).apply_updates(added_edges=[(0, 1)])


class TestChaosDegradation:
    def test_faulted_redivision_serves_stale_then_heals(self, fitted_tiny):
        pipeline, workload = fitted_tiny
        edge = next(workload.dataset.graph.edges())
        queries = [item.edge for item in workload.test_edges[:10]]
        # Permanent faults are never retried: with on_shard_failure="skip"
        # every dirty ego degrades to stale service immediately.
        plan = FaultPlan(
            [Fault(shard_id=shard, attempt=0, kind="permanent") for shard in range(4)]
        )
        with ServingSession(pipeline, clock=FakeClock()) as session:
            before = session.predict_proba(queries)
            report = session.apply_updates(added_edges=[edge], fault_plan=plan)
            assert report.degraded
            assert set(report.stale_egos) == set(session.stale_egos)
            assert session.stale_egos
            assert session.stats.num_degraded_updates == 1
            # Stale-but-consistent: the previous communities keep serving,
            # and an idempotent re-add changes no inputs, so the served
            # probabilities are unchanged bit for bit.
            after = session.predict_proba(queries)
            assert np.array_equal(after, before)
            # A later clean update over the same egos heals the staleness.
            healed = session.apply_updates(added_edges=[edge])
            assert not healed.degraded
            assert not session.stale_egos

    def test_replay_traffic_under_seeded_chaos(self, fitted_tiny):
        pipeline, _ = fitted_tiny
        plan = FaultPlan.random(range(4), seed=3, fault_rate=0.8, kinds=("transient",))
        with ServingSession(pipeline, clock=FakeClock()) as session:
            report = replay_traffic(
                session,
                num_batches=6,
                queries_per_batch=8,
                seed=3,
                fault_plan=plan,
            )
        # Recoverable faults: every query answered, nothing left stale.
        assert report.num_queries == 48
        assert report.num_updates == 2
        assert report.num_degraded_updates == 0
        assert report.stale_egos == ()


class TestServingSession:
    def test_cache_hits_and_version_invalidation(self, fitted_tiny):
        pipeline, workload = fitted_tiny
        queries = [item.edge for item in workload.test_edges[:6]]
        with ServingSession(pipeline, cache_size=64, clock=FakeClock()) as session:
            first = session.predict_proba(queries)
            assert session.stats.cache_misses == len(queries)
            assert session.stats.cache_hits == 0
            second = session.predict_proba(queries)
            assert session.stats.cache_hits == len(queries)
            assert np.array_equal(first, second)
            # Any update bumps the epoch: every cached row is stale at once.
            session.apply_updates(
                added_edges=[next(workload.dataset.graph.edges())]
            )
            session.predict_proba(queries)
            assert session.stats.cache_misses == 2 * len(queries)

    def test_lru_eviction_and_disabled_cache(self, fitted_tiny):
        pipeline, workload = fitted_tiny
        e1, e2, e3 = [item.edge for item in workload.test_edges[:3]]
        with ServingSession(pipeline, cache_size=2, clock=FakeClock()) as session:
            for edge in (e1, e2, e3):  # e3 evicts e1 (LRU)
                session.predict_proba([edge])
            session.predict_proba([e3])
            assert session.stats.cache_hits == 1
            session.predict_proba([e1])
            assert session.stats.cache_misses == 4
        with ServingSession(pipeline, cache_size=0, clock=FakeClock()) as session:
            session.predict_proba([e1])
            session.predict_proba([e1])
            assert session.stats.cache_hits == 0

    def test_predict_edges_and_empty_batch(self, fitted_tiny):
        pipeline, workload = fitted_tiny
        queries = [item.edge for item in workload.test_edges[:4]]
        with ServingSession(pipeline, clock=FakeClock()) as session:
            labels = session.predict_edges(queries)
            proba = session.predict_proba(queries)
            assert [int(label) for label in labels] == list(
                np.argmax(proba, axis=1)
            )
            empty = session.predict_proba([])
            assert empty.shape == (0, proba.shape[1])

    def test_lifecycle_and_validation(self, fitted_tiny):
        pipeline, workload = fitted_tiny
        session = ServingSession(pipeline, clock=FakeClock())
        session.close()
        session.close()  # idempotent
        with pytest.raises(PipelineError):
            session.predict_proba([next(workload.dataset.graph.edges())])
        with pytest.raises(PipelineError):
            ServingSession(pipeline, cache_size=-1)
        with pytest.raises(NotFittedError):
            ServingSession(LoCEC(_config()))

    def test_replay_counts_are_deterministic(self, fitted_tiny):
        pipeline, _ = fitted_tiny

        def run_replay(p):
            with ServingSession(p, clock=FakeClock()) as session:
                return replay_traffic(
                    session, num_batches=5, queries_per_batch=7, seed=11
                )

        workload = make_workload("tiny", seed=1)
        other = _fit(
            _config(),
            workload.dataset.graph,
            workload.dataset.features,
            workload.dataset.interactions,
            workload.train_edges,
        )
        try:
            first, second = run_replay(pipeline), run_replay(other)
        finally:
            other.close()
        for field in (
            "num_batches",
            "num_queries",
            "num_updates",
            "num_degraded_updates",
            "num_structural_updates",
            "stale_egos",
        ):
            assert getattr(first, field) == getattr(second, field)


class TestStreamingMoments:
    def test_welford_matches_batch_statistics(self):
        values = [0.1, 0.5, 0.2, 0.9, 0.4, 0.7, 0.3]
        moments = StreamingMoments()
        for value in values:
            moments.add(value)
        assert moments.count == len(values)
        assert moments.mean == pytest.approx(statistics.fmean(values))
        assert moments.std == pytest.approx(statistics.stdev(values))

    def test_percentiles(self):
        empty = StreamingMoments()
        assert empty.percentile(0.95) == 0.0
        constant = StreamingMoments()
        for _ in range(5):
            constant.add(2.5)
        assert constant.percentile(0.99) == 2.5
        spread = StreamingMoments()
        for value in (0.1, 0.4, 0.9, 1.6):
            spread.add(value)
        assert (
            spread.percentile(0.50)
            < spread.percentile(0.95)
            < spread.percentile(0.99)
        )
        with pytest.raises(ValueError):
            spread.percentile(1.0)
        summary = spread.summary()
        assert set(summary) == {"count", "mean", "std", "p50", "p95", "p99"}


def test_lease_owners_conform_to_closeable_protocol():
    # MP004's runtime counterpart: every class owning an ShmLease (directly
    # or through an owning resource) satisfies the structural protocol.
    for owner in (
        ShardedDivisionExecutor,
        FeatureMatrixBuilder,
        Phase2ShardedRunner,
        ServingSession,
        LoCEC,
    ):
        assert issubclass(owner, Closeable), owner.__name__
