"""Tests for the comparative methods: ProbWP, Economix, plain XGBoost,
group-name rules and the advertising targeting policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    Economix,
    GroupNameRuleClassifier,
    ProbWP,
    XGBoostEdgeClassifier,
    classify_group_name,
    relation_targeting,
    type_aware_targeting,
)
from repro.exceptions import NotFittedError, PipelineError
from repro.graph import Graph
from repro.synthetic.groups import ChatGroup, GroupCollection
from repro.types import LabeledEdge, RelationType, canonical_edge


@pytest.fixture(scope="module")
def tiny_data(request):
    workload = request.getfixturevalue("tiny_workload")
    return workload


def _accuracy(predictions, test_edges):
    y_true = np.array([int(item.label) for item in test_edges])
    y_pred = np.array([int(label) for label in predictions])
    return float((y_true == y_pred).mean())


class TestProbWP:
    def test_requires_labels(self):
        with pytest.raises(PipelineError):
            ProbWP().fit(Graph(edges=[(1, 2)]), [])

    def test_invalid_configuration(self):
        with pytest.raises(PipelineError):
            ProbWP(num_hashes=0)

    def test_structural_similarity_properties(self, two_cliques_graph):
        labels = [LabeledEdge(0, 1, RelationType.FAMILY)]
        model = ProbWP(num_hashes=64, seed=0).fit(two_cliques_graph, labels)
        same_clique = model.structural_similarity(0, 1)
        cross_clique = model.structural_similarity(0, 7)
        assert 0.0 <= cross_clique <= same_clique <= 1.0
        assert model.structural_similarity(0, "unknown") == 0.0

    def test_known_edge_returns_its_label(self, two_cliques_graph):
        labels = [LabeledEdge(0, 1, RelationType.SCHOOLMATE)]
        model = ProbWP(seed=0).fit(two_cliques_graph, labels)
        assert model.predict_edge(1, 0) is RelationType.SCHOOLMATE

    def test_propagates_within_dense_block(self, two_cliques_graph):
        labels = [
            LabeledEdge(0, 1, RelationType.FAMILY),
            LabeledEdge(1, 2, RelationType.FAMILY),
            LabeledEdge(4, 5, RelationType.COLLEAGUE),
            LabeledEdge(5, 6, RelationType.COLLEAGUE),
        ]
        model = ProbWP(seed=0).fit(two_cliques_graph, labels)
        assert model.predict_edge(0, 2) is RelationType.FAMILY
        assert model.predict_edge(6, 7) is RelationType.COLLEAGUE

    def test_beats_chance_on_synthetic_network(self, tiny_data):
        model = ProbWP(seed=0).fit(tiny_data.dataset.graph, tiny_data.train_edges)
        predictions = model.predict([item.edge for item in tiny_data.test_edges])
        assert _accuracy(predictions, tiny_data.test_edges) > 0.45

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            ProbWP().predict_edge(1, 2)


class TestEconomix:
    def test_requires_labels(self, tiny_data):
        with pytest.raises(PipelineError):
            Economix().fit(tiny_data.dataset.graph, tiny_data.dataset.interactions, [])

    def test_invalid_configuration(self):
        with pytest.raises(PipelineError):
            Economix(rank=0)

    def test_probabilities_normalised(self, tiny_data):
        model = Economix(seed=0).fit(
            tiny_data.dataset.graph, tiny_data.dataset.interactions, tiny_data.train_edges
        )
        probabilities = model.predict_proba([item.edge for item in tiny_data.test_edges[:10]])
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(10), atol=1e-9)

    def test_beats_chance_on_synthetic_network(self, tiny_data):
        model = Economix(seed=0).fit(
            tiny_data.dataset.graph, tiny_data.dataset.interactions, tiny_data.train_edges
        )
        predictions = model.predict([item.edge for item in tiny_data.test_edges])
        assert _accuracy(predictions, tiny_data.test_edges) > 0.45

    def test_unfitted_raises(self, tiny_data):
        with pytest.raises(NotFittedError):
            Economix().predict([(1, 2)])


@pytest.mark.slow
class TestXGBoostEdge:
    def test_requires_labels(self, tiny_data):
        with pytest.raises(PipelineError):
            XGBoostEdgeClassifier().fit(
                tiny_data.dataset.features, tiny_data.dataset.interactions, []
            )

    def test_beats_chance_on_synthetic_network(self, tiny_data):
        model = XGBoostEdgeClassifier(num_rounds=20, seed=0).fit(
            tiny_data.dataset.features,
            tiny_data.dataset.interactions,
            tiny_data.train_edges,
        )
        predictions = model.predict([item.edge for item in tiny_data.test_edges])
        assert _accuracy(predictions, tiny_data.test_edges) > 0.4

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            XGBoostEdgeClassifier().predict([(1, 2)])

    def test_sparsity_hurts_recall_versus_locec(self, tiny_data):
        """The paper's central claim: raw edge features lose to aggregated ones."""
        from repro.core import LoCEC, LoCECConfig
        from repro.ml.metrics import classification_report

        raw = XGBoostEdgeClassifier(num_rounds=20, seed=0).fit(
            tiny_data.dataset.features,
            tiny_data.dataset.interactions,
            tiny_data.train_edges,
        )
        config = LoCECConfig.locec_xgb(seed=0)
        config.gbdt.num_rounds = 15
        locec = LoCEC(config)
        locec.fit(
            tiny_data.dataset.graph,
            tiny_data.dataset.features,
            tiny_data.dataset.interactions,
            tiny_data.train_edges,
            division=tiny_data.division(),
        )
        test_edges = [item.edge for item in tiny_data.test_edges]
        y_true = np.array([int(item.label) for item in tiny_data.test_edges])
        raw_report = classification_report(
            y_true, np.array([int(x) for x in raw.predict(test_edges)])
        )
        locec_report = classification_report(
            y_true, np.array([int(x) for x in locec.predict_edges(test_edges)])
        )
        assert locec_report.overall.f1 > raw_report.overall.f1


class TestGroupNameRules:
    def test_classify_group_name_patterns(self):
        assert classify_group_name("Wang Family Reunion") is RelationType.FAMILY
        assert classify_group_name("R&D Department") is RelationType.COLLEAGUE
        assert classify_group_name("Class of 2009 Middle School") is RelationType.SCHOOLMATE
        assert classify_group_name("Happy Group 17") is None

    def test_predict_pairs_only_from_indicative_groups(self):
        groups = GroupCollection(
            groups=[
                ChatGroup(0, "Li Family", frozenset({1, 2, 3}), RelationType.FAMILY),
                ChatGroup(1, "Weekend Plans 3", frozenset({4, 5}), RelationType.OTHER),
            ]
        )
        predictions = GroupNameRuleClassifier(groups).predict_pairs()
        assert canonical_edge(1, 2) in predictions
        assert canonical_edge(4, 5) not in predictions
        assert all(p.label is RelationType.FAMILY for p in predictions.values())

    def test_evaluation_high_precision_low_recall(self, tiny_data):
        classifier = GroupNameRuleClassifier(tiny_data.dataset.groups)
        results = classifier.evaluate(tiny_data.dataset.edge_types)
        for precision, recall, _ in results.values():
            assert recall < 0.5
            if precision > 0:
                assert precision > 0.6

    def test_evaluation_keys_are_major_types(self, tiny_data):
        classifier = GroupNameRuleClassifier(tiny_data.dataset.groups)
        results = classifier.evaluate(tiny_data.dataset.edge_types)
        assert set(results) == set(RelationType.classification_targets())


class TestAdTargetingPolicies:
    @pytest.fixture
    def star_graph(self):
        graph = Graph()
        for friend in range(1, 7):
            graph.add_edge(0, friend)
        return graph

    def test_relation_targeting_picks_top_scored_friends(self, star_graph):
        audience = relation_targeting(star_graph, [0], lambda node: -node, 3)
        assert audience == [1, 2, 3]

    def test_relation_targeting_excludes_seeds(self, star_graph):
        audience = relation_targeting(star_graph, [0, 1], lambda node: 1.0, 10)
        assert 0 not in audience and 1 not in audience

    def test_type_aware_targeting_prefers_matching_type(self, star_graph):
        labels = {
            canonical_edge(0, friend): (
                RelationType.FAMILY if friend in (4, 5) else RelationType.COLLEAGUE
            )
            for friend in range(1, 7)
        }
        audience = type_aware_targeting(
            star_graph, [0], lambda node: -node, 2, labels, RelationType.FAMILY
        )
        assert set(audience) == {4, 5}

    def test_type_aware_targeting_falls_back_when_pool_too_small(self, star_graph):
        labels = {canonical_edge(0, 1): RelationType.FAMILY}
        audience = type_aware_targeting(
            star_graph, [0], lambda node: -node, 4, labels, RelationType.FAMILY
        )
        assert 1 in audience
        assert len(audience) == 4
