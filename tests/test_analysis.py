"""Tests for the analysis package (CDF utilities and Section II statistics)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    common_group_cdf,
    community_size_cdf,
    empirical_cdf,
    format_table1,
    interaction_count_cdf,
    interaction_rate_by_category,
    major_type_share,
    median,
    median_community_size,
    pairs_with_no_common_group,
    percentile,
    silent_pair_fraction,
    table1_rows,
)
from repro.exceptions import ExperimentError
from repro.types import MomentsCategory, RelationType


class TestCdfUtilities:
    def test_empirical_cdf_known_values(self):
        cdf = empirical_cdf([1, 2, 2, 3], points=[0, 1, 2, 3, 4])
        assert cdf == [0.0, 0.25, 0.75, 1.0, 1.0]

    def test_empirical_cdf_is_monotone(self):
        cdf = empirical_cdf([5, 1, 3, 3, 9], points=list(range(10)))
        assert cdf == sorted(cdf)

    def test_empirical_cdf_empty_sample(self):
        assert empirical_cdf([], points=[1, 2]) == [0.0, 0.0]

    def test_empirical_cdf_requires_points(self):
        with pytest.raises(ExperimentError):
            empirical_cdf([1, 2], points=[])

    def test_percentile_and_median(self):
        values = list(range(1, 101))
        assert median(values) == pytest.approx(50.5)
        assert percentile(values, 90) == pytest.approx(90.1, abs=0.2)
        assert percentile([], 50) == 0.0
        with pytest.raises(ExperimentError):
            percentile([1], 200)


class TestGroupStats:
    def test_cdf_per_type_monotone_and_bounded(self, tiny_workload):
        dataset = tiny_workload.dataset
        cdfs = common_group_cdf(dataset.groups, dataset.edge_types)
        for series in cdfs.values():
            assert series == sorted(series)
            assert series[-1] == pytest.approx(1.0)

    def test_colleagues_share_more_groups_than_family(self, tiny_workload):
        """Figure 2 shape: the colleague CDF lies below the family CDF at 0."""
        dataset = tiny_workload.dataset
        no_group = pairs_with_no_common_group(dataset.groups, dataset.edge_types)
        assert no_group[RelationType.COLLEAGUE] < no_group[RelationType.FAMILY]


class TestMomentsStats:
    def test_pictures_dominate_likes_for_all_types(self, tiny_workload):
        dataset = tiny_workload.dataset
        rates = interaction_rate_by_category(
            dataset.interactions, dataset.edge_types, behaviour="like"
        )
        for relation in RelationType.classification_targets():
            assert rates[relation][MomentsCategory.PICTURE] >= rates[relation][MomentsCategory.GAME]

    def test_schoolmates_like_games_most(self, tiny_workload):
        dataset = tiny_workload.dataset
        rates = interaction_rate_by_category(
            dataset.interactions, dataset.edge_types, behaviour="like"
        )
        game_rates = {
            relation: rates[relation][MomentsCategory.GAME]
            for relation in RelationType.classification_targets()
        }
        assert max(game_rates, key=game_rates.get) is RelationType.SCHOOLMATE

    def test_invalid_behaviour_rejected(self, tiny_workload):
        dataset = tiny_workload.dataset
        with pytest.raises(ValueError):
            interaction_rate_by_category(dataset.interactions, dataset.edge_types, "share")

    def test_interaction_cdf_monotone(self, tiny_workload):
        dataset = tiny_workload.dataset
        cdfs = interaction_count_cdf(dataset.interactions, dataset.edge_types)
        for series in cdfs.values():
            assert series == sorted(series)

    def test_silent_fraction_matches_paper_ballpark(self, tiny_workload):
        dataset = tiny_workload.dataset
        silent = silent_pair_fraction(dataset.interactions, dataset.edge_types)
        for value in silent.values():
            assert 0.4 <= value <= 0.8


class TestCommunityStats:
    def test_size_cdf_reaches_one(self, tiny_division):
        cdf = community_size_cdf(tiny_division, points=[1, 2, 4, 8, 16, 32, 64, 128, 256])
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf == sorted(cdf)

    def test_median_size_is_small(self, tiny_division):
        value = median_community_size(tiny_division)
        assert 1 <= value <= 30


class TestSurveyStats:
    def test_table1_rows_cover_all_first_categories(self, tiny_workload):
        rows = table1_rows(tiny_workload.survey)
        first_names = {row[0] for row in rows}
        assert {"Family Members", "Colleague", "Schoolmates", "Others"} <= first_names

    def test_major_type_share_close_to_paper(self, tiny_workload):
        share = major_type_share(tiny_workload.survey)
        assert 0.7 <= share <= 1.0

    def test_format_table1_renders(self, tiny_workload):
        text = format_table1(tiny_workload.survey)
        assert "First Category" in text
        assert "Colleague" in text
