"""Tests for sharded Phase II execution (:mod:`repro.runtime.phase2_exec`).

The PR's hard invariant is bit-identity: for every entry point — batch rows,
statistic vectors, the CommCNN input tensor — the sharded path must produce
arrays byte-equal to the serial kernel, on int- and string-labeled graphs,
under uneven shard buckets, in the ``phase2_workers=1`` degenerate case, and
under seeded kill/hang fault schedules that force pool rebuilds.  The slow
tier additionally proves /dev/shm segments never leak across a forced
rebuild, and the staleness guard refuses to serve a published kernel whose
source stores have moved on.
"""

from __future__ import annotations

import random
from pathlib import Path

import numpy as np
import pytest

from repro.core.aggregation import FeatureMatrixBuilder
from repro.core.config import LoCECConfig, ResilienceConfig
from repro.core.division import LocalCommunity
from repro.exceptions import (
    ExecutorError,
    ModelConfigError,
    PipelineError,
    ShardFailedError,
    StalePhase2KernelError,
)
from repro.graph import InteractionStore, NodeFeatureStore
from repro.graph.phase2 import Phase2Kernel
from repro.graph.shm import shm_supported
from repro.lint.config import default_config
from repro.runtime.faultinject import Fault, FaultPlan
from repro.runtime.phase2_exec import (
    Phase2ExecutionReport,
    Phase2ShardedRunner,
    Phase2ShardReport,
    shard_communities,
)
from repro.runtime.resilience import FakeClock

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="POSIX shared memory unavailable"
)

K = 5

#: Deliberately skewed sizes so LPT produces uneven shard buckets.
SKEWED_SIZES = (12, 1, 8, 2, 2, 7, 1, 5, 3, 1)


def _labels(kind: str, count: int = 30) -> list:
    if kind == "str":
        # String labels defeat small-int set-layout coincidences.
        return [f"user:{node:04d}" for node in range(count)]
    return list(range(count))


def _stores(seed: int, labels: list) -> tuple[NodeFeatureStore, InteractionStore]:
    """Random stores over ``labels``, with some nodes missing on purpose."""
    rng = random.Random(seed)
    features = NodeFeatureStore(["f0", "f1", "f2"])
    interactions = InteractionStore(num_dims=4)
    for node in labels:
        if rng.random() < 0.85:
            features.set(node, [rng.randint(0, 5) + 0.5 for _ in range(3)])
    for i, u in enumerate(labels):
        for v in labels[i + 1 :]:
            if rng.random() < 0.3:
                interactions.record(u, v, rng.randrange(4), rng.randint(1, 9))
    return features, interactions


def _communities(
    seed: int, labels: list, sizes: tuple[int, ...] = SKEWED_SIZES
) -> list[LocalCommunity]:
    rng = random.Random(seed + 99)
    communities = []
    for index, size in enumerate(sizes):
        members = frozenset(rng.sample(labels, min(size, len(labels))))
        communities.append(
            LocalCommunity(
                ego=labels[0],
                members=members,
                tightness={member: rng.random() for member in members},
                index=index,
            )
        )
    return communities


def _tensor_pairs(communities, k: int = K):
    return [
        (community.members, community.members_by_tightness()[:k])
        for community in communities
    ]


def _stat_pairs(communities):
    return [
        (community.members, community.members_by_tightness())
        for community in communities
    ]


def _assert_runner_matches_kernel(runner, kernel, communities, k: int = K) -> None:
    """All three entry points, bit-for-bit against the serial kernel."""
    tensor_pairs = _tensor_pairs(communities, k)
    stat_pairs = _stat_pairs(communities)
    rows, offsets = runner.rows_batch(tensor_pairs)
    serial_rows, serial_offsets = kernel.community_rows_batch(tensor_pairs)
    assert np.array_equal(rows, serial_rows)
    assert np.array_equal(offsets, serial_offsets)
    assert np.array_equal(
        runner.statistics(stat_pairs), kernel.community_statistics(stat_pairs)
    )
    assert np.array_equal(
        runner.tensor(tensor_pairs, k=k), kernel.community_tensor(tensor_pairs, k)
    )


# ----------------------------------------------------------------- sharding
class TestShardCommunities:
    def test_lpt_balances_skewed_sizes(self):
        shards = shard_communities([5, 1, 9, 2, 2, 7], 3)
        loads = sorted(shard.total_members for shard in shards)
        assert loads == [8, 9, 9]
        assert [shard.shard_id for shard in shards] == [0, 1, 2]

    def test_partition_is_exact_and_ascending(self):
        sizes = list(SKEWED_SIZES)
        shards = shard_communities(sizes, 4)
        seen = [index for shard in shards for index in shard.indices]
        assert sorted(seen) == list(range(len(sizes)))
        for shard in shards:
            assert list(shard.indices) == sorted(shard.indices)

    def test_empty_buckets_dropped_and_renumbered(self):
        shards = shard_communities([3, 2], 5)
        assert len(shards) == 2
        assert [shard.shard_id for shard in shards] == [0, 1]

    def test_deterministic(self):
        assert shard_communities(list(SKEWED_SIZES), 3) == shard_communities(
            list(SKEWED_SIZES), 3
        )

    def test_invalid_shard_count(self):
        with pytest.raises(ExecutorError):
            shard_communities([1, 2], 0)


# ------------------------------------------------------------- bit identity
class TestBitIdentityInProcess:
    """The in-process sharded path (num_workers=1): shard + merge only."""

    @pytest.mark.parametrize("label_kind", ["int", "str"])
    @pytest.mark.parametrize("num_shards", [1, 3, 7])
    def test_all_entry_points_match_serial_kernel(self, label_kind, num_shards):
        labels = _labels(label_kind)
        features, interactions = _stores(0, labels)
        communities = _communities(0, labels)
        kernel = Phase2Kernel.compile(features, interactions)
        with Phase2ShardedRunner(
            kernel, num_workers=1, num_shards=num_shards
        ) as runner:
            _assert_runner_matches_kernel(runner, kernel, communities)

    def test_more_shards_than_communities(self):
        labels = _labels("int")
        features, interactions = _stores(1, labels)
        communities = _communities(1, labels, sizes=(4, 2))
        kernel = Phase2Kernel.compile(features, interactions)
        with Phase2ShardedRunner(kernel, num_workers=1, num_shards=16) as runner:
            _assert_runner_matches_kernel(runner, kernel, communities)

    def test_empty_batch(self):
        labels = _labels("int")
        features, interactions = _stores(2, labels)
        kernel = Phase2Kernel.compile(features, interactions)
        with Phase2ShardedRunner(kernel, num_workers=1, num_shards=3) as runner:
            rows, offsets = runner.rows_batch([])
            assert rows.shape[0] == 0
            assert list(offsets) == [0]
            assert runner.statistics([]).shape[0] == 0

    def test_report_accounting(self):
        labels = _labels("int")
        features, interactions = _stores(3, labels)
        communities = _communities(3, labels)
        kernel = Phase2Kernel.compile(features, interactions)
        with Phase2ShardedRunner(kernel, num_workers=1, num_shards=3) as runner:
            runner.statistics(_stat_pairs(communities))
            report = runner.last_report
        assert report is not None
        assert report.mode == "stats"
        assert report.num_communities == len(communities)
        assert sum(r.num_communities for r in report.shard_reports) == len(
            communities
        )
        assert report.failed_shards == []
        assert report.makespan_seconds >= 0.0


# ------------------------------------------------------------ builder route
class TestBuilderRouting:
    def _builders(self, seed=4):
        labels = _labels("int")
        features, interactions = _stores(seed, labels)
        communities = _communities(seed, labels)
        serial = FeatureMatrixBuilder(features, interactions, k=K, backend="csr")
        sharded = FeatureMatrixBuilder(
            features, interactions, k=K, backend="csr", phase2_workers=1
        )
        return serial, sharded, communities

    def test_degenerate_single_worker_bit_identical(self):
        """phase2_workers=1: sharded slice-and-merge, no pool — byte-equal."""
        serial, sharded, communities = self._builders()
        with sharded:
            assert np.array_equal(
                serial.statistic_vectors(communities),
                sharded.statistic_vectors(communities),
            )
            assert np.array_equal(
                serial.matrices_as_tensor(communities),
                sharded.matrices_as_tensor(communities),
            )
            for left, right in zip(
                serial.feature_matrices(communities),
                sharded.feature_matrices(communities),
            ):
                assert left.member_order == right.member_order
                assert np.array_equal(left.matrix, right.matrix)
            assert sharded.phase2_report is not None

    def test_dict_backend_rejects_workers(self):
        labels = _labels("int")
        features, interactions = _stores(5, labels)
        with pytest.raises(PipelineError):
            FeatureMatrixBuilder(
                features, interactions, k=K, backend="dict", phase2_workers=2
            )

    def test_config_validation(self):
        with pytest.raises(ModelConfigError):
            LoCECConfig(phase2_workers=-1).validate()
        with pytest.raises(ModelConfigError):
            LoCECConfig(backend="dict", phase2_workers=2).validate()
        LoCECConfig(backend="csr", phase2_workers=2).validate()

    def test_invalidate_kernel_tears_down_runner(self):
        _, sharded, communities = self._builders(6)
        with sharded:
            sharded.statistic_vectors(communities)
            assert sharded._runner is not None
            lease = sharded._runner._lease
            sharded.invalidate_kernel()
            assert sharded._runner is None
            if lease is not None:  # pooled transport only
                assert lease.released


# ------------------------------------------------- serial fault simulation
class TestSerialFaultSimulation:
    """Supervision semantics without a pool: faults run in simulation mode."""

    def _setup(self, seed=7):
        labels = _labels("int")
        features, interactions = _stores(seed, labels)
        communities = _communities(seed, labels)
        kernel = Phase2Kernel.compile(features, interactions)
        return kernel, communities

    def test_seeded_schedule_bit_identical(self):
        kernel, communities = self._setup()
        plan = FaultPlan.random(
            list(range(4)), seed=11, fault_rate=0.8, max_attempts=3
        )
        assert len(plan) > 0
        with Phase2ShardedRunner(
            kernel,
            num_workers=1,
            num_shards=4,
            resilience=ResilienceConfig(max_attempts=3, shard_timeout=5.0),
            fault_plan=plan,
            clock=FakeClock(),
        ) as runner:
            _assert_runner_matches_kernel(runner, kernel, communities)
            report = runner.last_report
        assert report is not None
        # The same plan re-fires for every entry-point call.
        assert report.total_retries > 0

    def test_skip_leaves_zero_block_and_records_failure(self):
        kernel, communities = self._setup(8)
        # Permanent fault on shard 0 attempt 0: never retried, budget spent.
        plan = FaultPlan([Fault(0, 0, "permanent")])
        with Phase2ShardedRunner(
            kernel,
            num_workers=1,
            num_shards=3,
            resilience=ResilienceConfig(max_attempts=2, on_shard_failure="skip"),
            fault_plan=plan,
            clock=FakeClock(),
        ) as runner:
            stats = runner.statistics(_stat_pairs(communities))
            report = runner.last_report
        assert report is not None
        assert [f.shard_id for f in report.failed_shards] == [0]
        serial = kernel.community_statistics(_stat_pairs(communities))
        failed_indices = set()
        for shard in shard_communities(
            [len(c.members) for c in communities], 3
        ):
            if shard.shard_id == 0:
                failed_indices = set(shard.indices)
        for index in range(len(communities)):
            if index in failed_indices:
                assert not stats[index].any()
            else:
                assert np.array_equal(stats[index], serial[index])

    def test_raise_mode_surfaces_shard_failure(self):
        kernel, communities = self._setup(9)
        plan = FaultPlan([Fault(0, 0, "permanent")])
        with Phase2ShardedRunner(
            kernel,
            num_workers=1,
            num_shards=2,
            resilience=ResilienceConfig(max_attempts=2, on_shard_failure="raise"),
            fault_plan=plan,
            clock=FakeClock(),
        ) as runner:
            with pytest.raises(ShardFailedError):
                runner.statistics(_stat_pairs(communities))

    def test_serial_fallback_recovers_bit_identical(self):
        kernel, communities = self._setup(10)
        plan = FaultPlan(
            [Fault(0, attempt, "permanent") for attempt in range(2)]
        )
        with Phase2ShardedRunner(
            kernel,
            num_workers=1,
            num_shards=3,
            resilience=ResilienceConfig(
                max_attempts=2, on_shard_failure="serial_fallback"
            ),
            fault_plan=plan,
            clock=FakeClock(),
        ) as runner:
            stats = runner.statistics(_stat_pairs(communities))
        assert np.array_equal(
            stats, kernel.community_statistics(_stat_pairs(communities))
        )


# -------------------------------------------------------------- stale guard
class TestStaleKernelGuard:
    def test_mutation_after_publish_raises(self):
        labels = _labels("int")
        features, interactions = _stores(12, labels)
        communities = _communities(12, labels)
        kernel = Phase2Kernel.compile(features, interactions)
        versions = (features.version, interactions.version)
        runner = Phase2ShardedRunner(
            kernel,
            num_workers=1,
            num_shards=2,
            source_versions=versions,
            version_probe=lambda: (features.version, interactions.version),
        )
        try:
            runner.statistics(_stat_pairs(communities))
            features.set(labels[0], [9.0, 9.0, 9.0])
            with pytest.raises(StalePhase2KernelError):
                runner.statistics(_stat_pairs(communities))
        finally:
            runner.close()

    def test_builder_republishes_after_store_write(self):
        """The builder route recompiles + rebuilds the runner instead of
        raising: parity with a fresh serial builder holds across writes."""
        labels = _labels("int")
        features, interactions = _stores(13, labels)
        communities = _communities(13, labels)
        with FeatureMatrixBuilder(
            features, interactions, k=K, backend="csr", phase2_workers=1
        ) as sharded:
            sharded.statistic_vectors(communities)
            first_runner = sharded._runner
            interactions.record(labels[0], labels[1], 0, 100)
            features.set(labels[0], [7.0, 7.0, 7.0])
            fresh = FeatureMatrixBuilder(features, interactions, k=K, backend="csr")
            assert np.array_equal(
                sharded.statistic_vectors(communities),
                fresh.statistic_vectors(communities),
            )
            assert sharded._runner is not first_runner


# ---------------------------------------------------------------- reporting
class TestExecutionReport:
    def test_makespan_is_lpt_packing_plus_overhead(self):
        report = Phase2ExecutionReport(num_workers=2, parent_seconds=0.5)
        for shard_id, seconds in enumerate([3.0, 2.0, 2.0, 1.0]):
            report.shard_reports.append(
                Phase2ShardReport(
                    shard_id=shard_id,
                    num_communities=1,
                    total_members=1,
                    seconds=seconds,
                )
            )
        # LPT onto 2 workers: {3, 1} and {2, 2} -> makespan 4.
        assert report.makespan_seconds == pytest.approx(4.0 + 0.5)
        assert report.total_seconds == pytest.approx(8.0)

    def test_empty_report_makespan_is_overhead(self):
        report = Phase2ExecutionReport(num_workers=4, parent_seconds=0.25)
        assert report.makespan_seconds == pytest.approx(0.25)


# --------------------------------------------------------------- lint scope
class TestLintScope:
    def test_mp_rules_cover_phase2_exec(self):
        config = default_config()
        for rule in ("MP001", "MP003"):
            assert config.applies_to(rule, "src/repro/runtime/phase2_exec.py")
            assert config.applies_to(rule, "src/repro/runtime/executor.py")

    def test_pinned_entries_survive_scope_narrowing(self):
        """The explicit file entries keep the MP rules on the supervisors
        even if the broad src/repro prefix is dropped."""
        config = default_config().with_scope(
            "MP001",
            "src/repro/runtime/executor.py",
            "src/repro/runtime/phase2_exec.py",
        )
        assert config.applies_to("MP001", "src/repro/runtime/phase2_exec.py")
        assert not config.applies_to("MP001", "src/repro/core/pipeline.py")


# ------------------------------------------------------------- pooled tier
@needs_shm
@pytest.mark.slow
class TestPooledExecution:
    def _setup(self, seed=20):
        labels = _labels("str")
        features, interactions = _stores(seed, labels)
        communities = _communities(seed, labels)
        kernel = Phase2Kernel.compile(features, interactions)
        return kernel, communities

    def test_pooled_bit_identical_over_shm(self):
        kernel, communities = self._setup()
        with Phase2ShardedRunner(
            kernel,
            num_workers=2,
            num_shards=3,
            resilience=ResilienceConfig(transport="shm"),
        ) as runner:
            _assert_runner_matches_kernel(runner, kernel, communities)
            report = runner.last_report
        assert report is not None
        assert report.transport.transport == "shm"
        assert report.transport.payload_bytes < 4096  # O(1) handle
        assert report.transport.segment_bytes > 0

    def test_pooled_bit_identical_over_pickle(self):
        kernel, communities = self._setup(21)
        with Phase2ShardedRunner(
            kernel,
            num_workers=2,
            num_shards=3,
            resilience=ResilienceConfig(transport="pickle"),
        ) as runner:
            _assert_runner_matches_kernel(runner, kernel, communities)
            report = runner.last_report
        assert report is not None
        assert report.transport.transport == "pickle"

    def test_seeded_kill_hang_schedule_rebuilds_and_merges_identical(self):
        kernel, communities = self._setup(22)
        plan = FaultPlan(
            [
                Fault(0, 0, "kill"),
                Fault(1, 0, "hang", duration=0.2),
                Fault(2, 1, "transient"),
            ]
        )
        with Phase2ShardedRunner(
            kernel,
            num_workers=2,
            num_shards=3,
            resilience=ResilienceConfig(
                max_attempts=3,
                shard_timeout=30.0,
                max_pool_rebuilds=2,
                transport="shm",
            ),
            fault_plan=plan,
            clock=FakeClock(),
        ) as runner:
            stat_pairs = _stat_pairs(communities)
            stats = runner.statistics(stat_pairs)
            report = runner.last_report
        assert report is not None
        assert report.pool_rebuilds >= 1
        assert report.total_retries >= 1
        # The pre-rebuild lease was swept and the kernel republished.
        assert report.transport.swept_segments > 0
        assert np.array_equal(stats, kernel.community_statistics(stat_pairs))

    def test_no_dev_shm_leak_after_forced_rebuild(self):
        shm_dir = Path("/dev/shm")
        before = (
            {p.name for p in shm_dir.iterdir() if p.name.startswith("psm_")}
            if shm_dir.is_dir()
            else set()
        )
        kernel, communities = self._setup(23)
        plan = FaultPlan([Fault(0, 0, "kill")])
        with Phase2ShardedRunner(
            kernel,
            num_workers=2,
            num_shards=3,
            resilience=ResilienceConfig(
                max_attempts=3,
                max_pool_rebuilds=2,
                transport="shm",
            ),
            fault_plan=plan,
            clock=FakeClock(),
        ) as runner:
            runner.statistics(_stat_pairs(communities))
            report = runner.last_report
        assert report is not None
        assert report.pool_rebuilds >= 1
        if shm_dir.is_dir():
            after = {
                p.name for p in shm_dir.iterdir() if p.name.startswith("psm_")
            }
            assert after - before == set()

    def test_builder_pooled_statistic_vectors_bit_identical(self):
        labels = _labels("int")
        features, interactions = _stores(24, labels)
        communities = _communities(24, labels)
        serial = FeatureMatrixBuilder(features, interactions, k=K, backend="csr")
        with FeatureMatrixBuilder(
            features, interactions, k=K, backend="csr", phase2_workers=2
        ) as sharded:
            assert np.array_equal(
                serial.statistic_vectors(communities),
                sharded.statistic_vectors(communities),
            )
            assert np.array_equal(
                serial.matrices_as_tensor(communities),
                sharded.matrices_as_tensor(communities),
            )
