"""Tests for the Graph class, ego-network extraction and structural metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, SelfLoopError
from repro.graph import Graph, ego_network, ego_network_size, ego_networks
from repro.graph.metrics import (
    average_clustering,
    average_degree,
    common_neighbors,
    degree_histogram,
    density,
    edge_count_within,
    is_connected,
    jaccard_similarity,
    local_clustering,
    shortest_path_lengths,
)


class TestGraphBasics:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge(1, 2)
        assert graph.has_node(1) and graph.has_node(2)
        assert graph.has_edge(1, 2) and graph.has_edge(2, 1)

    def test_add_duplicate_edge_is_idempotent(self):
        graph = Graph(edges=[(1, 2), (1, 2), (2, 1)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(SelfLoopError):
            graph.add_edge(3, 3)

    def test_add_node_isolated(self):
        graph = Graph()
        graph.add_node(9)
        assert graph.has_node(9)
        assert graph.degree(9) == 0

    def test_remove_edge(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        graph.remove_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert graph.has_node(1)
        assert graph.num_edges == 1

    def test_remove_missing_edge_raises(self):
        graph = Graph(edges=[(1, 2)])
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(1, 3)

    def test_remove_node_drops_incident_edges(self):
        graph = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        graph.remove_node(2)
        assert not graph.has_node(2)
        assert graph.num_edges == 1
        assert graph.has_edge(1, 3)

    def test_remove_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.remove_node(1)

    def test_neighbors_of_missing_node_raises(self):
        graph = Graph()
        with pytest.raises(NodeNotFoundError):
            graph.neighbors(1)

    def test_degree_and_degrees(self, fig7_graph):
        assert fig7_graph.degree(1) == 5
        degrees = fig7_graph.degrees()
        assert degrees[1] == 5
        assert sum(degrees.values()) == 2 * fig7_graph.num_edges

    def test_edges_are_reported_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        assert len(set(edges)) == 3

    def test_subgraph_induces_only_given_nodes(self, fig7_graph):
        sub = fig7_graph.subgraph([2, 3, 4, 99])
        assert set(sub.nodes()) == {2, 3, 4}
        assert sub.num_edges == 3

    def test_subgraph_ignores_missing_nodes(self):
        graph = Graph(edges=[(1, 2)])
        sub = graph.subgraph([1, 5])
        assert set(sub.nodes()) == {1}

    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.remove_edge(1, 2)
        assert triangle_graph.has_edge(1, 2)
        assert not clone.has_edge(1, 2)

    def test_equality(self):
        a = Graph(edges=[(1, 2), (2, 3)])
        b = Graph(edges=[(2, 3), (1, 2)])
        assert a == b
        b.add_edge(3, 4)
        assert a != b

    def test_len_iter_contains(self, triangle_graph):
        assert len(triangle_graph) == 3
        assert set(iter(triangle_graph)) == {1, 2, 3}
        assert 2 in triangle_graph
        assert 9 not in triangle_graph

    def test_repr_mentions_counts(self, triangle_graph):
        assert "num_nodes=3" in repr(triangle_graph)

    def test_neighbor_list_is_a_copy(self, triangle_graph):
        listed = triangle_graph.neighbor_list(1)
        listed.append(99)
        assert 99 not in triangle_graph.neighbors(1)


class TestEgoNetwork:
    def test_paper_example_ego_network(self, fig7_graph):
        ego = ego_network(fig7_graph, 1)
        assert set(ego.nodes()) == {2, 3, 4, 5, 6}
        assert ego.has_edge(2, 3) and ego.has_edge(5, 6) and ego.has_edge(4, 6)
        # Edges incident to the ego node are dropped.
        assert not ego.has_node(1)

    def test_ego_network_contains_isolated_friends(self):
        graph = Graph(edges=[(0, 1), (0, 2)])
        ego = ego_network(graph, 0)
        assert set(ego.nodes()) == {1, 2}
        assert ego.num_edges == 0

    def test_ego_network_of_leaf_node(self, fig7_graph):
        ego = ego_network(fig7_graph, 9)
        assert set(ego.nodes()) == {6}
        assert ego.num_edges == 0

    def test_ego_networks_default_covers_all_nodes(self, triangle_graph):
        results = dict(ego_networks(triangle_graph))
        assert set(results) == {1, 2, 3}

    def test_ego_networks_subset(self, fig7_graph):
        results = dict(ego_networks(fig7_graph, egos=[1, 5]))
        assert set(results) == {1, 5}

    def test_ego_network_size_matches_materialised(self, fig7_graph):
        for node in fig7_graph.nodes():
            friends, edges = ego_network_size(fig7_graph, node)
            ego = ego_network(fig7_graph, node)
            assert friends == ego.num_nodes
            assert edges == ego.num_edges

    def test_ego_network_of_missing_node_raises(self, fig7_graph):
        with pytest.raises(NodeNotFoundError):
            ego_network(fig7_graph, 42)


class TestMetrics:
    def test_density_of_clique(self, triangle_graph):
        assert density(triangle_graph) == pytest.approx(1.0)

    def test_density_of_trivial_graphs(self):
        assert density(Graph()) == 0.0
        assert density(Graph(nodes=[1])) == 0.0

    def test_local_clustering_triangle(self, triangle_graph):
        assert local_clustering(triangle_graph, 1) == pytest.approx(1.0)

    def test_local_clustering_star_center_is_zero(self):
        star = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert local_clustering(star, 0) == 0.0

    def test_average_clustering_bounds(self, fig7_graph):
        value = average_clustering(fig7_graph)
        assert 0.0 <= value <= 1.0

    def test_degree_histogram_sums_to_node_count(self, fig7_graph):
        histogram = degree_histogram(fig7_graph)
        assert sum(histogram.values()) == fig7_graph.num_nodes

    def test_average_degree(self, triangle_graph):
        assert average_degree(triangle_graph) == pytest.approx(2.0)

    def test_shortest_path_lengths(self, two_cliques_graph):
        lengths = shortest_path_lengths(two_cliques_graph, 0)
        assert lengths[3] == 1
        assert lengths[4] == 2
        assert lengths[7] == 3

    def test_is_connected(self, two_cliques_graph):
        assert is_connected(two_cliques_graph)
        two_cliques_graph.remove_edge(3, 4)
        assert not is_connected(two_cliques_graph)

    def test_is_connected_empty_graph(self):
        assert is_connected(Graph())

    def test_common_neighbors(self, fig7_graph):
        assert common_neighbors(fig7_graph, 2, 3) == {1, 4}

    def test_jaccard_similarity_bounds_and_symmetry(self, fig7_graph):
        value = jaccard_similarity(fig7_graph, 2, 3)
        assert 0.0 < value <= 1.0
        assert value == pytest.approx(jaccard_similarity(fig7_graph, 3, 2))

    def test_jaccard_similarity_disjoint(self):
        graph = Graph(edges=[(1, 2), (3, 4)])
        assert jaccard_similarity(graph, 1, 3) == 0.0

    def test_edge_count_within(self, fig7_graph):
        assert edge_count_within(fig7_graph, [2, 3, 4]) == 3
        assert edge_count_within(fig7_graph, [5, 6]) == 1
        assert edge_count_within(fig7_graph, []) == 0
