"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.io import load_dataset_json


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "table1"])
        assert args.experiment == "table1"
        assert args.scale == "small"
        assert args.seed == 0

    def test_generate_arguments(self):
        args = build_parser().parse_args(["generate", "out.json", "--scale", "tiny", "--seed", "7"])
        assert args.output == "out.json"
        assert args.scale == "tiny"
        assert args.seed == 7

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table1", "--scale", "huge"])


class TestCommands:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        printed = capsys.readouterr().out.split()
        assert "table4" in printed and "fig14" in printed

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "table1", "--scale", "tiny", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "Relationship types in user surveys" in output
        assert "Colleague" in output

    def test_run_projection_experiment(self, capsys):
        assert main(["run", "table6"]) == 0
        output = capsys.readouterr().out
        assert "73.7" in output

    def test_generate_round_trips(self, tmp_path, capsys):
        target = tmp_path / "network.json"
        assert main(["generate", str(target), "--scale", "tiny", "--seed", "1"]) == 0
        graph, features, interactions, labels = load_dataset_json(target)
        assert graph.num_nodes == 120
        assert features is not None and interactions is not None
        assert len(labels) > 0
        assert "wrote" in capsys.readouterr().out
