"""Syntax-validate the CI pipeline (`.github/workflows/ci.yml`).

There is no `act` in the test environment, so this is the executable stand-in:
the workflow must parse as YAML and carry the structure the repo's gates
depend on — a test matrix across supported Pythons, a full-suite job that
includes the ``slow`` tier, a perf job wired to ``perf_report.py``'s ratio
gate, a ruff lint job, and a static-analysis job running the repo-native
invariant lint engine plus the typed-core mypy gate.  A refactor that
silently drops one of the gates fails here instead of on the first broken PR.
"""

from __future__ import annotations

from pathlib import Path

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW_PATH = (
    Path(__file__).resolve().parent.parent / ".github" / "workflows" / "ci.yml"
)


@pytest.fixture(scope="module")
def workflow():
    assert WORKFLOW_PATH.exists(), "CI workflow must be committed"
    return yaml.safe_load(WORKFLOW_PATH.read_text())


def _steps_text(job: dict) -> str:
    return " ".join(str(step.get("run", "")) for step in job["steps"])


def test_workflow_parses_and_triggers(workflow):
    # YAML 1.1 parses the bare `on` key as boolean True.
    triggers = workflow.get("on", workflow.get(True))
    assert "pull_request" in triggers
    assert "push" in triggers


def test_test_matrix_covers_supported_pythons(workflow):
    matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
    assert [str(v) for v in matrix] == ["3.10", "3.11", "3.12"]
    run = _steps_text(workflow["jobs"]["tests"])
    assert "python -m pytest" in run
    assert 'not slow' in run  # the matrix runs the fast tier


def test_full_suite_job_runs_slow_tier(workflow):
    run = _steps_text(workflow["jobs"]["full-suite"])
    assert "python -m pytest" in run
    assert "not slow" not in run  # one job runs everything


def test_perf_gate_runs_ratio_check(workflow):
    run = _steps_text(workflow["jobs"]["perf-gate"])
    assert "scripts/perf_report.py" in run
    assert "--check-ratios" in run


def test_lint_job_runs_ruff(workflow):
    job = workflow["jobs"]["lint"]
    run = _steps_text(job)
    assert "ruff check" in run
    assert "ruff format --check" in run
    format_steps = [
        step for step in job["steps"] if "ruff format" in str(step.get("run", ""))
    ]
    assert format_steps and format_steps[0].get("continue-on-error") is True


def test_static_analysis_job_runs_invariant_lint(workflow):
    job = workflow["jobs"]["static-analysis"]
    run = _steps_text(job)
    assert "python -m repro.lint" in run
    lint_steps = [
        step for step in job["steps"] if "repro.lint" in str(step.get("run", ""))
    ]
    # Blocking: the lint step must not be marked continue-on-error.
    assert lint_steps and not lint_steps[0].get("continue-on-error")


def test_static_analysis_job_runs_typed_core_mypy(workflow):
    job = workflow["jobs"]["static-analysis"]
    run = _steps_text(job)
    assert "mypy" in run
    assert "src/repro" in run
    mypy_steps = [
        step for step in job["steps"] if "mypy" in str(step.get("run", ""))
    ]
    # Blocking: the mypy gate must not be marked continue-on-error.
    assert mypy_steps and not mypy_steps[0].get("continue-on-error")
    install = " ".join(
        str(step.get("run", ""))
        for step in job["steps"]
        if "pip install" in str(step.get("run", ""))
    )
    assert "mypy" in install and "numpy" in install


def test_typed_core_mypy_config_is_strict(workflow):
    # The strict scope lives in pyproject.toml; the CI step just runs
    # `mypy src/repro`.  Validate the config names the typed core and turns
    # on disallow_untyped_defs for it.
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10
        pytest.skip("tomllib unavailable")
    pyproject = WORKFLOW_PATH.parent.parent.parent / "pyproject.toml"
    config = tomllib.loads(pyproject.read_text())
    overrides = config["tool"]["mypy"]["overrides"]
    strict = [o for o in overrides if o.get("disallow_untyped_defs")]
    assert strict, "pyproject.toml must carry a strict typed-core override"
    modules = strict[0]["module"]
    for required in ("repro.runtime.*", "repro.graph.csr", "repro.graph.phase2"):
        assert required in modules
    assert strict[0].get("ignore_errors") is False


def test_every_job_has_a_timeout(workflow):
    # A hung worker (the exact regression the resilience layer guards
    # against) must not wedge CI: every job carries an explicit bound.
    for name, job in workflow["jobs"].items():
        minutes = job.get("timeout-minutes")
        assert isinstance(minutes, int) and 0 < minutes <= 60, (
            f"job {name!r} must set a sane timeout-minutes, got {minutes!r}"
        )


def test_full_suite_runs_chaos_gate(workflow):
    run = _steps_text(workflow["jobs"]["full-suite"])
    assert "tests/test_resilience.py" in run  # fault-injection suite
    assert "repro.cli chaos" in run  # seeded end-to-end chaos run


def test_jobs_use_pip_caching(workflow):
    for name in ("tests", "full-suite", "perf-gate", "static-analysis"):
        setup_steps = [
            step
            for step in workflow["jobs"][name]["steps"]
            if "setup-python" in str(step.get("uses", ""))
        ]
        assert setup_steps and setup_steps[0]["with"]["cache"] == "pip"
