"""Shared fixtures for the LoCEC reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, InteractionStore, NodeFeatureStore
from repro.graph.generators import paper_figure1_network, paper_figure7_network
from repro.synthetic import make_workload
from repro.types import InteractionDim, RelationType


@pytest.fixture
def fig7_graph() -> Graph:
    """The nine-node example network of Figure 7(a)."""
    return paper_figure7_network()


@pytest.fixture
def fig1_graph() -> Graph:
    """The example network of Figure 1."""
    return paper_figure1_network()


@pytest.fixture
def triangle_graph() -> Graph:
    """A 3-clique."""
    return Graph(edges=[(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def two_cliques_graph() -> Graph:
    """Two 4-cliques joined by a single bridge edge."""
    graph = Graph()
    for block in ([0, 1, 2, 3], [4, 5, 6, 7]):
        for i, u in enumerate(block):
            for v in block[i + 1 :]:
                graph.add_edge(u, v)
    graph.add_edge(3, 4)
    return graph


@pytest.fixture
def small_features() -> NodeFeatureStore:
    """Feature store with two dimensions for nodes 1..6."""
    store = NodeFeatureStore(["gender", "age"])
    for node in range(1, 7):
        store.set(node, [node % 2, 20 + node])
    return store


@pytest.fixture
def small_interactions() -> InteractionStore:
    """Interaction store with a few recorded interactions among nodes 1..6."""
    store = InteractionStore()
    store.record(1, 2, InteractionDim.MESSAGE, 3)
    store.record(2, 3, InteractionDim.LIKE_PICTURE, 2)
    store.record(1, 3, InteractionDim.COMMENT_PICTURE, 1)
    store.record(4, 5, InteractionDim.LIKE_GAME, 4)
    return store


@pytest.fixture(scope="session")
def tiny_workload():
    """A ~120-user synthetic workload shared by the slower integration tests."""
    return make_workload("tiny", seed=1)


@pytest.fixture(scope="session")
def tiny_division(tiny_workload):
    """Cached Phase I result for the tiny workload."""
    return tiny_workload.division()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def relation_targets() -> tuple[RelationType, ...]:
    return RelationType.classification_targets()
