"""Tests for sharding, the shard executor and the WeChat-scale cost model."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelConfigError, PipelineError
from repro.graph.generators import paper_figure7_network
from repro.runtime import (
    ClusterSpec,
    CostCalibration,
    CostModel,
    ScalabilityStudy,
    ShardedDivisionExecutor,
    WorkloadSpec,
    measure_phases,
    measure_worker_scaling,
    shard_by_degree,
    shard_nodes,
)


class TestSharding:
    def test_round_robin_covers_all_nodes(self):
        shards = shard_nodes(list(range(10)), num_shards=3)
        assert len(shards) == 3
        covered = [node for shard in shards for node in shard.egos]
        assert sorted(covered) == list(range(10))

    def test_round_robin_is_balanced(self):
        shards = shard_nodes(list(range(12)), num_shards=4)
        assert all(shard.size == 3 for shard in shards)

    def test_contiguous_strategy(self):
        shards = shard_nodes(list(range(10)), num_shards=2, strategy="contiguous")
        assert shards[0].egos == tuple(range(5))
        assert shards[1].egos == tuple(range(5, 10))

    def test_invalid_configuration(self):
        with pytest.raises(PipelineError):
            shard_nodes([1, 2], num_shards=0)
        with pytest.raises(PipelineError):
            shard_nodes([1, 2], num_shards=2, strategy="hash")

    def test_degree_balanced_sharding(self):
        graph = paper_figure7_network()
        shards = shard_by_degree(graph, num_shards=3)
        covered = [node for shard in shards for node in shard.egos]
        assert sorted(map(repr, covered)) == sorted(map(repr, graph.nodes()))
        loads = [sum(max(graph.degree(node), 1) for node in shard.egos) for shard in shards]
        assert max(loads) - min(loads) <= max(graph.degrees().values())


class TestExecutor:
    def test_sharded_division_matches_unsharded(self):
        graph = paper_figure7_network()
        report = ShardedDivisionExecutor(num_shards=3, detector="girvan_newman").run(graph)
        assert report.division.num_egos == graph.num_nodes
        assert len(report.shard_reports) == 3
        assert report.total_seconds >= report.makespan_seconds > 0.0
        assert report.mean_seconds_per_ego() > 0.0

    def test_subset_of_egos(self):
        graph = paper_figure7_network()
        report = ShardedDivisionExecutor(num_shards=2).run(graph, egos=[1, 2, 3])
        assert report.division.num_egos == 3


class TestCostModel:
    def test_default_calibration_reproduces_table6(self):
        estimate = ScalabilityStudy().table6()
        assert estimate.training_hours == pytest.approx(4.5)
        assert estimate.phase1_hours == pytest.approx(46.5, rel=0.01)
        assert estimate.phase2_hours == pytest.approx(15.3, rel=0.01)
        assert estimate.phase3_hours == pytest.approx(7.4, rel=0.01)
        assert estimate.total_hours == pytest.approx(73.7, rel=0.01)

    def test_phase1_dominates(self):
        estimate = ScalabilityStudy().table6()
        assert estimate.phase1_hours > estimate.phase2_hours > estimate.phase3_hours

    def test_runtime_linear_in_nodes(self):
        sweep = ScalabilityStudy().figure12a([100, 200, 500, 1000])
        totals = [estimate.total_hours for _, estimate in sweep]
        assert totals == sorted(totals)
        assert totals[1] == pytest.approx(2 * totals[0], rel=0.05)
        assert totals[3] == pytest.approx(10 * totals[0], rel=0.05)

    def test_runtime_decreases_with_servers(self):
        sweep = ScalabilityStudy().figure12b([100, 150, 200])
        totals = [estimate.total_hours for _, estimate in sweep]
        assert totals[0] > totals[1] > totals[2]
        assert totals[0] == pytest.approx(2 * totals[2], rel=0.05)

    def test_calibration_from_measurements(self):
        calibration = CostCalibration.from_measurements(
            phase1_seconds=10.0,
            num_nodes=100,
            phase2_seconds=5.0,
            num_communities=400,
            phase3_seconds=2.0,
            num_edges=1000,
        )
        assert calibration.phase1_per_node == pytest.approx(0.1)
        model = CostModel(calibration)
        estimate = model.estimate(
            WorkloadSpec(num_nodes=1000, num_edges=10000, num_communities=4000),
            ClusterSpec(num_servers=1, cores_per_server=1),
        )
        assert estimate.phase1_hours == pytest.approx(100.0 / 3600.0)

    def test_calibration_validation(self):
        with pytest.raises(ModelConfigError):
            CostCalibration(phase1_per_node=0.0).validate()
        with pytest.raises(ModelConfigError):
            CostCalibration.from_measurements(1, 0, 1, 1, 1, 1)

    def test_table_row_keys(self):
        row = ScalabilityStudy().table6().as_row()
        assert set(row) == {"Training", "Phase I", "Phase II", "Phase III", "Total"}

    def test_scaled_wechat_workload_preserves_density(self):
        workload = WorkloadSpec.scaled_wechat(100_000_000)
        assert workload.num_edges == pytest.approx(workload.num_nodes * 140, rel=0.01)


class TestMeasuredScaling:
    def test_measure_phases_returns_positive_times(self, tiny_workload):
        measured = measure_phases(
            tiny_workload.dataset, max_egos=20, detector="label_propagation"
        )
        assert measured.num_nodes == 20
        assert measured.phase1_seconds > 0.0
        assert measured.phase2_seconds > 0.0
        assert measured.total_seconds > 0.0
        calibration = measured.to_calibration()
        calibration.validate()

    def test_measure_phases_model_kernels(self, tiny_workload):
        measured = measure_phases(
            tiny_workload.dataset,
            max_egos=20,
            detector="label_propagation",
            include_model_kernels=True,
            gbdt_rounds=2,
            cnn_epochs=1,
        )
        assert measured.gbdt_fit_seconds > 0.0
        assert measured.forest_predict_seconds > 0.0
        assert measured.commcnn_tensor_seconds > 0.0
        assert measured.commcnn_fit_seconds > 0.0
        assert measured.commcnn_predict_seconds > 0.0
        # Model-kernel timings stay out of the cost-model calibration total.
        assert measured.total_seconds == (
            measured.phase1_seconds
            + measured.phase2_seconds
            + measured.phase3_seconds
        )

    def test_measured_worker_scaling_monotonicity(self, tiny_workload):
        results = measure_worker_scaling(
            tiny_workload.dataset, worker_counts=[1, 4], max_egos=40
        )
        assert len(results) == 2
        # The 4-shard makespan (slowest shard) must not exceed the 1-shard time.
        assert results[1][1] <= results[0][1] * 1.1
