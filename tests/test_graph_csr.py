"""Parity tests: the CSR kernel layer must match the dict backend exactly.

Every kernel in :mod:`repro.graph.csr` is a drop-in replacement for a
dict-backend routine, and ``divide(backend="csr")`` must reproduce
``divide(backend="dict")`` bit-for-bit (members, ordering/index, tightness).
The tests sweep randomized graphs across seeds and densities, including
isolated nodes and singleton communities, plus the paper's example networks.
"""

from __future__ import annotations

import random

import pytest

from repro.community.betweenness import edge_betweenness
from repro.community.girvan_newman import girvan_newman
from repro.community.louvain import louvain_communities
from repro.core.division import divide, divide_ego, resolve_backend
from repro.core.tightness import community_tightness
from repro.exceptions import NodeNotFoundError, PipelineError
from repro.graph import Graph
from repro.graph.csr import (
    CSRGraph,
    community_tightness_csr,
    edge_betweenness_csr,
    ego_network_csr,
    girvan_newman_csr,
    louvain_communities_csr,
)
from repro.graph.ego import ego_network
from repro.graph.generators import paper_figure7_network

SEEDS = (0, 1, 2, 3, 4)


def random_graph(seed: int, n: int = 24, p: float = 0.18) -> Graph:
    """G(n, p) plus a few isolated nodes, deterministic per seed."""
    rng = random.Random(seed)
    graph = Graph(nodes=range(n + 3))  # n..n+2 stay isolated unless wired below
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def assert_division_identical(left, right) -> None:
    assert list(left.communities_by_ego) == list(right.communities_by_ego)
    for ego in left.communities_by_ego:
        a = left.communities_by_ego[ego]
        b = right.communities_by_ego[ego]
        assert [c.members for c in a] == [c.members for c in b]
        assert [c.index for c in a] == [c.index for c in b]
        for ca, cb in zip(a, b):
            assert set(ca.tightness) == set(cb.tightness)
            for node in ca.tightness:
                assert ca.tightness[node] == cb.tightness[node]


class TestCSRGraphReadAPI:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_graph(self, seed):
        graph = random_graph(seed)
        csr = CSRGraph.from_graph(graph)
        assert csr.num_nodes == graph.num_nodes
        assert csr.num_edges == graph.num_edges
        assert list(csr.nodes()) == list(graph.nodes())
        assert set(csr.edges()) == set(graph.edges())
        assert csr.degrees() == graph.degrees()
        for node in graph.nodes():
            assert csr.neighbors(node) == graph.neighbors(node)
            assert csr.degree(node) == graph.degree(node)
            assert csr.has_node(node) and node in csr
        for u, v in graph.edges():
            assert csr.has_edge(u, v) and csr.has_edge(v, u)
        assert not csr.has_edge(0, "missing")

    def test_from_edges_and_to_graph_roundtrip(self):
        edges = [(1, 2), (2, 3), (3, 1), (4, 5)]
        csr = CSRGraph.from_edges(edges, nodes=[9])
        graph = Graph(edges=edges, nodes=[9])
        assert csr.to_graph() == graph
        assert csr == CSRGraph.from_graph(graph)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_subgraph_matches(self, seed):
        graph = random_graph(seed)
        csr = CSRGraph.from_graph(graph)
        rng = random.Random(seed + 100)
        keep = [node for node in graph.nodes() if rng.random() < 0.5] + [999]
        assert csr.subgraph(keep).to_graph() == graph.subgraph(keep)

    def test_missing_node_raises(self):
        csr = CSRGraph.from_edges([(1, 2)])
        with pytest.raises(NodeNotFoundError):
            csr.neighbors(42)
        with pytest.raises(NodeNotFoundError):
            csr.index_of(42)

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(Graph())
        assert csr.num_nodes == 0 and csr.num_edges == 0
        assert list(csr.edges()) == []


class TestEgoNetworkParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_ego_matches(self, seed):
        graph = random_graph(seed)
        csr = CSRGraph.from_graph(graph)
        for ego in graph.nodes():
            assert ego_network_csr(csr, ego) == ego_network(graph, ego)

    def test_fig7_matches(self):
        graph = paper_figure7_network()
        for ego in graph.nodes():
            assert ego_network_csr(graph, ego) == ego_network(graph, ego)


class TestBetweennessParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_graphs(self, seed):
        graph = random_graph(seed)
        reference = edge_betweenness(graph)
        vectorized = edge_betweenness_csr(graph)
        assert set(reference) == set(vectorized)
        for edge, value in reference.items():
            assert vectorized[edge] == pytest.approx(value, abs=1e-9)

    def test_disconnected_and_edgeless(self):
        graph = Graph(edges=[(1, 2), (2, 3), (4, 5)], nodes=[6])
        reference = edge_betweenness(graph)
        vectorized = edge_betweenness_csr(graph)
        for edge, value in reference.items():
            assert vectorized[edge] == pytest.approx(value, abs=1e-12)
        assert edge_betweenness_csr(Graph(nodes=[1, 2])) == {}


class TestGirvanNewmanParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_graphs(self, seed):
        graph = random_graph(seed, n=16, p=0.22)
        reference = girvan_newman(graph)
        vectorized = girvan_newman_csr(graph)
        assert vectorized.communities == reference.communities
        assert vectorized.modularity == pytest.approx(reference.modularity)
        assert vectorized.levels_explored == reference.levels_explored

    def test_max_communities_cap(self):
        # Two 4-cliques plus a bridge (connected, so the dendrogram search
        # can actually hit the cap).
        graph = Graph()
        for block in ([0, 1, 2, 3], [4, 5, 6, 7]):
            for i, u in enumerate(block):
                for v in block[i + 1 :]:
                    graph.add_edge(u, v)
        graph.add_edge(3, 4)
        reference = girvan_newman(graph, max_communities=2)
        vectorized = girvan_newman_csr(graph, max_communities=2)
        assert vectorized.communities == reference.communities

    def test_edgeless_singletons(self):
        graph = Graph(nodes=[3, 1, 2])
        assert (
            girvan_newman_csr(graph).communities == girvan_newman(graph).communities
        )


class TestTightnessParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_communities(self, seed):
        graph = random_graph(seed)
        rng = random.Random(seed + 7)
        for ego in list(graph.nodes())[:10]:
            net = ego_network(graph, ego)
            members = list(net.nodes())
            if not members:
                continue
            community = [m for m in members if rng.random() < 0.6] or members[:1]
            reference = community_tightness(net, community)
            batched = community_tightness_csr(net, community)
            assert set(reference) == set(batched)
            for node in reference:
                assert batched[node] == reference[node]

    def test_singleton_and_isolated(self):
        net = Graph(nodes=[1, 2, 3])
        net.add_edge(2, 3)
        assert community_tightness_csr(net, [1]) == {1: 1.0}
        # Node 1 is isolated inside a multi-node community: tightness 0.
        values = community_tightness_csr(net, [1, 2, 3])
        assert values[1] == 0.0
        assert values == community_tightness(net, {1, 2, 3})

    @pytest.mark.parametrize("size", (31, 32, 80))
    def test_batched_kernel_above_routing_threshold(self, size):
        # Communities >= _TIGHTNESS_ARRAY_MIN_SIZE take the batched
        # gather/searchsorted/bincount kernel (smaller ones route to the
        # scalar reference), so this pins parity on both sides of the cut.
        graph = random_graph(0, n=size + 20, p=0.3)
        community = list(graph.nodes())[:size]
        reference = community_tightness(graph, community)
        batched = community_tightness_csr(CSRGraph.from_graph(graph), community)
        assert batched == reference
        # A source-less CSR exercises the scalar CSR fallback when small.
        rebuilt = CSRGraph(
            CSRGraph.from_graph(graph).indptr,
            CSRGraph.from_graph(graph).indices,
            list(graph.nodes()),
        )
        assert community_tightness_csr(rebuilt, community) == reference

    def test_duplicate_members_dedup_like_dict_reference(self):
        # A community handed in as a list with repeated nodes must not skew
        # |C| on any routing branch (dict delegate, scalar CSR, batched).
        graph = random_graph(1, n=60, p=0.3)
        nodes = list(graph.nodes())
        for count in (5, 40):  # below and above the routing threshold
            community = nodes[:count] + nodes[:3]
            reference = community_tightness(graph, community)
            csr = CSRGraph.from_graph(graph)
            assert community_tightness_csr(csr, community) == reference
            sourceless = CSRGraph(csr.indptr, csr.indices, nodes)
            assert community_tightness_csr(sourceless, community) == reference


class TestLouvainParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_graphs(self, seed):
        graph = random_graph(seed, n=30, p=0.12)
        assert louvain_communities_csr(graph) == louvain_communities(graph)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_denser_graphs(self, seed):
        graph = random_graph(seed + 50, n=20, p=0.3)
        assert louvain_communities_csr(graph) == louvain_communities(graph)

    def test_trivial_graphs(self):
        assert louvain_communities_csr(Graph()) == louvain_communities(Graph())
        edgeless = Graph(nodes=[5, 1])
        assert louvain_communities_csr(edgeless) == louvain_communities(edgeless)


class TestDivideParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_girvan_newman_backend_parity(self, seed):
        graph = random_graph(seed)
        assert_division_identical(
            divide(graph, backend="dict"), divide(graph, backend="csr")
        )

    @pytest.mark.parametrize("detector", ["louvain", "label_propagation"])
    def test_alternative_detectors(self, detector):
        graph = random_graph(1, n=18, p=0.2)
        assert_division_identical(
            divide(graph, detector=detector, backend="dict"),
            divide(graph, detector=detector, backend="csr"),
        )

    def test_fig7(self, fig7_graph):
        assert_division_identical(
            divide(fig7_graph, backend="dict"), divide(fig7_graph, backend="csr")
        )

    def test_isolated_and_singleton_egos(self):
        graph = Graph(edges=[(1, 2)], nodes=[3])
        assert_division_identical(
            divide(graph, backend="dict"), divide(graph, backend="csr")
        )
        # Ego 3 has no friends, egos 1/2 have singleton communities.
        result = divide(graph, backend="csr")
        assert result.communities_of(3) == []
        assert result.communities_of(1)[0].tightness == {2: 1.0}

    def test_divide_ego_backend(self, fig7_graph):
        for ego in fig7_graph.nodes():
            left = divide_ego(fig7_graph, ego, backend="dict")
            right = divide_ego(fig7_graph, ego, backend="csr")
            assert [c.members for c in left] == [c.members for c in right]

    def test_divide_accepts_csr_graph(self, fig7_graph):
        csr = CSRGraph.from_graph(fig7_graph)
        assert_division_identical(
            divide(fig7_graph, backend="dict"), divide(csr, backend="csr")
        )
        assert_division_identical(
            divide(fig7_graph, backend="dict"), divide(csr, backend="dict")
        )

    def test_unknown_backend_raises(self, fig7_graph):
        with pytest.raises(PipelineError):
            divide(fig7_graph, backend="sparse")

    def test_resolve_backend(self):
        assert resolve_backend("dict") == "dict"
        assert resolve_backend("csr") == "csr"
        assert resolve_backend("auto") in {"dict", "csr"}
        with pytest.raises(PipelineError):
            resolve_backend("gpu")


class TestDenseEgoNet:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_dense_extraction_and_tightness(self, seed):
        from repro.graph.csr import dense_ego_net, tightness_from_dense

        graph = random_graph(seed)
        csr = CSRGraph.from_graph(graph)
        for ego in list(graph.nodes())[:8]:
            net = dense_ego_net(csr, ego)
            reference = ego_network(graph, ego)
            assert set(net.labels) == set(reference.nodes())
            assert net.num_edges == reference.num_edges
            members = list(range(net.num_nodes))
            if not members:
                continue
            values = tightness_from_dense(net, members)
            expected = community_tightness(reference, list(reference.nodes()))
            assert set(values) == set(expected)
            for node in expected:
                assert values[node] == pytest.approx(expected[node], abs=1e-12)


class TestStringLabels:
    def test_repr_tie_breaking_matches(self):
        # String labels exercise the repr-based canonical edge ordering.
        edges = [("b", "a"), ("a", "c"), ("c", "b"), ("c", "d"), ("d", "e")]
        graph = Graph(edges=edges, nodes=["zz"])
        assert_division_identical(
            divide(graph, backend="dict"), divide(graph, backend="csr")
        )
        assert girvan_newman_csr(graph).communities == girvan_newman(graph).communities
