"""Tests for Phase II feature aggregation (Eq. 1, Eq. 2, Algorithm 1) and CommCNN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CommCNNConfig,
    FeatureMatrixBuilder,
    build_commcnn_classifier,
    build_commcnn_model,
    divide_ego,
    interact,
    interaction_feature_vector,
)
from repro.exceptions import ModelConfigError, PipelineError
from repro.graph import InteractionStore, NodeFeatureStore
from repro.graph.generators import paper_figure7_network


@pytest.fixture
def fig7_setup():
    """Ego-1 communities of the Figure 7 network plus small feature/interaction stores."""
    graph = paper_figure7_network()
    communities = divide_ego(graph, 1)
    c1 = next(c for c in communities if c.members == frozenset({2, 3, 4}))
    c2 = next(c for c in communities if c.members == frozenset({5, 6}))

    interactions = InteractionStore(num_dims=2)
    interactions.record(2, 3, 0, 4)   # dim 0 inside C1
    interactions.record(2, 4, 0, 2)
    interactions.record(3, 4, 1, 6)   # dim 1 inside C1
    interactions.record(5, 6, 0, 10)  # dim 0 inside C2

    features = NodeFeatureStore(["gender", "age"])
    for node in (2, 3, 4, 5, 6):
        features.set(node, [node % 2, float(node)])
    return c1, c2, features, interactions


class TestInteract:
    def test_share_of_community_interactions(self, fig7_setup):
        c1, _, _, interactions = fig7_setup
        # Dim 0 totals inside C1: (2,3)=4, (2,4)=2 → denominator 6.
        assert interact(2, c1.members, 0, interactions) == pytest.approx(1.0)
        assert interact(3, c1.members, 0, interactions) == pytest.approx(4 / 6)
        assert interact(4, c1.members, 0, interactions) == pytest.approx(2 / 6)

    def test_zero_when_no_interaction_on_dimension(self, fig7_setup):
        c1, _, _, interactions = fig7_setup
        assert interact(2, c1.members, 1, interactions) == 0.0

    def test_zero_when_community_is_silent(self, fig7_setup):
        _, c2, _, interactions = fig7_setup
        assert interact(5, c2.members, 1, interactions) == 0.0

    def test_vector_matches_per_dimension_calls(self, fig7_setup):
        c1, _, _, interactions = fig7_setup
        vector = interaction_feature_vector(3, c1.members, interactions)
        assert vector.shape == (2,)
        assert vector[0] == pytest.approx(interact(3, c1.members, 0, interactions))
        assert vector[1] == pytest.approx(interact(3, c1.members, 1, interactions))

    def test_shares_sum_to_at_most_two(self, fig7_setup):
        """Each pair interaction is attributed to both endpoints, so the sum of
        member shares per dimension is exactly 2 when any interaction exists."""
        c1, _, _, interactions = fig7_setup
        total = sum(
            interaction_feature_vector(node, c1.members, interactions)[0]
            for node in c1.members
        )
        assert total == pytest.approx(2.0)


class TestFeatureMatrixBuilder:
    def test_matrix_shape_and_padding(self, fig7_setup):
        c1, _, features, interactions = fig7_setup
        builder = FeatureMatrixBuilder(features, interactions, k=5)
        result = builder.feature_matrix(c1)
        assert result.matrix.shape == (5, 2 + 2)
        assert result.num_real_rows == 3
        # Padding rows are all zeros.
        np.testing.assert_allclose(result.matrix[3:], np.zeros((2, 4)))

    def test_rows_ordered_by_tightness(self, fig7_setup):
        c1, _, features, interactions = fig7_setup
        builder = FeatureMatrixBuilder(features, interactions, k=5)
        result = builder.feature_matrix(c1)
        assert result.member_order[-1] == 4  # loosest member last

    def test_truncates_to_k_rows(self, fig7_setup):
        c1, _, features, interactions = fig7_setup
        builder = FeatureMatrixBuilder(features, interactions, k=2)
        result = builder.feature_matrix(c1)
        assert result.matrix.shape[0] == 2
        assert len(result.member_order) == 2
        assert 4 not in result.member_order  # lowest-tightness member dropped

    def test_row_contents_interactions_then_features(self, fig7_setup):
        c1, _, features, interactions = fig7_setup
        builder = FeatureMatrixBuilder(features, interactions, k=3)
        result = builder.feature_matrix(c1)
        first_member = result.member_order[0]
        np.testing.assert_allclose(
            result.matrix[0, :2],
            interaction_feature_vector(first_member, c1.members, interactions),
        )
        np.testing.assert_allclose(result.matrix[0, 2:], features.get(first_member))

    def test_tensor_shape(self, fig7_setup):
        c1, c2, features, interactions = fig7_setup
        builder = FeatureMatrixBuilder(features, interactions, k=4)
        tensor = builder.matrices_as_tensor([c1, c2])
        assert tensor.shape == (2, 1, 4, 4)
        assert builder.matrices_as_tensor([]).shape == (0, 1, 4, 4)

    def test_statistic_vector_length_and_values(self, fig7_setup):
        c1, _, features, interactions = fig7_setup
        builder = FeatureMatrixBuilder(features, interactions, k=4)
        vector = builder.statistic_vector(c1)
        assert vector.shape == (2 * 4 + 1,)
        assert vector[-1] == 3.0  # community size
        # Mean of the age feature over members 2, 3, 4.
        assert vector[2 + 1] == pytest.approx(3.0)

    def test_statistic_vectors_stacking(self, fig7_setup):
        c1, c2, features, interactions = fig7_setup
        builder = FeatureMatrixBuilder(features, interactions, k=4)
        matrix = builder.statistic_vectors([c1, c2])
        assert matrix.shape == (2, 9)
        assert builder.statistic_vectors([]).shape == (0, 9)

    def test_invalid_k(self, fig7_setup):
        _, _, features, interactions = fig7_setup
        with pytest.raises(PipelineError):
            FeatureMatrixBuilder(features, interactions, k=0)

    def test_unknown_member_features_default_to_zero(self, fig7_setup):
        c1, _, _, interactions = fig7_setup
        empty_features = NodeFeatureStore(["gender", "age"])
        builder = FeatureMatrixBuilder(empty_features, interactions, k=3)
        result = builder.feature_matrix(c1)
        np.testing.assert_allclose(result.matrix[:, 2:], np.zeros((3, 2)))


class TestCommCNN:
    def test_model_output_width_is_num_classes(self, rng):
        model = build_commcnn_model(k=10, num_columns=8, num_classes=3)
        out = model.forward(rng.normal(size=(4, 1, 10, 8)))
        assert out.shape == (4, 3)

    def test_branch_toggles(self, rng):
        model = build_commcnn_model(
            k=10,
            num_columns=8,
            num_classes=3,
            include_wide_branch=False,
            include_long_branch=False,
        )
        assert model.forward(rng.normal(size=(2, 1, 10, 8))).shape == (2, 3)

    def test_all_branches_disabled_raises(self):
        with pytest.raises(ModelConfigError):
            build_commcnn_model(
                k=10,
                num_columns=8,
                num_classes=3,
                include_square_branch=False,
                include_wide_branch=False,
                include_long_branch=False,
            )

    def test_small_k_still_builds(self, rng):
        model = build_commcnn_model(k=2, num_columns=5, num_classes=3)
        assert model.forward(rng.normal(size=(2, 1, 2, 5))).shape == (2, 3)

    def test_invalid_arguments(self):
        with pytest.raises(ModelConfigError):
            build_commcnn_model(k=0, num_columns=5, num_classes=3)
        with pytest.raises(ModelConfigError):
            build_commcnn_model(k=5, num_columns=5, num_classes=1)

    def test_config_validation(self):
        config = CommCNNConfig(num_filters=0)
        with pytest.raises(ModelConfigError):
            config.validate()

    def test_classifier_learns_synthetic_pattern(self, rng):
        """CommCNN separates two classes that differ in their row statistics."""
        k, columns = 8, 6
        n = 120
        X = rng.normal(size=(n, 1, k, columns)) * 0.2
        y = np.array([0, 1] * (n // 2))
        X[y == 1, 0, :, 0] += 1.5  # class 1 has a shifted first column
        config = CommCNNConfig(epochs=20, num_filters=4, dense_units=16, dropout=0.0)
        clf = build_commcnn_classifier(k, columns, num_classes=2, config=config)
        clf.fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9
