"""Tests for label derivation, Phase III edge features (Eq. 4), edge labeling and results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AgreementEdgeLabeler,
    EdgeFeatureBuilder,
    EdgeLabelIndex,
    EdgeLabeler,
    GBDTConfig,
    LoCECConfig,
    community_ground_truth,
    community_key,
    divide,
    labeled_communities,
    majority_label,
    split_labeled_edges,
)
from repro.core.results import (
    CommunityClassification,
    EdgeClassification,
    LoCECResult,
)
from repro.exceptions import ModelConfigError, NotFittedError, PipelineError
from repro.graph.generators import paper_figure7_network
from repro.types import LabeledEdge, RelationType


@pytest.fixture
def fig7_division():
    graph = paper_figure7_network()
    return graph, divide(graph, egos=[1, 2, 3, 4, 5, 6])


def _result_vectors(division, length=3):
    """Deterministic fake r_C vectors keyed by community."""
    vectors = {}
    for community in division.all_communities():
        vector = np.zeros(length)
        vector[community.size % length] = 1.0
        vectors[community_key(community)] = vector
    return vectors


class TestLabelIndex:
    def test_lookup_is_order_insensitive(self):
        index = EdgeLabelIndex([LabeledEdge(2, 1, RelationType.FAMILY)])
        assert index.get(1, 2) is RelationType.FAMILY
        assert index.get(2, 1) is RelationType.FAMILY
        assert index.get(1, 3) is None

    def test_len_and_contains(self):
        index = EdgeLabelIndex([LabeledEdge(1, 2, RelationType.FAMILY)])
        assert len(index) == 1
        assert (2, 1) in index

    def test_majority_label_prefers_most_frequent(self):
        labels = [RelationType.COLLEAGUE] * 3 + [RelationType.FAMILY]
        assert majority_label(labels) is RelationType.COLLEAGUE

    def test_majority_label_tie_break_by_class_index(self):
        labels = [RelationType.COLLEAGUE, RelationType.FAMILY]
        assert majority_label(labels) is RelationType.FAMILY

    def test_majority_label_ignores_other(self):
        assert majority_label([RelationType.OTHER]) is None
        assert majority_label([]) is None


class TestCommunityGroundTruth:
    def test_majority_of_ego_member_edges(self, fig7_division):
        _, division = fig7_division
        community = division.community_containing(1, 2)
        index = EdgeLabelIndex(
            [
                LabeledEdge(1, 2, RelationType.COLLEAGUE),
                LabeledEdge(1, 3, RelationType.COLLEAGUE),
                LabeledEdge(1, 4, RelationType.FAMILY),
            ]
        )
        assert community_ground_truth(community, index) is RelationType.COLLEAGUE

    def test_none_when_no_labeled_member(self, fig7_division):
        _, division = fig7_division
        community = division.community_containing(1, 2)
        assert community_ground_truth(community, EdgeLabelIndex()) is None

    def test_min_labeled_members_threshold(self, fig7_division):
        _, division = fig7_division
        community = division.community_containing(1, 2)
        index = EdgeLabelIndex([LabeledEdge(1, 2, RelationType.FAMILY)])
        assert community_ground_truth(community, index, min_labeled_members=2) is None

    def test_labeled_communities_parallel_lists(self, fig7_division):
        _, division = fig7_division
        index = EdgeLabelIndex(
            [
                LabeledEdge(1, 2, RelationType.FAMILY),
                LabeledEdge(1, 5, RelationType.SCHOOLMATE),
            ]
        )
        communities, labels = labeled_communities(division, index)
        assert len(communities) == len(labels)
        assert len(communities) >= 2
        assert set(labels) <= {0, 1, 2}


class TestSplitLabeledEdges:
    def test_split_sizes(self):
        edges = [
            LabeledEdge(i, i + 1, RelationType(i % 3)) for i in range(0, 100, 1)
        ]
        train, test = split_labeled_edges(edges, train_fraction=0.8, seed=0)
        assert len(train) + len(test) == 100
        assert 15 <= len(test) <= 25

    def test_split_is_stratified(self):
        edges = [LabeledEdge(i, i + 1000, RelationType.FAMILY) for i in range(90)]
        edges += [LabeledEdge(i, i + 2000, RelationType.SCHOOLMATE) for i in range(10)]
        _, test = split_labeled_edges(edges, train_fraction=0.8, seed=1)
        assert any(item.label is RelationType.SCHOOLMATE for item in test)

    def test_empty_input(self):
        assert split_labeled_edges([]) == ([], [])


class TestEdgeFeatureBuilder:
    def test_feature_layout_and_length(self, fig7_division):
        _, division = fig7_division
        vectors = _result_vectors(division)
        builder = EdgeFeatureBuilder(division, vectors, result_vector_length=3)
        feature = builder.edge_feature(1, 2)
        assert feature.shape == (builder.feature_length,)
        assert builder.feature_length == 2 + 2 * 3
        assert 0.0 <= feature[0] <= 1.0 and 0.0 <= feature[1] <= 1.0

    def test_symmetric_in_argument_order(self, fig7_division):
        _, division = fig7_division
        builder = EdgeFeatureBuilder(division, _result_vectors(division), 3)
        np.testing.assert_allclose(builder.edge_feature(1, 2), builder.edge_feature(2, 1))

    def test_missing_communities_give_zero_blocks(self, fig7_division):
        _, division = fig7_division
        builder = EdgeFeatureBuilder(division, {}, result_vector_length=3)
        feature = builder.edge_feature(6, 9)  # ego 9 was never processed
        assert feature.shape == (8,)
        np.testing.assert_allclose(feature[2:5], np.zeros(3))

    def test_batch_edge_features(self, fig7_division):
        _, division = fig7_division
        builder = EdgeFeatureBuilder(division, _result_vectors(division), 3)
        matrix = builder.edge_features([(1, 2), (1, 5)])
        assert matrix.shape == (2, 8)
        assert builder.edge_features([]).shape == (0, 8)


class TestEdgeLabeler:
    def _builder(self, fig7_division):
        _, division = fig7_division
        return EdgeFeatureBuilder(division, _result_vectors(division), 3)

    def test_fit_predict_round_trip(self, fig7_division):
        builder = self._builder(fig7_division)
        edges = [(1, 2), (1, 3), (1, 5), (1, 6), (2, 3), (5, 6)]
        labels = [0, 0, 2, 2, 0, 2]
        labeler = EdgeLabeler(builder, num_iterations=300)
        labeler.fit(edges, labels)
        predictions = labeler.predict(edges)
        assert predictions.shape == (6,)
        assert set(predictions) <= {0, 1, 2}
        assert (predictions == np.array(labels)).mean() >= 0.5

    def test_predict_types_returns_relation_types(self, fig7_division):
        builder = self._builder(fig7_division)
        labeler = EdgeLabeler(builder, num_iterations=50)
        labeler.fit([(1, 2), (1, 5)], [0, 2])
        types = labeler.predict_types([(1, 2)])
        assert isinstance(types[0], RelationType)

    def test_unfitted_predict_raises(self, fig7_division):
        builder = self._builder(fig7_division)
        with pytest.raises(NotFittedError):
            EdgeLabeler(builder).predict([(1, 2)])

    def test_fit_validation(self, fig7_division):
        builder = self._builder(fig7_division)
        labeler = EdgeLabeler(builder)
        with pytest.raises(PipelineError):
            labeler.fit([], [])
        with pytest.raises(PipelineError):
            labeler.fit([(1, 2)], [0, 1])

    def test_agreement_labeler_predicts_valid_classes(self, fig7_division):
        builder = self._builder(fig7_division)
        labeler = AgreementEdgeLabeler(builder, num_classes=3)
        predictions = labeler.predict([(1, 2), (1, 5), (6, 9)])
        assert predictions.shape == (3,)
        assert set(predictions) <= {0, 1, 2}


class TestConfigs:
    def test_default_config_is_valid(self):
        LoCECConfig().validate()

    def test_constructor_helpers(self):
        assert LoCECConfig.locec_cnn().community_model == "cnn"
        assert LoCECConfig.locec_xgb().community_model == "xgb"
        assert LoCECConfig.locec_cnn(k=10).k == 10

    def test_invalid_values_rejected(self):
        with pytest.raises(ModelConfigError):
            LoCECConfig(k=0).validate()
        with pytest.raises(ModelConfigError):
            LoCECConfig(community_model="svm").validate()
        with pytest.raises(ModelConfigError):
            LoCECConfig(community_detector="metis").validate()
        with pytest.raises(ModelConfigError):
            LoCECConfig(edge_lr_iterations=0).validate()
        with pytest.raises(ModelConfigError):
            GBDTConfig(num_rounds=0).validate()


class TestResults:
    def _result(self):
        communities = [
            CommunityClassification(1, 0, 4, RelationType.FAMILY, (0.9, 0.05, 0.05)),
            CommunityClassification(1, 1, 12, RelationType.COLLEAGUE, (0.1, 0.8, 0.1)),
            CommunityClassification(2, 0, 10, RelationType.COLLEAGUE, (0.2, 0.7, 0.1)),
        ]
        edges = [
            EdgeClassification((1, 2), RelationType.COLLEAGUE, (0.1, 0.8, 0.1)),
            EdgeClassification((1, 3), RelationType.FAMILY, (0.7, 0.2, 0.1)),
        ]
        return LoCECResult(communities, edges)

    def test_distributions_sum_to_one(self):
        result = self._result()
        assert sum(result.community_type_distribution().values()) == pytest.approx(1.0)
        assert sum(result.edge_type_distribution().values()) == pytest.approx(1.0)

    def test_distribution_values(self):
        result = self._result()
        distribution = result.community_type_distribution()
        assert distribution[RelationType.COLLEAGUE] == pytest.approx(2 / 3)
        assert distribution[RelationType.SCHOOLMATE] == 0.0

    def test_edge_label_map(self):
        result = self._result()
        mapping = result.edge_label_map()
        assert mapping[(1, 2)] is RelationType.COLLEAGUE

    def test_mean_community_size(self):
        result = self._result()
        assert result.mean_community_size(RelationType.COLLEAGUE) == pytest.approx(11.0)
        assert result.mean_community_size(RelationType.SCHOOLMATE) == 0.0

    def test_empty_result_distributions(self):
        empty = LoCECResult()
        assert set(empty.community_type_distribution().values()) == {0.0}
        assert empty.num_communities == 0 and empty.num_edges == 0
