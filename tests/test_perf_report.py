"""Smoke tests for the kernel perf-report harness (tier-1, fast).

Runs ``scripts/perf_report.py`` in ``--quick`` mode (tiny scale, one repeat)
to guarantee the benchmark suite executes end to end, the JSON schema stays
stable, and the >30% regression gate actually trips.  The full report that
refreshes ``BENCH_kernels.json`` is the slow path
(``python scripts/perf_report.py --update``); tier-1 only needs this smoke.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def perf_report():
    spec = importlib.util.spec_from_file_location(
        "perf_report", REPO_ROOT / "scripts" / "perf_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("perf_report", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def quick_report(perf_report, tmp_path_factory):
    """One quick run shared by the schema/gate tests below."""
    output = tmp_path_factory.mktemp("bench") / "BENCH_kernels.json"
    code = perf_report.main(["--quick", "--update", "--output", str(output)])
    assert code == 0
    return output, json.loads(output.read_text())


def test_quick_report_schema(quick_report):
    _, report = quick_report
    assert report["schema"] == 1
    benchmarks = report["benchmarks"]
    for expected in (
        "ego_extraction_dict",
        "ego_extraction_csr",
        "edge_betweenness_dict",
        "edge_betweenness_csr",
        "community_tightness_csr",
        "louvain_csr",
        "phase1_division_tiny_dict",
        "phase1_division_tiny_csr",
        "commcnn_tensor_tiny_dict",
        "commcnn_tensor_tiny_csr",
        "gbdt_fit_tiny_node",
        "gbdt_fit_tiny_array",
        "forest_predict_tiny_node",
        "forest_predict_tiny_array",
        "commcnn_fit_tiny_loop",
        "commcnn_fit_tiny_fused",
        "commcnn_predict_tiny_loop",
        "commcnn_predict_tiny_fused",
    ):
        assert expected in benchmarks
        assert benchmarks[expected]["ops_per_sec"] > 0
        assert benchmarks[expected]["seconds_per_op"] > 0
    assert "speedup_phase1_division_tiny" in report["derived"]
    assert "speedup_gbdt_fit_tiny" in report["derived"]
    assert "speedup_forest_predict_tiny" in report["derived"]
    assert "speedup_commcnn_tensor_tiny" in report["derived"]
    assert "speedup_commcnn_fit_tiny" in report["derived"]
    assert "speedup_commcnn_predict_tiny" in report["derived"]


def test_check_passes_against_itself(perf_report, quick_report):
    # Gate logic must pass when the run equals the baseline exactly.  (A
    # live re-measure would be machine-noise flaky with quick's 1 repeat,
    # so the gate is exercised on the recorded report.)
    output, report = quick_report
    assert perf_report.check_regressions(report, output) == []


def test_check_skips_mismatched_modes(perf_report, quick_report):
    output, report = quick_report
    full = dict(report, quick=False)
    assert perf_report.check_regressions(full, output) == []


def test_regression_gate_trips(perf_report, quick_report):
    output, report = quick_report
    doctored = json.loads(json.dumps(report))
    for result in doctored["benchmarks"].values():
        result["ops_per_sec"] *= 1e6  # fake an impossibly fast baseline
        result["seconds_per_op"] /= 1e6
    rigged = output.parent / "rigged.json"
    rigged.write_text(json.dumps(doctored))
    code = perf_report.main(["--quick", "--check", "--output", str(rigged)])
    assert code == 1


def test_committed_baseline_is_valid_json():
    baseline = REPO_ROOT / "BENCH_kernels.json"
    assert baseline.exists(), "BENCH_kernels.json must be committed at the repo root"
    report = json.loads(baseline.read_text())
    assert report["schema"] == 1
    assert "phase1_division_small_csr" in report["benchmarks"]
    # The tentpole acceptance: CSR Phase I division is >= 5x the dict backend
    # at the small scale on the machine that produced the baseline.
    assert report["derived"]["speedup_phase1_division_small"] >= 5.0
    # PR 3 acceptance: the stacked forest tensors run GBDT inference
    # (predict_proba + the leaf-value embedding) >= 5x the node walks at the
    # small scale on the machine that produced the baseline.
    assert "forest_predict_small_array" in report["benchmarks"]
    assert report["derived"]["speedup_forest_predict_small"] >= 5.0
    # PR 4 acceptance: the fused NN engine beats the layer-by-layer loop on
    # CommCNN training and batched inference at the small scale (measured
    # 1.9x / 2.9x on the baseline machine; asserted with safety margin —
    # both backends share the bit-identical batched GEMMs that bound the
    # training ratio, see ROADMAP "backend roadmap").
    assert "commcnn_fit_small_fused" in report["benchmarks"]
    assert report["derived"]["speedup_commcnn_fit_small"] >= 1.4
    assert report["derived"]["speedup_commcnn_predict_small"] >= 2.0
