"""Smoke tests for the kernel perf-report harness (tier-1, fast).

Runs ``scripts/perf_report.py`` in ``--quick`` mode (tiny scale, one repeat)
to guarantee the benchmark suite executes end to end, the JSON schema stays
stable, and the >30% regression gate actually trips.  The full report that
refreshes ``BENCH_kernels.json`` is the slow path
(``python scripts/perf_report.py --update``); tier-1 only needs this smoke.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

# Benchmark-shaped: the module fixture executes the full --quick perf suite.
# CI's matrix job skips the slow tier; the full-suite job (and the local
# tier-1 command) still runs it.
pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def perf_report():
    spec = importlib.util.spec_from_file_location(
        "perf_report", REPO_ROOT / "scripts" / "perf_report.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("perf_report", module)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def quick_report(perf_report, tmp_path_factory):
    """One quick run shared by the schema/gate tests below."""
    output = tmp_path_factory.mktemp("bench") / "BENCH_kernels.json"
    code = perf_report.main(["--quick", "--update", "--output", str(output)])
    assert code == 0
    return output, json.loads(output.read_text())


def test_quick_report_schema(quick_report):
    _, report = quick_report
    assert report["schema"] == 1
    benchmarks = report["benchmarks"]
    for expected in (
        "ego_extraction_dict",
        "ego_extraction_csr",
        "edge_betweenness_dict",
        "edge_betweenness_csr",
        "community_tightness_csr",
        "louvain_csr",
        "phase1_division_tiny_dict",
        "phase1_division_tiny_csr",
        "commcnn_tensor_tiny_dict",
        "commcnn_tensor_tiny_csr",
        "gbdt_fit_tiny_node",
        "gbdt_fit_tiny_array",
        "gbdt_fit_tiny_hist",
        "forest_predict_tiny_node",
        "forest_predict_tiny_array",
        "commcnn_fit_tiny_loop",
        "commcnn_fit_tiny_fused",
        "commcnn_predict_tiny_loop",
        "commcnn_predict_tiny_fused",
    ):
        assert expected in benchmarks
        assert benchmarks[expected]["ops_per_sec"] > 0
        assert benchmarks[expected]["seconds_per_op"] > 0
    assert "speedup_phase1_division_tiny" in report["derived"]
    assert "speedup_gbdt_fit_tiny" in report["derived"]
    assert "speedup_gbdt_fit_tiny_hist" in report["derived"]
    assert "speedup_forest_predict_tiny" in report["derived"]
    assert "speedup_commcnn_tensor_tiny" in report["derived"]
    assert "speedup_commcnn_fit_tiny" in report["derived"]
    assert "speedup_commcnn_predict_tiny" in report["derived"]


def test_check_passes_against_itself(perf_report, quick_report):
    # Gate logic must pass when the run equals the baseline exactly.  (A
    # live re-measure would be machine-noise flaky with quick's 1 repeat,
    # so the gate is exercised on the recorded report.)
    output, report = quick_report
    assert perf_report.check_regressions(report, output) == []
    assert perf_report.check_ratio_regressions(report, output) == []


def test_check_skips_mismatched_modes(perf_report, quick_report):
    output, report = quick_report
    full = dict(report, quick=False)
    assert perf_report.check_regressions(full, output) == []
    assert perf_report.check_ratio_regressions(full, output) == []


def test_check_skips_missing_baseline(perf_report, quick_report, tmp_path, capsys):
    # A fresh clone (or a renamed output) has no baseline: the gate must
    # pass, loudly, instead of crashing or failing the build.
    _, report = quick_report
    missing = tmp_path / "does_not_exist.json"
    assert perf_report.check_regressions(report, missing) == []
    assert perf_report.check_ratio_regressions(report, missing) == []
    captured = capsys.readouterr().out
    assert "skipping regression gate" in captured
    assert "skipping ratio gate" in captured


def test_synthetic_regression_fails_check(perf_report, quick_report):
    # A >30% ops/sec drop on any benchmark must be named by the gate; a
    # drop inside the tolerance must not.
    output, report = quick_report
    slowed = json.loads(json.dumps(report))
    name = next(iter(slowed["benchmarks"]))
    slowed["benchmarks"][name]["ops_per_sec"] *= 0.6  # -40%: over the line
    failures = perf_report.check_regressions(slowed, output)
    assert len(failures) == 1 and failures[0].startswith(f"{name}:")

    tolerated = json.loads(json.dumps(report))
    for result in tolerated["benchmarks"].values():
        result["ops_per_sec"] *= 0.8  # -20%: inside the 30% tolerance
    assert perf_report.check_regressions(tolerated, output) == []


def test_synthetic_ratio_regression_fails_check(perf_report, quick_report):
    # The ratio gate guards decisive speedups (>= 1.5x baseline) and
    # ignores near-parity pairs, which are deliberate crossovers.
    output, report = quick_report
    doctored = json.loads(json.dumps(report))
    guarded = [
        name
        for name, ratio in report["derived"].items()
        if ratio >= perf_report.RATIO_GATE_MIN_SPEEDUP
    ]
    assert guarded, "quick report should contain at least one decisive speedup"
    for name in doctored["derived"]:
        doctored["derived"][name] = 0.01  # every backend win collapses
    failures = perf_report.check_ratio_regressions(doctored, output)
    assert sorted(failures)[0].split(":")[0] in guarded
    assert len(failures) == len(guarded)


def test_ratio_gate_fails_on_missing_guarded_ratio(perf_report, quick_report):
    # Dropping/renaming a guarded benchmark pair must fail the gate, not
    # leave it vacuously green.
    output, report = quick_report
    pruned = json.loads(json.dumps(report))
    guarded = [
        name
        for name, ratio in report["derived"].items()
        if ratio >= perf_report.RATIO_GATE_MIN_SPEEDUP
    ]
    victim = guarded[0]
    del pruned["derived"][victim]
    failures = perf_report.check_ratio_regressions(pruned, output)
    assert any(
        failure.startswith(f"{victim}:") and "no counterpart" in failure
        for failure in failures
    )


def test_regression_gate_trips(perf_report, quick_report):
    output, report = quick_report
    doctored = json.loads(json.dumps(report))
    for result in doctored["benchmarks"].values():
        result["ops_per_sec"] *= 1e6  # fake an impossibly fast baseline
        result["seconds_per_op"] /= 1e6
    rigged = output.parent / "rigged.json"
    rigged.write_text(json.dumps(doctored))
    code = perf_report.main(["--quick", "--check", "--output", str(rigged)])
    assert code == 1


def test_committed_baseline_is_valid_json():
    baseline = REPO_ROOT / "BENCH_kernels.json"
    assert baseline.exists(), "BENCH_kernels.json must be committed at the repo root"
    report = json.loads(baseline.read_text())
    assert report["schema"] == 1
    assert "phase1_division_small_csr" in report["benchmarks"]
    # The tentpole acceptance: CSR Phase I division is >= 5x the dict backend
    # at the small scale on the machine that produced the baseline.
    assert report["derived"]["speedup_phase1_division_small"] >= 5.0
    # PR 3 acceptance: the stacked forest tensors run GBDT inference
    # (predict_proba + the leaf-value embedding) >= 5x the node walks at the
    # small scale on the machine that produced the baseline.
    assert "forest_predict_small_array" in report["benchmarks"]
    assert report["derived"]["speedup_forest_predict_small"] >= 5.0
    # PR 4 acceptance: the fused NN engine beats the layer-by-layer loop on
    # CommCNN training and batched inference at the small scale (measured
    # 1.9x / 2.9x on the baseline machine; asserted with safety margin —
    # both backends share the bit-identical batched GEMMs that bound the
    # training ratio, see ROADMAP "backend roadmap").
    assert "commcnn_fit_small_fused" in report["benchmarks"]
    assert report["derived"]["speedup_commcnn_fit_small"] >= 1.4
    assert report["derived"]["speedup_commcnn_predict_small"] >= 2.0
    # PR 5 acceptance: the histogram split search fits the small-scale GBDT
    # >= 3x faster than the exact array search on the baseline machine.
    assert "gbdt_fit_small_hist" in report["benchmarks"]
    assert report["derived"]["speedup_gbdt_fit_small_hist"] >= 3.0
