"""Pickle-safety audit of the exception hierarchy.

The sharded execution runtime ships exceptions across process boundaries as
first-class results, so *every* exception class in :mod:`repro.exceptions`
and the ``repro.runtime`` modules must survive ``pickle.dumps``/``loads``
with its message and attributes intact.  ``BaseException.__reduce__``
replays ``__init__(*args)`` with the *formatted message*, so any class with
a custom ``__init__`` signature needs ``_PicklableErrorMixin`` (or its own
``__reduce__``) — lint rule ``MP002`` enforces the convention statically;
this suite proves it dynamically.

The audit is discovery-based: a class added to the hierarchy without a
representative instance below fails ``test_audit_covers_every_class``.
"""

from __future__ import annotations

import inspect
import pickle
import sys

import pytest

import repro.exceptions as exceptions_module
import repro.runtime.cost_model  # noqa: F401 — loads every runtime module
import repro.runtime.executor  # noqa: F401
import repro.runtime.faultinject
import repro.runtime.resilience  # noqa: F401
import repro.runtime.scalability  # noqa: F401
import repro.runtime.sharding  # noqa: F401
from repro.exceptions import (
    CheckpointError,
    CommunityError,
    DatasetError,
    DimensionMismatchError,
    DuplicateEdgeError,
    EdgeListError,
    EdgeNotFoundError,
    ExecutorError,
    ExperimentError,
    FeatureError,
    GraphError,
    MalformedLineError,
    ModelConfigError,
    NodeNotFoundError,
    NonFiniteWeightError,
    NotFittedError,
    PipelineError,
    ReproError,
    RetryExhaustedError,
    SelfLoopError,
    ShardFailedError,
    ShardTimeoutError,
    StalePhase2KernelError,
    TrainingDivergedError,
    WorkerCrashError,
)
from repro.runtime.faultinject import (
    InjectedFaultError,
    PermanentInjectedError,
    TransientInjectedError,
)

#: One representative, fully-populated instance per exception class.
REPRESENTATIVES = [
    ReproError("base failure"),
    GraphError("graph failure"),
    NodeNotFoundError(7),
    EdgeNotFoundError(1, 2),
    SelfLoopError(3),
    FeatureError("bad feature matrix"),
    CommunityError("no communities"),
    NotFittedError(),
    ModelConfigError("bad hyper-parameter"),
    DimensionMismatchError("X has 3 rows, y has 4"),
    TrainingDivergedError("loss became NaN at epoch 3"),
    PipelineError("phase 2 failed"),
    DatasetError("bad workload spec"),
    ExperimentError("missing sweep axis"),
    EdgeListError("data/edges.txt", 12, "unreadable record"),
    MalformedLineError("data/edges.txt", 3, "expected 2 fields, got 1"),
    NonFiniteWeightError("data/edges.txt", 9, "weight is NaN"),
    DuplicateEdgeError("data/edges.txt", 5, "edge (1, 2) repeated"),
    ExecutorError("pool wedged"),
    ShardFailedError(3, 2, ValueError("boom")),
    # Cause is deliberately not an OSError subclass: stdlib OSError
    # subtypes demote to OSError at pickle protocols 0/1, which would
    # test CPython, not this hierarchy.
    RetryExhaustedError(4, 5, RuntimeError("still down")),
    ShardTimeoutError(2, 1.5),
    StalePhase2KernelError((3, 4), (3, 5)),
    WorkerCrashError(6, "hard kill"),
    WorkerCrashError(),
    CheckpointError("cannot write shard 3 checkpoint"),
    InjectedFaultError(1, 0),
    TransientInjectedError(2, 1),
    PermanentInjectedError(0, 0),
]

_ids = [f"{type(exc).__name__}:{i}" for i, exc in enumerate(REPRESENTATIVES)]


def _attribute_fidelity(original: BaseException, restored: BaseException) -> None:
    assert type(restored) is type(original)
    assert str(restored) == str(original)
    assert restored.args == original.args
    assert set(restored.__dict__) == set(original.__dict__)
    for name, value in original.__dict__.items():
        round_tripped = restored.__dict__[name]
        if isinstance(value, BaseException):
            # Chained causes compare by identity; fidelity means same type
            # and same rendering.
            assert type(round_tripped) is type(value)
            assert repr(round_tripped) == repr(value)
        else:
            assert round_tripped == value, name


@pytest.mark.parametrize("exc", REPRESENTATIVES, ids=_ids)
def test_round_trip_preserves_message_and_attributes(exc):
    restored = pickle.loads(pickle.dumps(exc))
    _attribute_fidelity(exc, restored)


@pytest.mark.parametrize("exc", REPRESENTATIVES, ids=_ids)
def test_round_trip_survives_all_protocols(exc):
    for protocol in range(pickle.HIGHEST_PROTOCOL + 1):
        restored = pickle.loads(pickle.dumps(exc, protocol))
        _attribute_fidelity(exc, restored)


def test_restored_exceptions_keep_their_catch_contracts():
    # The fine-grained hierarchy is part of the API: supervisors catch by
    # base class after the round trip.
    restored = pickle.loads(pickle.dumps(NodeNotFoundError(9)))
    assert isinstance(restored, (GraphError, KeyError))
    assert restored.node == 9
    restored = pickle.loads(pickle.dumps(ShardTimeoutError(1, 0.5)))
    assert isinstance(restored, ExecutorError)
    assert restored.timeout_seconds == 0.5
    restored = pickle.loads(pickle.dumps(TransientInjectedError(1, 2)))
    assert restored.transient is True


def _exception_classes(module) -> set[type]:
    return {
        obj
        for _, obj in inspect.getmembers(module, inspect.isclass)
        if issubclass(obj, BaseException)
        and obj.__module__ == module.__name__
        and not obj.__name__.startswith("_")
    }


def test_audit_covers_every_class():
    """Every exception defined in the audited modules has a representative."""
    audited = set()
    modules = [exceptions_module] + [
        module
        for name, module in list(sys.modules.items())
        if name.startswith("repro.runtime.") and module is not None
    ]
    for module in modules:
        audited |= _exception_classes(module)
    covered = {type(exc) for exc in REPRESENTATIVES}
    missing = {cls.__name__ for cls in audited} - {c.__name__ for c in covered}
    assert not missing, f"exception classes without a pickle audit: {missing}"
