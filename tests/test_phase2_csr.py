"""Parity tests: the Phase II kernel layer must match the dict backend exactly.

``FeatureMatrixBuilder(backend="csr")`` routes Equations 1-2, Algorithm 1 and
the LoCEC-XGB statistic aggregation through the compiled
:class:`repro.graph.phase2.Phase2Kernel`.  Interaction counts are
integer-valued in every generated workload, so the CSR path must reproduce
the dict path **bit-for-bit** — feature matrices, CNN input tensors and
statistic vectors alike.  The suite sweeps randomized stores and community
shapes (missing nodes, singletons, non-member selections) plus the paper's
example network, and carries the regression tests for the
``DivisionResult.community_containing`` member index and the Equation-1
``interact`` delegation.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.aggregation import (
    FeatureMatrixBuilder,
    interact,
    interaction_feature_vector,
)
from repro.core.division import DivisionResult, LocalCommunity, divide
from repro.exceptions import FeatureError
from repro.graph import Graph, InteractionStore, NodeFeatureStore
from repro.graph.phase2 import Phase2Kernel

SEEDS = (0, 1, 2, 3, 4)


def random_stores(
    seed: int,
    num_nodes: int = 30,
    num_dims: int = 5,
    num_features: int = 3,
    integer_counts: bool = True,
) -> tuple[NodeFeatureStore, InteractionStore]:
    """Random feature/interaction stores over nodes ``0..num_nodes - 1``.

    Some nodes are left out of each store on purpose: real communities
    contain silent members and members with private profiles.
    """
    rng = random.Random(seed)
    features = NodeFeatureStore([f"f{i}" for i in range(num_features)])
    interactions = InteractionStore(num_dims=num_dims)
    for node in range(num_nodes):
        if rng.random() < 0.8:
            features.set(node, [rng.randint(0, 5) + 0.5 for _ in range(num_features)])
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < 0.25:
                dim = rng.randrange(num_dims)
                count = rng.randint(1, 9) if integer_counts else rng.random() * 4
                interactions.record(u, v, dim, count)
    return features, interactions


def random_communities(
    seed: int, num_nodes: int = 30, num_communities: int = 12
) -> list[LocalCommunity]:
    """Randomized communities, including singletons and out-of-store members."""
    rng = random.Random(seed + 1000)
    communities = []
    for index in range(num_communities):
        size = rng.choice([1, 2, 3, 5, 8, 12])
        # num_nodes + 2 admits members no store has ever seen.
        members = frozenset(rng.sample(range(num_nodes + 2), size))
        tightness = {member: rng.random() for member in members}
        communities.append(
            LocalCommunity(ego=-index, members=members, tightness=tightness, index=0)
        )
    return communities


def builders(
    features: NodeFeatureStore, interactions: InteractionStore, k: int = 6
) -> tuple[FeatureMatrixBuilder, FeatureMatrixBuilder]:
    return (
        FeatureMatrixBuilder(features, interactions, k=k, backend="dict"),
        FeatureMatrixBuilder(features, interactions, k=k, backend="csr"),
    )


def assert_builders_identical(dict_builder, csr_builder, communities) -> None:
    dict_matrices = dict_builder.feature_matrices(communities)
    csr_matrices = csr_builder.feature_matrices(communities)
    for left, right in zip(dict_matrices, csr_matrices):
        assert left.member_order == right.member_order
        assert np.array_equal(left.matrix, right.matrix)
    assert np.array_equal(
        dict_builder.matrices_as_tensor(communities),
        csr_builder.matrices_as_tensor(communities),
    )
    assert np.array_equal(
        dict_builder.statistic_vectors(communities),
        csr_builder.statistic_vectors(communities),
    )


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_stores_and_communities_bit_identical(self, seed):
        features, interactions = random_stores(seed)
        communities = random_communities(seed)
        dict_builder, csr_builder = builders(features, interactions)
        assert_builders_identical(dict_builder, csr_builder, communities)

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_division_communities_bit_identical(self, seed):
        """End-to-end: communities from Phase I on a random graph."""
        rng = random.Random(seed)
        graph = Graph(nodes=range(24))
        for u in range(24):
            for v in range(u + 1, 24):
                if rng.random() < 0.2:
                    graph.add_edge(u, v)
        features, interactions = random_stores(seed, num_nodes=24)
        communities = list(divide(graph).all_communities())
        dict_builder, csr_builder = builders(features, interactions, k=4)
        assert_builders_identical(dict_builder, csr_builder, communities)

    def test_workload_communities_bit_identical(self, tiny_workload, tiny_division):
        """The synthetic WeChat-like workload (the benchmark configuration)."""
        communities = list(tiny_division.all_communities())
        dict_builder, csr_builder = builders(
            tiny_workload.dataset.features, tiny_workload.dataset.interactions, k=20
        )
        assert_builders_identical(dict_builder, csr_builder, communities)

    def test_non_integer_counts_stay_close(self):
        """Float counts lose the exactness guarantee but stay within ulps."""
        features, interactions = random_stores(7, integer_counts=False)
        communities = random_communities(7)
        dict_builder, csr_builder = builders(features, interactions)
        left = dict_builder.statistic_vectors(communities)
        right = csr_builder.statistic_vectors(communities)
        np.testing.assert_allclose(left, right, rtol=1e-12, atol=1e-15)

    def test_empty_batch(self):
        features, interactions = random_stores(0)
        _, csr_builder = builders(features, interactions)
        assert csr_builder.feature_matrices([]) == []
        assert csr_builder.statistic_vectors([]).shape == (
            0,
            2 * csr_builder.num_columns + 1,
        )

    def test_single_community_matches_batch(self):
        features, interactions = random_stores(3)
        community = random_communities(3)[0]
        _, csr_builder = builders(features, interactions)
        single = csr_builder.feature_matrix(community)
        batch = csr_builder.feature_matrices([community])[0]
        assert np.array_equal(single.matrix, batch.matrix)
        assert np.array_equal(
            csr_builder.statistic_vector(community),
            csr_builder.statistic_vectors([community])[0],
        )


class TestPhase2Kernel:
    def test_compile_interns_both_stores(self):
        features, interactions = random_stores(0)
        kernel = Phase2Kernel.compile(features, interactions)
        nodes = set(features.nodes())
        for u, v in interactions.edges_with_interaction():
            nodes.update((u, v))
        assert kernel.num_nodes == len(nodes)

    def test_unknown_nodes_resolve_to_zero_rows(self):
        features, interactions = random_stores(0)
        kernel = Phase2Kernel.compile(features, interactions)
        rows = kernel.feature_rows(["never-seen", "also-never-seen"])
        assert np.array_equal(rows, np.zeros((2, features.num_features)))

    def test_share_rows_for_non_member_selection_are_zero(self):
        """Selecting a node outside the community yields a zero share row,
        matching what Equation 2 computes for a non-member."""
        features, interactions = random_stores(1)
        members = frozenset(range(6))
        kernel = Phase2Kernel.compile(features, interactions)
        [shares] = kernel.community_share_rows([(members, [17])])
        reference = interaction_feature_vector(17, members, interactions)
        assert np.array_equal(shares[0], reference)

    def test_kernel_recompiles_after_store_mutation(self):
        """Store writes bump the version counters, so the compiled kernel can
        never serve stale matrices — parity with dict holds across writes."""
        features, interactions = random_stores(2)
        community = random_communities(2)[2]
        members = sorted(community.members)[:2]
        builder = FeatureMatrixBuilder(features, interactions, k=4, backend="csr")
        dict_builder = FeatureMatrixBuilder(features, interactions, k=4, backend="dict")
        assert np.array_equal(
            builder.feature_matrix(community).matrix,
            dict_builder.feature_matrix(community).matrix,
        )
        interactions.record(members[0], members[-1], 0, 100)
        features.set(members[0], [9.0] * features.num_features)
        assert np.array_equal(
            builder.feature_matrix(community).matrix,
            dict_builder.feature_matrix(community).matrix,
        )

    def test_explicit_invalidate_kernel(self):
        features, interactions = random_stores(2)
        builder = FeatureMatrixBuilder(features, interactions, k=4, backend="csr")
        builder.feature_matrices(random_communities(2)[:1])
        assert builder._kernel is not None
        builder.invalidate_kernel()
        assert builder._kernel is None


class TestInteractDelegation:
    """Equation 1 must be the vector kernel evaluated at one dimension."""

    def test_matches_vector_path_exactly(self):
        features, interactions = random_stores(4)
        for community in random_communities(4):
            for member in community.members:
                vector = interaction_feature_vector(
                    member, community.members, interactions
                )
                for dim in range(interactions.num_dims):
                    assert interact(member, community.members, dim, interactions) == (
                        vector[dim]
                    )

    def test_matches_bruteforce_equation1(self):
        """Independent re-derivation of Equation 1 from raw store lookups."""
        _, interactions = random_stores(5)
        community = frozenset(range(8))
        members = list(community)
        for dim in range(interactions.num_dims):
            for node in members:
                numerator = sum(
                    interactions.get(node, other, dim)
                    for other in members
                    if other != node
                )
                denominator = sum(
                    interactions.get(members[i], members[j], dim)
                    for i in range(len(members))
                    for j in range(i + 1, len(members))
                )
                expected = numerator / denominator if denominator else 0.0
                assert interact(node, community, dim, interactions) == pytest.approx(
                    expected
                )

    def test_invalid_dimension_raises(self):
        _, interactions = random_stores(6)
        with pytest.raises(FeatureError):
            interact(0, frozenset({0, 1}), interactions.num_dims, interactions)
        with pytest.raises(FeatureError):
            interact(0, frozenset({0, 1}), -1, interactions)


class TestCommunityContainingIndex:
    """The lazy member index must be invisible except for speed."""

    def build_division(self) -> DivisionResult:
        result = DivisionResult()
        for ego in range(3):
            communities = []
            for index in range(3):
                members = frozenset(range(10 * index, 10 * index + 5))
                communities.append(
                    LocalCommunity(
                        ego=ego,
                        members=members,
                        tightness={m: 1.0 for m in members},
                        index=index,
                    )
                )
            result.communities_by_ego[ego] = communities
        return result

    def test_matches_linear_scan(self):
        division = self.build_division()
        for ego in range(3):
            for friend in range(-1, 30):
                expected = next(
                    (
                        community
                        for community in division.communities_by_ego[ego]
                        if friend in community.members
                    ),
                    None,
                )
                assert division.community_containing(ego, friend) is expected

    def test_unknown_ego_returns_none(self):
        division = self.build_division()
        assert division.community_containing(99, 1) is None

    def test_first_community_wins_on_overlap(self):
        """If a member somehow appears in two communities, list order rules."""
        members = frozenset({1, 2})
        first = LocalCommunity(ego=0, members=members, tightness={1: 1.0, 2: 1.0})
        second = LocalCommunity(
            ego=0, members=members, tightness={1: 0.5, 2: 0.5}, index=1
        )
        division = DivisionResult({0: [first, second]})
        assert division.community_containing(0, 1) is first

    def test_reassignment_detected_automatically(self):
        division = self.build_division()
        assert division.community_containing(0, 2) is not None
        division.communities_by_ego[0] = []  # new list object -> cache miss
        assert division.community_containing(0, 2) is None

    def test_append_detected_automatically(self):
        division = self.build_division()
        assert division.community_containing(0, 99) is None
        division.communities_by_ego[0].append(
            LocalCommunity(ego=0, members=frozenset({99}), tightness={99: 1.0}, index=3)
        )  # same list object, new length -> cache miss
        assert division.community_containing(0, 99) is not None

    def test_invalidate_index_after_inplace_replacement(self):
        division = self.build_division()
        assert division.community_containing(0, 99) is None
        division.communities_by_ego[0][0] = LocalCommunity(
            ego=0, members=frozenset({99}), tightness={99: 1.0}
        )  # same list, same length: the one case needing explicit invalidation
        division.invalidate_index()
        assert division.community_containing(0, 99) is not None

    def test_merge_produces_fresh_index(self):
        left = self.build_division()
        assert left.community_containing(0, 2) is not None  # warm the index
        right = DivisionResult(
            {
                7: [
                    LocalCommunity(
                        ego=7, members=frozenset({42}), tightness={42: 1.0}
                    )
                ]
            }
        )
        merged = left.merge(right)
        assert merged.community_containing(7, 42) is not None
        assert merged.community_containing(0, 2) is not None


@pytest.mark.slow
class TestPipelineBackendParity:
    def test_fit_predict_identical_across_backends(self, tiny_workload):
        """LoCEC end-to-end with backend='dict' vs 'csr' (XGB variant: its
        design matrices are the statistic vectors, the widest CSR surface)."""
        from repro.core.config import LoCECConfig
        from repro.core.pipeline import LoCEC

        predictions = {}
        for backend in ("dict", "csr"):
            config = LoCECConfig.locec_xgb(backend=backend)
            config.gbdt.num_rounds = 5
            pipeline = LoCEC(config)
            pipeline.fit(
                tiny_workload.dataset.graph,
                tiny_workload.dataset.features,
                tiny_workload.dataset.interactions,
                tiny_workload.train_edges,
            )
            edges = [item.edge for item in tiny_workload.test_edges]
            predictions[backend] = pipeline.predict_edge_proba(edges)
        assert np.array_equal(predictions["dict"], predictions["csr"])


def test_workload_statistic_speed_sanity(tiny_workload, tiny_division):
    """The CSR path must not be slower than dict even at tiny scale."""
    import time

    communities = list(tiny_division.all_communities())
    dict_builder, csr_builder = builders(
        tiny_workload.dataset.features, tiny_workload.dataset.interactions, k=20
    )
    csr_builder.statistic_vectors(communities)  # compile outside timing

    start = time.perf_counter()
    dict_builder.statistic_vectors(communities)
    dict_seconds = time.perf_counter() - start
    start = time.perf_counter()
    csr_builder.statistic_vectors(communities)
    csr_seconds = time.perf_counter() - start
    assert csr_seconds < dict_seconds * 2.0  # generous: CI boxes are noisy
