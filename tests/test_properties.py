"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import empirical_cdf
from repro.community import (
    connected_components,
    edge_betweenness,
    girvan_newman,
    label_propagation_communities,
    modularity,
)
from repro.core.tightness import tightness
from repro.graph import Graph, InteractionStore
from repro.graph.ego import ego_network
from repro.ml.base import one_hot, softmax
from repro.ml.metrics import precision_recall_f1, weighted_prf
from repro.types import canonical_edge

# ----------------------------------------------------------------------- strategies
node_ids = st.integers(min_value=0, max_value=14)

edge_lists = st.lists(
    st.tuples(node_ids, node_ids).filter(lambda pair: pair[0] != pair[1]),
    min_size=0,
    max_size=40,
)


def build_graph(edges: list[tuple[int, int]]) -> Graph:
    return Graph(edges=edges)


# ----------------------------------------------------------------------- graph
class TestGraphProperties:
    @given(edges=edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edge_count(self, edges):
        graph = build_graph(edges)
        assert sum(graph.degrees().values()) == 2 * graph.num_edges

    @given(edges=edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_edges_are_canonical_and_unique(self, edges):
        graph = build_graph(edges)
        reported = list(graph.edges())
        assert len(reported) == len(set(reported))
        for edge in reported:
            assert edge == canonical_edge(*edge)

    @given(edges=edge_lists)
    @settings(max_examples=60, deadline=None)
    def test_subgraph_never_adds_edges(self, edges):
        graph = build_graph(edges)
        nodes = [node for node in graph.nodes()][: graph.num_nodes // 2]
        sub = graph.subgraph(nodes)
        assert sub.num_edges <= graph.num_edges
        for u, v in sub.edges():
            assert graph.has_edge(u, v)

    @given(edges=edge_lists.filter(lambda e: len(e) > 0))
    @settings(max_examples=60, deadline=None)
    def test_ego_network_excludes_ego_and_keeps_friend_edges(self, edges):
        graph = build_graph(edges)
        ego = next(iter(graph.nodes()))
        ego_net = ego_network(graph, ego)
        assert not ego_net.has_node(ego)
        assert set(ego_net.nodes()) == set(graph.neighbors(ego))
        for u, v in ego_net.edges():
            assert graph.has_edge(u, v)

    @given(u=node_ids, v=node_ids)
    @settings(max_examples=60, deadline=None)
    def test_canonical_edge_is_commutative_and_idempotent(self, u, v):
        assert canonical_edge(u, v) == canonical_edge(v, u)
        assert canonical_edge(*canonical_edge(u, v)) == canonical_edge(u, v)


# ------------------------------------------------------------------- community
class TestCommunityProperties:
    @given(edges=edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_connected_components_partition_nodes(self, edges):
        graph = build_graph(edges)
        components = connected_components(graph)
        covered = [node for component in components for node in component]
        assert sorted(covered) == sorted(graph.nodes())
        assert len(covered) == len(set(covered))

    @given(edges=edge_lists)
    @settings(max_examples=20, deadline=None)
    def test_girvan_newman_partition_covers_nodes(self, edges):
        graph = build_graph(edges)
        result = girvan_newman(graph)
        covered = [node for block in result.communities for node in block]
        assert sorted(covered) == sorted(graph.nodes())
        assert len(covered) == len(set(covered))

    @given(edges=edge_lists)
    @settings(max_examples=20, deadline=None)
    def test_label_propagation_partition_covers_nodes(self, edges):
        graph = build_graph(edges)
        communities = label_propagation_communities(graph, seed=0)
        covered = [node for block in communities for node in block]
        assert sorted(covered) == sorted(graph.nodes())

    @given(edges=edge_lists)
    @settings(max_examples=20, deadline=None)
    def test_edge_betweenness_values_are_positive_for_every_edge(self, edges):
        graph = build_graph(edges)
        betweenness = edge_betweenness(graph)
        assert set(betweenness) == set(graph.edges())
        # Every edge lies on at least the shortest path between its endpoints.
        for value in betweenness.values():
            assert value >= 1.0 - 1e-9

    @given(edges=edge_lists)
    @settings(max_examples=20, deadline=None)
    def test_modularity_of_connected_components_is_bounded(self, edges):
        graph = build_graph(edges)
        components = connected_components(graph)
        if graph.num_edges == 0:
            return
        q = modularity(graph, components)
        assert -0.5 <= q <= 1.0

    @given(edges=edge_lists.filter(lambda e: len(e) > 0))
    @settings(max_examples=30, deadline=None)
    def test_tightness_always_in_unit_interval(self, edges):
        graph = build_graph(edges)
        ego = next(iter(graph.nodes()))
        ego_net = ego_network(graph, ego)
        if ego_net.num_nodes == 0:
            return
        result = girvan_newman(ego_net)
        for block in result.communities:
            for node in block:
                assert 0.0 <= tightness(ego_net, node, block) <= 1.0


# ------------------------------------------------------------------------- ML
class TestMlProperties:
    @given(
        st.lists(
            st.lists(st.floats(-50, 50), min_size=3, max_size=3),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_softmax_rows_are_distributions(self, rows):
        probabilities = softmax(np.array(rows))
        assert np.all(probabilities >= 0)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(len(rows)), atol=1e-9)

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_one_hot_rows_sum_to_one(self, labels):
        encoded = one_hot(np.array(labels), num_classes=5)
        np.testing.assert_allclose(encoded.sum(axis=1), np.ones(len(labels)))
        assert np.array_equal(np.argmax(encoded, axis=1), np.array(labels))

    @given(
        st.lists(st.integers(0, 2), min_size=1, max_size=60),
        st.lists(st.integers(0, 2), min_size=1, max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_prf_values_bounded(self, y_true, y_pred):
        size = min(len(y_true), len(y_pred))
        y_true, y_pred = y_true[:size], y_pred[:size]
        for label in (0, 1, 2):
            prf = precision_recall_f1(y_true, y_pred, label)
            assert 0.0 <= prf.precision <= 1.0
            assert 0.0 <= prf.recall <= 1.0
            assert 0.0 <= prf.f1 <= 1.0
        overall = weighted_prf(y_true, y_pred, labels=[0, 1, 2])
        assert 0.0 <= overall.f1 <= 1.0

    @given(
        st.lists(st.integers(0, 2), min_size=1, max_size=60),
    )
    @settings(max_examples=30, deadline=None)
    def test_perfect_predictions_have_perfect_f1(self, y_true):
        present = sorted(set(y_true))
        overall = weighted_prf(y_true, y_true, labels=present)
        assert overall.f1 == pytest.approx(1.0)


# ------------------------------------------------------------------ interactions
class TestInteractionStoreProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 8),
                st.integers(0, 8),
                st.integers(0, 6),
                st.floats(0.5, 10.0),
            ).filter(lambda record: record[0] != record[1]),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_totals_match_sum_of_records(self, records):
        store = InteractionStore()
        expected: dict = {}
        for u, v, dim, count in records:
            store.record(u, v, dim, count)
            key = canonical_edge(u, v)
            expected[key] = expected.get(key, 0.0) + count
        for (u, v), total in expected.items():
            assert store.total(u, v) == pytest.approx(total)
        assert len(store) == len(expected)

    @given(st.lists(st.floats(0, 20), min_size=0, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_empirical_cdf_monotone_and_bounded(self, values):
        points = list(range(0, 21, 2))
        cdf = empirical_cdf(values, points)
        assert cdf == sorted(cdf)
        assert all(0.0 <= value <= 1.0 for value in cdf)
        if values:
            assert cdf[-1] == pytest.approx(
                sum(1 for v in values if v <= 20) / len(values)
            )
