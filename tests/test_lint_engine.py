"""Tests for the repo-native invariant lint engine (:mod:`repro.lint`).

Three layers:

* **fixtures** — each rule fires on its ``*_bad.py`` fixture, stays quiet on
  ``*_clean.py`` and is silenced by the directives in ``*_suppressed.py``
  (see ``tests/lint_fixtures/``);
* **reporters** — the text and JSON renderers emit the documented shapes;
* **meta** — the engine runs clean over the real repository (the same
  invocation the ``static-analysis`` CI job blocks on), and the parity rule
  demonstrably fails, naming the uncovered literal, when the covering tests
  disappear.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    all_rules,
    default_config,
    get_rule,
    render_json,
    render_text,
    run_lint,
)
from repro.lint.engine import main as lint_main
from repro.lint.suppress import parse_suppressions

TESTS_DIR = Path(__file__).resolve().parent
REPO_ROOT = TESTS_DIR.parent
FIXTURES = "lint_fixtures"

MODULE_RULE_IDS = ["DET001", "DET002", "MP001", "MP002", "MP003", "MP004",
                   "NPY001", "NPY002", "NPY003", "NPY004"]

#: rule id -> finding count expected on its ``*_bad.py`` fixture.
EXPECTED_BAD_HITS = {
    "DET001": 4,   # time.time, time.sleep, perf_counter, datetime.now
    "DET002": 4,   # shuffle, random, np.random.rand, np.random.randint
    "MP001": 2,    # lambda to submit, nested function to map
    "MP002": 1,    # ShardError
    "MP003": 2,    # unguarded attach, creator with close but no unlink
    "MP004": 2,    # direct lease owner, transitive holder — both lifecycle-free
    "NPY001": 3,   # wrapping arange, astype, concatenate
    "NPY002": 2,   # two bare .astype calls
    "NPY003": 3,   # dtype=object, dtype="O", dtype=np.object_
    "NPY004": 3,   # dtype="float64", np.float64, alpha * 2.0
}


def _lint_fixture(rule_id: str, *fixture_names: str, test_fixtures=()):
    """Run one rule over flat fixture files under ``tests/lint_fixtures``."""
    config = LintConfig(
        src_roots=tuple(f"{FIXTURES}/{name}.py" for name in fixture_names),
        test_roots=tuple(f"{FIXTURES}/{name}.py" for name in test_fixtures),
        rule_scopes={},
    )
    return run_lint(root=TESTS_DIR, config=config, rule_ids=[rule_id])


# --------------------------------------------------------------- fixtures
@pytest.mark.parametrize("rule_id", MODULE_RULE_IDS)
def test_rule_fires_on_bad_fixture(rule_id):
    result = _lint_fixture(rule_id, f"{rule_id.lower()}_bad")
    assert not result.ok
    assert len(result.findings) == EXPECTED_BAD_HITS[rule_id]
    assert all(f.rule_id == rule_id for f in result.findings)


@pytest.mark.parametrize("rule_id", MODULE_RULE_IDS)
def test_rule_quiet_on_clean_fixture(rule_id):
    result = _lint_fixture(rule_id, f"{rule_id.lower()}_clean")
    assert result.ok, [f.message for f in result.findings]


@pytest.mark.parametrize("rule_id", MODULE_RULE_IDS)
def test_rule_silenced_by_suppressions(rule_id):
    fixture = f"{rule_id.lower()}_suppressed"
    result = _lint_fixture(rule_id, fixture)
    assert result.ok, [f.message for f in result.findings]
    # The directives suppress real hits — the fixture is not accidentally
    # clean (a typo in a directive must not pass silently).
    source = (TESTS_DIR / FIXTURES / f"{fixture}.py").read_text()
    index = parse_suppressions(source)
    assert index.by_line or index.file_wide


def test_findings_carry_location_and_sort(rule_id="DET001"):
    result = _lint_fixture(rule_id, "det001_bad")
    lines = [f.line for f in result.findings]
    assert lines == sorted(lines)
    for finding in result.findings:
        assert finding.path.endswith("det001_bad.py")
        assert finding.line > 0 and finding.col >= 0
        assert "Clock" in finding.message  # points at the remedy


def test_parity_rule_clean_when_every_literal_covered():
    result = _lint_fixture(
        "PAR001", "par001_src", test_fixtures=("par001_tests_full",)
    )
    assert result.ok, [f.message for f in result.findings]


def test_parity_rule_names_uncovered_literal_when_test_deleted():
    # Same source, but the beta parity test has been deleted.
    result = _lint_fixture(
        "PAR001", "par001_src", test_fixtures=("par001_tests_partial",)
    )
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.rule_id == "PAR001"
    assert "'beta'" in finding.message
    assert "backend='beta'" in finding.message
    assert finding.path.endswith("par001_src.py")


def test_parity_rule_fails_on_real_repo_without_its_parity_tests():
    # Deleting the whole test tree must surface the repo's real backend
    # literals as uncovered — proof the declaration scan reads the library.
    config = LintConfig(test_roots=())
    result = run_lint(root=REPO_ROOT, config=config, rule_ids=["PAR001"])
    assert not result.ok
    named = " ".join(f.message for f in result.findings)
    for value in ("'csr'", "'hist'", "'fused'"):
        assert value in named


def test_parse_error_is_reported_not_crashed(tmp_path):
    bad = tmp_path / "src"
    bad.mkdir()
    (bad / "broken.py").write_text("def broken(:\n")
    config = LintConfig(src_roots=("src",), test_roots=(), rule_scopes={})
    result = run_lint(root=tmp_path, config=config)
    assert not result.ok
    assert result.parse_errors and "broken.py" in result.parse_errors[0]


# -------------------------------------------------------------- reporters
def test_text_reporter_shape():
    result = _lint_fixture("NPY002", "npy002_bad")
    text = render_text(result)
    lines = text.splitlines()
    # path:line:col: RULE message, one per finding, then a summary line.
    assert len(lines) == len(result.findings) + 1
    for finding, line in zip(result.findings, lines):
        assert line.startswith(
            f"{finding.path}:{finding.line}:{finding.col}: NPY002 "
        )
    assert lines[-1].startswith(f"{len(result.findings)} finding")


def test_text_reporter_clean_summary():
    result = _lint_fixture("NPY002", "npy002_clean")
    assert "0 findings" in render_text(result)


def test_json_reporter_schema():
    result = _lint_fixture("MP001", "mp001_bad")
    payload = json.loads(render_json(result))
    assert payload["schema_version"] == 1
    assert payload["files_checked"] == 1
    assert payload["parse_errors"] == []
    assert len(payload["findings"]) == len(result.findings)
    first = payload["findings"][0]
    assert set(first) == {"rule", "path", "line", "col", "message"}
    assert first["rule"] == "MP001"


# ------------------------------------------------------- registry and CLI
def test_rule_catalog_is_complete():
    catalog = {rule.rule_id for rule in all_rules()}
    assert catalog == {"DET001", "DET002", "PAR001", "MP001", "MP002",
                       "MP003", "MP004", "NPY001", "NPY002", "NPY003",
                       "NPY004"}
    for rule in all_rules():
        assert rule.name and rule.description and rule.rationale


def test_get_rule_round_trips():
    assert get_rule("DET001").rule_id == "DET001"
    with pytest.raises(KeyError):
        get_rule("NOPE999")


def test_cli_exit_codes(tmp_path, capsys):
    # Clean run over the real repo (the CI invocation) exits 0 …
    assert lint_main(["--root", str(REPO_ROOT)]) == 0
    capsys.readouterr()
    # … and a repo with a violation in its library tree exits 1.
    library = tmp_path / "src" / "repro"
    library.mkdir(parents=True)
    (library / "dirty.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n"
    )
    assert lint_main(["--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "dirty.py" in out


def test_cli_json_and_rule_selection(tmp_path, capsys):
    library = tmp_path / "src" / "repro"
    library.mkdir(parents=True)
    (library / "dirty.py").write_text(
        "import time\n\n\ndef now():\n    return time.time()\n"
    )
    # Restricting to an unrelated rule makes the same tree pass.
    assert lint_main(["--root", str(tmp_path), "--rules", "NPY003"]) == 0
    capsys.readouterr()
    assert lint_main(["--root", str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "DET001"


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "PAR001", "MP002", "NPY004"):
        assert rule_id in out


# ------------------------------------------------------------------- meta
def test_repo_is_lint_clean():
    """The tree itself passes its own invariants — same gate as CI."""
    result = run_lint(root=REPO_ROOT, config=default_config())
    assert result.parse_errors == []
    assert result.findings == [], render_text(result)
    assert result.files_checked > 100  # the whole library actually scanned
