"""Tests for ml.base, ml.metrics and ml.preprocessing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DimensionMismatchError, ModelConfigError, NotFittedError
from repro.ml import (
    MinMaxScaler,
    StandardScaler,
    accuracy,
    classification_report,
    confusion_matrix,
    format_report,
    kfold_indices,
    macro_f1,
    one_hot,
    precision_recall_f1,
    softmax,
    train_test_split,
    train_test_split_indices,
    weighted_prf,
)
from repro.ml.base import check_X_y
from repro.types import RelationType


class TestBaseHelpers:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(5, 3))
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5))
        assert np.all(probabilities > 0)

    def test_softmax_is_shift_invariant(self, rng):
        logits = rng.normal(size=(4, 3))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_softmax_handles_large_values(self):
        probabilities = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probabilities).all()

    def test_one_hot(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoded, np.eye(3)[[0, 2, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(DimensionMismatchError):
            one_hot(np.array([0, 3]), 3)

    def test_check_X_y_validations(self):
        with pytest.raises(DimensionMismatchError):
            check_X_y(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(DimensionMismatchError):
            check_X_y(np.zeros(3), np.zeros(3))
        with pytest.raises(DimensionMismatchError):
            check_X_y(np.zeros((0, 2)), np.zeros(0))
        X, y = check_X_y([[1, 2], [3, 4]], [0, 1])
        assert X.dtype == np.float64 and y.dtype == np.int64


class TestMetrics:
    def test_confusion_matrix(self):
        matrix = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2], num_classes=3)
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1
        assert matrix.sum() == 4

    def test_confusion_matrix_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            confusion_matrix([0, 1], [0], num_classes=2)

    def test_precision_recall_f1_known_values(self):
        y_true = [0, 0, 0, 1, 1, 1]
        y_pred = [0, 0, 1, 1, 1, 0]
        prf = precision_recall_f1(y_true, y_pred, label=0)
        assert prf.precision == pytest.approx(2 / 3)
        assert prf.recall == pytest.approx(2 / 3)
        assert prf.f1 == pytest.approx(2 / 3)

    def test_precision_recall_f1_absent_class(self):
        prf = precision_recall_f1([0, 0], [0, 0], label=1)
        assert prf == type(prf)(0.0, 0.0, 0.0)

    def test_accuracy(self):
        assert accuracy([1, 2, 3], [1, 2, 0]) == pytest.approx(2 / 3)
        assert accuracy([], []) == 0.0

    def test_macro_f1_perfect(self):
        assert macro_f1([0, 1, 2], [0, 1, 2], labels=[0, 1, 2]) == pytest.approx(1.0)
        assert macro_f1([0], [0], labels=[]) == 0.0

    def test_weighted_prf_weights_by_support(self):
        y_true = [0] * 9 + [1]
        y_pred = [0] * 9 + [0]
        prf = weighted_prf(y_true, y_pred, labels=[0, 1])
        # Class 0 is perfect on recall and has 90 % of the support.
        assert prf.recall == pytest.approx(0.9)

    def test_weighted_prf_empty(self):
        prf = weighted_prf([], [], labels=[0, 1])
        assert prf.f1 == 0.0

    def test_classification_report_structure(self):
        y_true = [0, 1, 2, 0, 1, 2]
        y_pred = [0, 1, 2, 0, 1, 1]
        report = classification_report(y_true, y_pred)
        assert set(report.per_class) == set(RelationType.classification_targets())
        assert report.overall is not None
        assert 0.0 <= report.overall.f1 <= 1.0

    def test_format_report_contains_rows(self):
        report = classification_report([0, 1, 2], [0, 1, 2])
        text = format_report(report, "LoCEC-CNN")
        assert "LoCEC-CNN" in text
        assert "Overall" in text
        assert "Family Members" in text


class TestSplits:
    def test_train_test_split_indices_disjoint_and_complete(self):
        train, test = train_test_split_indices(100, test_fraction=0.2, seed=1)
        assert len(train) + len(test) == 100
        assert set(train).isdisjoint(set(test))
        assert len(test) == 20

    def test_split_indices_stratified_preserves_classes(self):
        labels = np.array([0] * 50 + [1] * 10)
        train, test = train_test_split_indices(60, 0.2, seed=0, stratify=labels)
        assert set(labels[test]) == {0, 1}

    def test_split_indices_validation(self):
        with pytest.raises(ModelConfigError):
            train_test_split_indices(10, test_fraction=0.0)
        with pytest.raises(ModelConfigError):
            train_test_split_indices(1, test_fraction=0.5)
        with pytest.raises(DimensionMismatchError):
            train_test_split_indices(10, 0.2, stratify=np.zeros(5))

    def test_train_test_split_arrays(self, rng):
        X = rng.normal(size=(40, 3))
        y = np.array([0, 1] * 20)
        X_train, X_test, y_train, y_test = train_test_split(X, y, 0.25, seed=0)
        assert X_train.shape[0] == y_train.shape[0] == 30
        assert X_test.shape[0] == y_test.shape[0] == 10

    def test_train_test_split_mismatched_lengths(self, rng):
        with pytest.raises(DimensionMismatchError):
            train_test_split(rng.normal(size=(5, 2)), np.zeros(4))

    def test_kfold_indices_cover_everything(self):
        folds = kfold_indices(20, num_folds=4, seed=0)
        assert len(folds) == 4
        all_validation = np.concatenate([val for _, val in folds])
        assert sorted(all_validation.tolist()) == list(range(20))
        for train, val in folds:
            assert set(train).isdisjoint(set(val))

    def test_kfold_validation(self):
        with pytest.raises(ModelConfigError):
            kfold_indices(10, num_folds=1)
        with pytest.raises(ModelConfigError):
            kfold_indices(3, num_folds=5)


class TestScalers:
    def test_standard_scaler_zero_mean_unit_variance(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(scaled.mean(axis=0), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(scaled.std(axis=0), np.ones(4), atol=1e-9)

    def test_standard_scaler_constant_column(self):
        X = np.array([[1.0, 2.0], [1.0, 4.0]])
        scaled = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(scaled[:, 0], [0.0, 0.0])

    def test_standard_scaler_not_fitted(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_standard_scaler_requires_2d(self):
        with pytest.raises(DimensionMismatchError):
            StandardScaler().fit(np.zeros(5))

    def test_minmax_scaler_range(self, rng):
        X = rng.normal(size=(50, 3)) * 10
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() >= 0.0 and scaled.max() <= 1.0

    def test_minmax_scaler_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((2, 2)))
