"""DET001 fixture: clock reads routed through an injected Clock."""


def measure(clock) -> float:
    start = clock.perf_counter()
    clock.sleep(0.1)
    return clock.perf_counter() - start
