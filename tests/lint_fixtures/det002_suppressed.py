# repro-lint: disable-file=DET002
"""DET002 fixture: global RNG silenced by a file-wide directive."""

import random


def sample() -> float:
    return random.random()


def roll() -> int:
    return random.randint(1, 6)
