"""NPY001 fixture: np.array() wrapped around expressions already ndarray."""

import numpy as np


def build(raw) -> tuple:
    indices = np.array(np.arange(10))
    widened = np.array(raw.astype(np.int64, copy=False))
    merged = np.array(np.concatenate([indices, widened]))
    return indices, widened, merged
