"""NPY002 fixture: every .astype() states its copy semantics."""

import numpy as np


def widen(values) -> tuple:
    aliasable = values.astype(np.int64, copy=False)
    independent = values.astype("float32", copy=True)
    return aliasable, independent
