"""MP004 fixture: a deliberately lifecycle-free owner, waved through."""


class ShmLease:
    """Stand-in for the runtime lease type (the name is what MP004 walks)."""

    def close(self) -> None:
        pass

    def __enter__(self) -> "ShmLease":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class FrozenSnapshot:  # repro-lint: disable=MP004
    """Read-only view whose lease is owned (and released) by its creator."""

    def __init__(self, lease: ShmLease | None) -> None:
        self._lease: ShmLease | None = lease

    def payload(self) -> bytes:
        return b""
