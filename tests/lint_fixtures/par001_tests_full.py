"""PAR001 fixture: a test module exercising every declared literal."""

from par001_src import make_solver


def check_alpha():
    assert make_solver(backend="alpha") == "alpha"


def check_beta():
    assert make_solver(backend="beta") == "beta"
