"""PAR001 fixture: a public entry point accepting two backend literals."""


def make_solver(backend: str = "alpha"):
    if backend not in {"alpha", "beta"}:
        raise ValueError(f"unknown backend {backend!r}; choose alpha or beta")
    return backend
