"""DET002 fixture: seeded RNG instances only."""

import random

import numpy as np


def sample(items: list, seed: int) -> list:
    rng = random.Random(seed)
    rng.shuffle(items)
    generator = np.random.default_rng(seed)
    return [rng.random(), generator.random(3)]
