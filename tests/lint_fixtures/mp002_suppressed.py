"""MP002 fixture: a supervisor-only exception, explicitly waved through."""


class SupervisorOnlyError(ValueError):  # repro-lint: disable=MP002
    """Raised and caught in the supervisor process; never crosses pickle."""

    def __init__(self, code: int) -> None:
        super().__init__(f"supervisor error {code}")
        self.code = code
