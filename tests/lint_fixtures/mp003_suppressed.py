"""MP003 fixture: a deliberately leaked segment, explicitly waved through."""

from multiprocessing.shared_memory import SharedMemory


def leak_for_inspection(name: str) -> SharedMemory:
    # Diagnostic helper: the segment intentionally outlives this function;
    # the caller owns the close()/unlink() pair.
    return SharedMemory(name=name)  # repro-lint: disable=MP003
