"""NPY001 fixture: no redundant wrapping."""

import numpy as np


def build(raw) -> tuple:
    indices = np.arange(10)
    from_list = np.array([1, 2, 3])
    aliased = np.asarray(raw)
    documented = np.array(np.arange(4), copy=True)
    return indices, from_list, aliased, documented
