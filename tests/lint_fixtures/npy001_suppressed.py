"""NPY001 fixture: a deliberate defensive copy, waved through."""

import numpy as np


def snapshot(live_view) -> object:
    # Deliberate copy: live_view aliases a buffer mutated by the caller.
    return np.array(live_view.ravel())  # repro-lint: disable=NPY001
