"""NPY002 fixture: .astype() without an explicit copy= keyword."""

import numpy as np


def widen(values) -> tuple:
    as_int = values.astype(np.int64)
    as_float = values.astype("float32")
    return as_int, as_float
