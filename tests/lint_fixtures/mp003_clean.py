"""MP003 fixture: every acquisition behind a lease or a try/finally guard."""

from multiprocessing.shared_memory import SharedMemory


def attach_with_lease(lease, name: str) -> bytes:
    with lease:
        segment = SharedMemory(name=name)
        return bytes(segment.buf[:8])


def attach_guarded(name: str) -> bytes:
    segment = SharedMemory(name=name)
    try:
        return bytes(segment.buf[:8])
    finally:
        segment.close()


def create_guarded(name: str) -> None:
    segment = SharedMemory(name=name, create=True, size=64)
    try:
        segment.buf[:4] = b"abcd"
    finally:
        segment.close()
        segment.unlink()


def create_all_or_nothing(names: list) -> list:
    segments = []
    try:
        for name in names:
            segments.append(SharedMemory(name=name, create=True, size=64))
    except BaseException:
        release_all(segments)
        raise
    return segments


def release_all(segments: list) -> None:
    for segment in segments:
        segment.close()
        segment.unlink()
