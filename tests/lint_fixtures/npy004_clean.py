"""NPY004 fixture: a float32 kernel that stays single-precision."""

import numpy as np


def scale(values: "np.ndarray", alpha: "np.float32") -> "np.ndarray":
    bias = np.zeros(3, dtype="float32")
    two = np.float32(2.0)
    return values * (alpha * two) + bias.sum()
