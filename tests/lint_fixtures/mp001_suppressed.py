"""MP001 fixture: a lambda to a *thread* pool, explicitly waved through."""


def run_all(thread_executor, shards: list) -> list:
    # Thread pools do not pickle their callables; the rule cannot tell
    # thread from process pools, so the call site says so.
    return [
        thread_executor.submit(lambda shard: shard + 1, shard)  # repro-lint: disable=MP001
        for shard in shards
    ]
