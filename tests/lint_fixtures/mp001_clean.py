"""MP001 fixture: only module-level callables go to the executor."""


def process(shard):
    return shard * 2


def run_all(executor, shards: list) -> list:
    futures = [executor.submit(process, shard) for shard in shards]
    return futures + list(executor.map(process, shards))
