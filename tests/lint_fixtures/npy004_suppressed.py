"""NPY004 fixture: a deliberate float64 accumulator, waved through."""

import numpy as np


def accumulate(values: "np.ndarray", weight: "np.float32") -> float:
    # Kahan-style accumulation deliberately runs in float64 for accuracy.
    total = np.float64(0.0)  # repro-lint: disable=NPY004
    return float(total + values.sum() * weight)
