"""MP003 fixture: shared-memory segments acquired without lifecycle guards."""

from multiprocessing.shared_memory import SharedMemory


def attach_unguarded(name: str) -> bytes:
    segment = SharedMemory(name=name)
    return bytes(segment.buf[:8])


def create_without_unlink(name: str) -> None:
    segment = SharedMemory(name=name, create=True, size=64)
    try:
        segment.buf[:4] = b"abcd"
    finally:
        segment.close()
