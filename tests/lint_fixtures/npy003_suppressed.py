"""NPY003 fixture: a ragged-payload staging array, waved through."""

import numpy as np


def stage(ragged_rows: list) -> object:
    # Ragged rows cannot be a rectangular typed array; this staging buffer
    # never reaches a kernel.
    return np.array(ragged_rows, dtype=object)  # repro-lint: disable=NPY003
