"""MP002 fixture: custom-signature exception without __reduce__."""


class ShardError(ValueError):
    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(f"shard {shard_id}: {detail}")
        self.shard_id = shard_id
        self.detail = detail
