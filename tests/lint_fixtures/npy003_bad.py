"""NPY003 fixture: object-dtype array creation."""

import numpy as np


def build(mixed: list) -> tuple:
    slots = np.empty(4, dtype=object)
    packed = np.array(mixed, dtype="O")
    typed = np.zeros(2, dtype=np.object_)
    return slots, packed, typed
