"""NPY004 fixture: float64 promotion inside a float32-annotated kernel."""

import numpy as np


def scale(values: "np.ndarray", alpha: "np.float32") -> "np.ndarray":
    bias = np.zeros(3, dtype="float64")
    big = np.float64(1.5)
    return values * (alpha * 2.0) + bias.sum() + big
