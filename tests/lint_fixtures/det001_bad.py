"""DET001 fixture: direct wall-clock reads (parsed, never executed)."""

import datetime
import time
from time import perf_counter


def measure() -> float:
    start = time.time()
    time.sleep(0.1)
    return perf_counter() - start


def stamp() -> object:
    return datetime.datetime.now()
