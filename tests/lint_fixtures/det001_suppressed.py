"""DET001 fixture: wall-clock reads with explicit suppressions."""

import time


def sanctioned() -> float:
    # The one sanctioned read in this fixture's universe.
    return time.perf_counter()  # repro-lint: disable=DET001


def also_sanctioned() -> None:
    time.sleep(0.1)  # repro-lint: disable=DET001
