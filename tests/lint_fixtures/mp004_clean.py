"""MP004 fixture: lease owners implementing the Closeable protocol."""


class ShmLease:
    """Stand-in for the runtime lease type (the name is what MP004 walks)."""

    def close(self) -> None:
        pass

    def __enter__(self) -> "ShmLease":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class LeaseHolder:
    """Direct owner with the full lifecycle surface."""

    def __init__(self, lease: ShmLease | None) -> None:
        self._lease: ShmLease | None = lease

    def close(self) -> None:
        if self._lease is not None:
            self._lease.close()
            self._lease = None

    def __enter__(self) -> "LeaseHolder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ShardRunner(LeaseHolder):
    """Transitive owner inheriting the lifecycle surface from its base."""

    def __init__(self) -> None:
        super().__init__(None)
        self._inner = LeaseHolder(None)

    def close(self) -> None:
        self._inner.close()
        super().close()
