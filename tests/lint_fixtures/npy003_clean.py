"""NPY003 fixture: typed arrays only."""

import numpy as np


def build(values: list) -> tuple:
    indices = np.empty(4, dtype=np.int64)
    weights = np.array(values, dtype="float32")
    return indices, weights
