"""NPY002 fixture: an .astype() call waved through."""

import numpy as np


def widen(values) -> object:
    return values.astype(np.int64)  # repro-lint: disable=NPY002
