"""DET002 fixture: hidden-global-state RNG draws (parsed, never executed)."""

import random

import numpy as np


def sample(items: list) -> list:
    random.shuffle(items)
    return [random.random(), np.random.rand(3), np.random.randint(0, 10)]
