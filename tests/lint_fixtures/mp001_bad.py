"""MP001 fixture: unpicklable callables shipped to executors."""


def run_all(executor, shards: list) -> list:
    futures = [executor.submit(lambda shard: shard + 1, shard) for shard in shards]

    def process(shard):
        return shard * 2

    results = list(executor.map(process, shards))
    return futures + results
