"""MP002 fixture: custom-signature exceptions that pickle correctly."""


def _rebuild(cls, state, args):
    exc = cls.__new__(cls)
    exc.args = args
    exc.__dict__.update(state)
    return exc


class PicklableMixin:
    def __reduce__(self):
        return (_rebuild, (type(self), self.__dict__, self.args))


class ShardError(PicklableMixin, ValueError):
    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(f"shard {shard_id}: {detail}")
        self.shard_id = shard_id


class PlainError(RuntimeError):
    """No custom __init__ — the default reduce round-trips fine."""
