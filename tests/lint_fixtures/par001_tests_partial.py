"""PAR001 fixture: the ``beta`` parity test has been deleted."""

from par001_src import make_solver


def check_alpha():
    assert make_solver(backend="alpha") == "alpha"
