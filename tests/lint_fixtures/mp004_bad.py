"""MP004 fixture: lease owners without the Closeable lifecycle surface."""


class ShmLease:
    """Stand-in for the runtime lease type (the name is what MP004 walks)."""

    def close(self) -> None:
        pass

    def __enter__(self) -> "ShmLease":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class LeaseHolder:
    """Direct owner: holds the lease but offers no release path."""

    def __init__(self, lease: ShmLease | None) -> None:
        self._lease: ShmLease | None = lease

    def payload(self) -> bytes:
        return b""


class ShardRunner:
    """Transitive owner: holds a LeaseHolder, still no release path."""

    def __init__(self) -> None:
        self._holder = LeaseHolder(None)
