"""Parity suite: the fused NN engine must be bit-identical to the loop backend.

Every test fits (or runs) the same model twice — once layer-by-layer
(``backend="loop"``), once on the compiled tape (``backend="fused"``) — and
asserts exact equality (``np.array_equal``, no tolerances) of logits, fitted
weights, gradients and loss histories.  Randomized CommCNN configurations
cover all three branch toggles, ragged last batches, dropout on/off and both
optimisers.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.commcnn import build_commcnn_classifier
from repro.core.config import CommCNNConfig
from repro.exceptions import ModelConfigError
from repro.ml.nn import (
    SGD,
    Adam,
    CompiledNetwork,
    Conv2D,
    Dense,
    EngineCompileError,
    Flatten,
    Layer,
    NeuralNetworkClassifier,
    ReLU,
    Sequential,
)


def _fit_pair(
    k: int,
    num_columns: int,
    num_classes: int,
    X: np.ndarray,
    y: np.ndarray,
    config: CommCNNConfig,
    optimizer_factory=None,
    **branch_toggles: bool,
) -> tuple[NeuralNetworkClassifier, NeuralNetworkClassifier]:
    """Fit two identically-configured CommCNNs, one per backend."""
    fitted = []
    for backend in ("loop", "fused"):
        clf = build_commcnn_classifier(
            k,
            num_columns,
            num_classes,
            config=replace(config, nn_backend=backend),
            **branch_toggles,
        )
        if optimizer_factory is not None:
            clf.optimizer = optimizer_factory()
        clf.fit(X, y)
        assert clf.backend_used_ == backend
        fitted.append(clf)
    return fitted[0], fitted[1]


def _assert_identical(loop_clf, fused_clf, X) -> None:
    assert loop_clf.loss_history_ == fused_clf.loss_history_
    loop_params = loop_clf.model.parameters()
    fused_params = fused_clf.model.parameters()
    assert [name for name, _, _ in loop_params] == [
        name for name, _, _ in fused_params
    ]
    for (name, param_l, grad_l), (_, param_f, grad_f) in zip(loop_params, fused_params):
        assert np.array_equal(param_l, param_f), f"weights diverge at {name}"
        assert np.array_equal(grad_l, grad_f), f"gradients diverge at {name}"
    assert np.array_equal(loop_clf.predict_proba(X), fused_clf.predict_proba(X))
    assert np.array_equal(loop_clf.predict(X), fused_clf.predict(X))


def _random_problem(rng, n, k, num_columns, num_classes):
    X = rng.normal(size=(n, 1, k, num_columns))
    # Zero-pad some trailing rows like real community tensors.
    X[rng.random(n) < 0.3, :, k // 2 :, :] = 0.0
    y = rng.integers(0, num_classes, size=n)
    return X, y


class TestCommCNNParity:
    def test_full_network_ragged_batches_dropout(self):
        rng = np.random.default_rng(7)
        X, y = _random_problem(rng, 83, 12, 9, 3)  # 83 % 32 != 0: ragged batch
        config = CommCNNConfig(epochs=3, dropout=0.2, seed=3)
        loop_clf, fused_clf = _fit_pair(12, 9, 3, X, y, config)
        _assert_identical(loop_clf, fused_clf, X)

    def test_no_dropout(self):
        rng = np.random.default_rng(11)
        X, y = _random_problem(rng, 64, 10, 8, 3)
        config = CommCNNConfig(epochs=3, dropout=0.0, seed=1)
        loop_clf, fused_clf = _fit_pair(10, 8, 3, X, y, config)
        _assert_identical(loop_clf, fused_clf, X)

    @pytest.mark.parametrize(
        "toggles",
        [
            {"include_wide_branch": False, "include_long_branch": False},
            {"include_square_branch": False, "include_long_branch": False},
            {"include_square_branch": False, "include_wide_branch": False},
        ],
        ids=["square-only", "wide-only", "long-only"],
    )
    def test_single_branch_ablations(self, toggles):
        rng = np.random.default_rng(13)
        X, y = _random_problem(rng, 45, 8, 7, 2)
        config = CommCNNConfig(epochs=2, dropout=0.1, seed=5)
        loop_clf, fused_clf = _fit_pair(8, 7, 2, X, y, config, **toggles)
        _assert_identical(loop_clf, fused_clf, X)

    def test_sgd_momentum_optimizer(self):
        rng = np.random.default_rng(17)
        X, y = _random_problem(rng, 50, 9, 6, 3)
        config = CommCNNConfig(epochs=3, dropout=0.0, seed=2)
        loop_clf, fused_clf = _fit_pair(
            9, 6, 3, X, y, config,
            optimizer_factory=lambda: SGD(learning_rate=0.05, momentum=0.9),
        )
        _assert_identical(loop_clf, fused_clf, X)

    def test_plain_sgd_optimizer(self):
        rng = np.random.default_rng(19)
        X, y = _random_problem(rng, 40, 7, 5, 2)
        config = CommCNNConfig(epochs=2, dropout=0.0, seed=4)
        loop_clf, fused_clf = _fit_pair(
            7, 5, 2, X, y, config, optimizer_factory=lambda: SGD(learning_rate=0.05)
        )
        _assert_identical(loop_clf, fused_clf, X)

    def test_adam_state_written_back_by_name(self):
        """The fused optimiser leaves per-name Adam state as the loop would."""
        rng = np.random.default_rng(23)
        X, y = _random_problem(rng, 40, 8, 6, 3)
        config = CommCNNConfig(epochs=2, dropout=0.0, seed=6)
        loop_clf, fused_clf = _fit_pair(8, 6, 3, X, y, config)
        loop_adam, fused_adam = loop_clf.optimizer, fused_clf.optimizer
        assert set(loop_adam._first_moment) == set(fused_adam._first_moment)
        assert loop_adam._step_count == fused_adam._step_count
        for name, moment in loop_adam._first_moment.items():
            assert np.array_equal(moment, fused_adam._first_moment[name])
            assert np.array_equal(
                loop_adam._second_moment[name], fused_adam._second_moment[name]
            )

    def test_predict_on_unseen_larger_batch(self):
        """Inference capacity grows past the training batch size."""
        rng = np.random.default_rng(29)
        X, y = _random_problem(rng, 40, 10, 7, 3)
        config = CommCNNConfig(epochs=2, dropout=0.1, seed=8)
        loop_clf, fused_clf = _fit_pair(10, 7, 3, X, y, config)
        X_big, _ = _random_problem(rng, 300, 10, 7, 3)
        assert np.array_equal(
            loop_clf.predict_proba(X_big), fused_clf.predict_proba(X_big)
        )
        # Inference growth must not allocate training-only workspaces
        # (gradients, dropout masks, scratch) at the big batch size.
        engine = fused_clf._engine
        assert engine.capacity >= 300
        assert engine.train_capacity <= 32
        for slot in engine.slots:
            if slot.training_only:
                assert slot.array.shape[0] <= 32

    def test_refit_same_classifier(self):
        """A second fit recompiles and stays bit-identical to the loop."""
        rng = np.random.default_rng(31)
        X1, y1 = _random_problem(rng, 40, 8, 6, 3)
        X2, y2 = _random_problem(rng, 36, 8, 6, 3)
        fitted = []
        for backend in ("loop", "fused"):
            clf = build_commcnn_classifier(
                8,
                6,
                3,
                config=CommCNNConfig(epochs=2, dropout=0.0, seed=9, nn_backend=backend),
            )
            clf.fit(X1, y1)
            clf.fit(X2, y2)
            fitted.append(clf)
        _assert_identical(fitted[0], fitted[1], X2)


class TestBackendResolution:
    def test_auto_uses_fused_for_commcnn(self):
        rng = np.random.default_rng(37)
        X, y = _random_problem(rng, 33, 8, 6, 2)
        clf = build_commcnn_classifier(
            8, 6, 2, config=CommCNNConfig(epochs=1, nn_backend="auto")
        )
        clf.fit(X, y)
        assert clf.backend_used_ == "fused"

    def test_auto_falls_back_on_unsupported_layer(self, rng):
        class Scale(Layer):
            def forward(self, x, training=False):
                return x * 2.0

            def backward(self, grad_output):
                return grad_output * 2.0

        model = Sequential([Dense(4, 8, seed=0), Scale(), ReLU(), Dense(8, 2, seed=1)])
        clf = NeuralNetworkClassifier(model, num_classes=2, epochs=2, backend="auto")
        clf.fit(rng.normal(size=(20, 4)), rng.integers(0, 2, size=20))
        assert clf.backend_used_ == "loop"

    def test_fused_raises_on_unsupported_layer(self, rng):
        class Scale(Layer):
            def forward(self, x, training=False):
                return x * 2.0

            def backward(self, grad_output):
                return grad_output * 2.0

        model = Sequential([Dense(4, 8, seed=0), Scale()])
        clf = NeuralNetworkClassifier(model, num_classes=2, epochs=1, backend="fused")
        with pytest.raises(EngineCompileError):
            clf.fit(rng.normal(size=(8, 4)), np.zeros(8, dtype=np.int64))

    def test_invalid_backend_rejected(self):
        model = Sequential([Dense(2, 2)])
        with pytest.raises(ModelConfigError):
            NeuralNetworkClassifier(model, num_classes=2, backend="jit")

    def test_fused_detects_wrong_output_width_at_compile(self, rng):
        model = Sequential([Dense(3, 5, seed=0)])
        clf = NeuralNetworkClassifier(model, num_classes=3, epochs=1, backend="fused")
        with pytest.raises(ModelConfigError, match="5 logits"):
            clf.fit(rng.normal(size=(8, 3)), np.zeros(8, dtype=np.int64))


class TestCompiledNetworkDirect:
    def test_dense_stack_parity(self, rng):
        model = Sequential(
            [Dense(6, 16, seed=0), ReLU(), Dense(16, 3, seed=1)]
        )
        engine = CompiledNetwork(model, (6,), 3)
        X = rng.normal(size=(25, 6))
        assert np.array_equal(engine.forward(X), model.forward(X, training=False))

    def test_conv_flatten_parity(self, rng):
        model = Sequential(
            [Conv2D(1, 3, (2, 2), seed=2), ReLU(), Flatten(), Dense(3 * 3 * 2, 2, seed=3)]
        )
        engine = CompiledNetwork(model, (1, 4, 3), 2)
        X = rng.normal(size=(9, 1, 4, 3))
        assert np.array_equal(engine.forward(X), model.forward(X, training=False))

    def test_empty_input_forward(self):
        model = Sequential([Dense(4, 2, seed=0)])
        engine = CompiledNetwork(model, (4,), 2)
        assert engine.forward(np.zeros((0, 4))).shape == (0, 2)

    def test_rejects_non_2d_output(self):
        model = Sequential([Conv2D(1, 2, (2, 2), seed=0)])
        with pytest.raises(EngineCompileError):
            CompiledNetwork(model, (1, 4, 4), 2)

    def test_custom_optimizer_subclass_uses_generic_path(self, rng):
        """An Adam subclass must not be silently fused; results still match."""

        class MyAdam(Adam):
            pass

        X = rng.normal(size=(30, 5))
        y = rng.integers(0, 2, size=30)
        fitted = []
        for backend in ("loop", "fused"):
            model = Sequential([Dense(5, 8, seed=0), ReLU(), Dense(8, 2, seed=1)])
            clf = NeuralNetworkClassifier(
                model,
                num_classes=2,
                epochs=3,
                backend=backend,
                optimizer=MyAdam(learning_rate=5e-3),
            )
            clf.fit(X, y)
            fitted.append(clf)
        assert fitted[0].loss_history_ == fitted[1].loss_history_
        for (_, p_l, _), (_, p_f, _) in zip(
            fitted[0].model.parameters(), fitted[1].model.parameters()
        ):
            assert np.array_equal(p_l, p_f)
