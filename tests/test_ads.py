"""Tests for the social-advertising simulator (Figure 14 machinery)."""

from __future__ import annotations

import random

import pytest

from repro.ads import AdCategory, AdSimulator, Campaign, CtrModel
from repro.exceptions import DatasetError
from repro.types import RelationType


class TestCampaignAndCtr:
    def test_affine_relations(self):
        assert AdCategory.FURNITURE.affine_relation is RelationType.FAMILY
        assert AdCategory.MOBILE_GAME.affine_relation is RelationType.SCHOOLMATE

    def test_campaign_validation(self):
        with pytest.raises(DatasetError):
            Campaign(AdCategory.FURNITURE, seeds=[], audience_size=10).validate()
        with pytest.raises(DatasetError):
            Campaign(AdCategory.FURNITURE, seeds=[1], audience_size=0).validate()

    def test_ctr_interest_is_stable_per_user(self):
        model = CtrModel(seed=0)
        first = model.interest(AdCategory.FURNITURE, 42)
        second = model.interest(AdCategory.FURNITURE, 42)
        assert first == second
        assert 0.0 <= first <= 1.0

    def test_ctr_score_scales_with_activity(self):
        model = CtrModel(seed=0)
        low = model.score(AdCategory.MOBILE_GAME, 7, activity_level=0.2)
        high = model.score(AdCategory.MOBILE_GAME, 7, activity_level=2.0)
        assert high > low > 0.0


class TestAdSimulator:
    @pytest.fixture(scope="class")
    def simulator(self, request):
        workload = request.getfixturevalue("tiny_workload")
        dataset = workload.dataset
        return workload, AdSimulator(dataset, dict(dataset.edge_types), seed=0)

    def _campaign(self, workload, category, num_seeds=30, audience=120):
        rng = random.Random(3)
        nodes = [n for n in workload.dataset.graph.nodes() if workload.dataset.graph.degree(n) >= 3]
        return Campaign(category, seeds=rng.sample(nodes, num_seeds), audience_size=audience)

    def test_audiences_exclude_seeds(self, simulator):
        workload, sim = simulator
        campaign = self._campaign(workload, AdCategory.FURNITURE)
        for audience in (
            sim.select_relation_audience(campaign),
            sim.select_locec_audience(campaign),
        ):
            assert not set(audience) & set(campaign.seeds)
            assert len(audience) <= campaign.audience_size

    def test_locec_audience_is_type_enriched(self, simulator):
        """The LoCEC audience must contain a larger share of users connected to a
        seed by the affine relation than the Relation audience."""
        workload, sim = simulator
        campaign = self._campaign(workload, AdCategory.FURNITURE)
        seeds = set(campaign.seeds)

        def affine_share(audience):
            hits = sum(
                1 for user in audience if sim._has_affine_seed_friend(user, seeds, RelationType.FAMILY)
            )
            return hits / max(len(audience), 1)

        relation_share = affine_share(sim.select_relation_audience(campaign))
        locec_share = affine_share(sim.select_locec_audience(campaign))
        assert locec_share >= relation_share

    def test_outcome_rates_bounded(self, simulator):
        workload, sim = simulator
        campaign = self._campaign(workload, AdCategory.MOBILE_GAME)
        outcomes = sim.compare_policies(campaign)
        for outcome in outcomes.values():
            assert 0.0 <= outcome.click_rate <= 1.0
            assert 0.0 <= outcome.interact_rate <= 1.0
            assert outcome.interactions <= outcome.clicks

    def test_compare_policies_returns_both(self, simulator):
        workload, sim = simulator
        campaign = self._campaign(workload, AdCategory.FURNITURE)
        outcomes = sim.compare_policies(campaign)
        assert set(outcomes) == {"Relation", "LoCEC-CNN"}

    def test_empty_audience_has_zero_rates(self, simulator):
        _, sim = simulator
        campaign = Campaign(AdCategory.FURNITURE, seeds=[0], audience_size=5)
        outcome = sim.simulate(campaign, [], policy="Relation")
        assert outcome.click_rate == 0.0 and outcome.interact_rate == 0.0
