"""Tests for the synthetic WeChat-like data generator."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import DatasetError
from repro.synthetic import (
    WeChatConfig,
    generate_network,
    generate_profiles,
    make_workload,
    profiles_to_store,
    run_survey,
)
from repro.synthetic.groups import generate_groups
from repro.synthetic.network import PRINCIPAL_TYPE_PRIORITY
from repro.types import RelationType, canonical_edge


class TestConfig:
    def test_defaults_validate(self):
        WeChatConfig().validate()

    def test_scale_presets(self):
        assert WeChatConfig.small().num_users == 300
        assert WeChatConfig.medium().num_users == 1200
        assert WeChatConfig.large().num_users == 4000

    def test_invalid_values(self):
        with pytest.raises(DatasetError):
            WeChatConfig(num_users=5).validate()
        with pytest.raises(DatasetError):
            WeChatConfig(random_edge_prob=2.0).validate()
        config = WeChatConfig()
        config.surveyed_user_fraction = 0.0
        with pytest.raises(DatasetError):
            config.validate()

    def test_principal_type_priority_order(self):
        assert PRINCIPAL_TYPE_PRIORITY[0] is RelationType.FAMILY
        assert PRINCIPAL_TYPE_PRIORITY[-1] is RelationType.OTHER


class TestProfiles:
    def test_profiles_have_expected_ranges(self):
        profiles = generate_profiles(200, random.Random(0))
        assert len(profiles) == 200
        for profile in profiles.values():
            assert profile.gender in (0, 1)
            assert 1 <= profile.age_bucket <= 6
            assert profile.tenure_years > 0
            assert profile.activity_level > 0

    def test_profiles_to_store(self):
        profiles = generate_profiles(10, random.Random(0))
        store = profiles_to_store(profiles)
        assert store.num_nodes == 10
        assert store.num_features == 4


class TestNetworkGeneration:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_network(WeChatConfig(num_users=200, seed=3))

    def test_deterministic_for_fixed_seed(self):
        a = generate_network(WeChatConfig(num_users=100, seed=5))
        b = generate_network(WeChatConfig(num_users=100, seed=5))
        assert a.graph == b.graph
        assert a.edge_types == b.edge_types

    def test_every_user_is_a_node(self, dataset):
        assert dataset.num_users == 200

    def test_every_edge_has_a_type(self, dataset):
        for edge in dataset.graph.edges():
            assert canonical_edge(*edge) in dataset.edge_types

    def test_every_typed_edge_exists_in_graph(self, dataset):
        for (u, v) in dataset.edge_types:
            assert dataset.graph.has_edge(u, v)

    def test_major_types_dominate(self, dataset):
        distribution = dataset.type_distribution()
        major = sum(
            distribution.get(relation, 0.0)
            for relation in RelationType.classification_targets()
        )
        assert major > 0.75

    def test_colleague_edges_outnumber_schoolmate_edges(self, dataset):
        distribution = dataset.type_distribution()
        assert distribution[RelationType.COLLEAGUE] > distribution[RelationType.SCHOOLMATE]

    def test_interaction_sparsity_matches_paper_ballpark(self, dataset):
        assert 0.45 <= dataset.interaction_sparsity() <= 0.75

    def test_family_circles_smaller_than_colleague_circles(self, dataset):
        family_sizes = [c.size for c in dataset.circles if c.circle_type is RelationType.FAMILY]
        colleague_sizes = [
            c.size for c in dataset.circles if c.circle_type is RelationType.COLLEAGUE
        ]
        assert sum(family_sizes) / len(family_sizes) < sum(colleague_sizes) / len(colleague_sizes)

    def test_edges_of_type_consistency(self, dataset):
        family_edges = dataset.edges_of_type(RelationType.FAMILY)
        assert all(dataset.true_type(u, v) is RelationType.FAMILY for u, v in family_edges)

    def test_interactions_only_on_existing_edges(self, dataset):
        for (u, v), _ in dataset.interactions.items():
            assert dataset.graph.has_edge(u, v)


class TestGroups:
    def test_groups_have_at_least_two_members(self, tiny_workload):
        for group in tiny_workload.dataset.groups:
            assert group.size >= 2

    def test_group_member_pairs_count(self):
        circles = [(RelationType.FAMILY, [1, 2, 3, 4])]
        config = WeChatConfig(num_users=20)
        config.groups[RelationType.FAMILY].groups_per_circle = 3.0
        config.groups[RelationType.FAMILY].member_participation = 1.0
        groups = generate_groups(circles, config, random.Random(0))
        assert len(groups) >= 1
        for group in groups:
            assert len(group.member_pairs()) == group.size * (group.size - 1) // 2

    def test_common_group_counts_symmetric_keys(self, tiny_workload):
        counts = tiny_workload.dataset.groups.common_group_counts()
        for (u, v), count in counts.items():
            assert count >= 1
            assert (u, v) == canonical_edge(u, v)

    def test_groups_of_member(self, tiny_workload):
        groups = tiny_workload.dataset.groups
        some_group = groups.groups[0]
        member = next(iter(some_group.members))
        assert some_group in groups.groups_of(member)


class TestSurvey:
    def test_survey_covers_major_share_of_surveyed_users_edges(self, tiny_workload):
        survey = tiny_workload.survey
        assert survey.num_labeled > 0
        assert len(survey.surveyed_users) > 0

    def test_labels_match_ground_truth(self, tiny_workload):
        dataset = tiny_workload.dataset
        for item in tiny_workload.survey.labeled_edges[:200]:
            assert item.label is dataset.true_type(item.u, item.v)

    def test_first_category_ratios_sum_to_one(self, tiny_workload):
        ratios = tiny_workload.survey.first_category_ratios()
        assert sum(ratios.values()) == pytest.approx(1.0)

    def test_colleagues_are_the_largest_category(self, tiny_workload):
        ratios = tiny_workload.survey.first_category_ratios()
        assert max(ratios, key=ratios.get) is RelationType.COLLEAGUE

    def test_major_type_edges_filters_other(self, tiny_workload):
        major = tiny_workload.survey.major_type_edges()
        assert all(item.label is not RelationType.OTHER for item in major)

    def test_second_categories_consistent_with_first(self, tiny_workload):
        for item in tiny_workload.survey.labeled_edges:
            if item.second_category is not None:
                assert item.second_category.first_category is item.label

    def test_survey_reproducible_with_seed(self):
        dataset = generate_network(WeChatConfig(num_users=150, seed=2))
        a = run_survey(dataset, seed=11)
        b = run_survey(dataset, seed=11)
        assert [x.edge for x in a.labeled_edges] == [x.edge for x in b.labeled_edges]


class TestWorkloads:
    def test_make_workload_scales(self):
        workload = make_workload("tiny", seed=0)
        assert workload.dataset.num_users == 120
        with pytest.raises(ValueError):
            make_workload("gigantic")

    def test_split_is_disjoint(self, tiny_workload):
        train_edges = {item.edge for item in tiny_workload.train_edges}
        test_edges = {item.edge for item in tiny_workload.test_edges}
        assert train_edges.isdisjoint(test_edges)

    def test_labeled_fraction_positive(self, tiny_workload):
        assert 0.0 < tiny_workload.labeled_fraction < 1.0

    def test_subsample_train(self, tiny_workload):
        subset = tiny_workload.subsample_train(0.25)
        assert len(subset) == max(1, round(0.25 * len(tiny_workload.train_edges)))
        assert set(item.edge for item in subset) <= {
            item.edge for item in tiny_workload.train_edges
        }
        with pytest.raises(ValueError):
            tiny_workload.subsample_train(0.0)

    def test_division_cache_reused(self, tiny_workload):
        first = tiny_workload.division()
        second = tiny_workload.division()
        assert first is second
