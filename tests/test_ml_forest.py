"""Parity tests: the array-backed ML model layer must match the node backend.

``backend="array"`` routes tree fitting through the vectorized split search
(:func:`repro.ml.forest.best_split_array`) and all inference through the
flattened :class:`TreeTensor` / :class:`ForestTensor` kernels.  Both backends
execute the same float64 operations in the same order, so fitted splits,
predictions, probabilities and the LoCEC-XGB leaf-value embedding must be
**bit-identical** — this suite sweeps randomized regression targets, boosted
multi-class problems, the Phase II community classifier and the direct
Phase2Kernel CNN tensor path, plus the iterative-depth regression test.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.community_classifier import GBDTCommunityClassifier
from repro.core.config import GBDTConfig, LoCECConfig
from repro.core.division import LocalCommunity
from repro.exceptions import ModelConfigError, NotFittedError
from repro.ml.forest import ForestTensor, TreeTensor, resolve_ml_backend
from repro.ml.gbdt import GradientBoostedClassifier
from repro.ml.tree import (
    GradientRegressionTree,
    RegressionTreeConfig,
    _node_depth,
    _TreeNode,
)

SEEDS = (0, 1, 2, 3, 4)


def random_tree_problem(seed: int, n: int = 150, num_features: int = 5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, num_features))
    # Duplicate feature values exercise the cannot-split-between-equal mask.
    X[:, 0] = np.round(X[:, 0] * 2.0) / 2.0
    gradients = rng.normal(size=n)
    hessians = np.abs(rng.normal(size=n)) + 0.05
    return X, gradients, hessians


def random_classification_problem(seed: int, n: int = 120, num_classes: int = 3):
    rng = np.random.default_rng(seed + 100)
    X = rng.normal(size=(n, 4))
    y = rng.integers(0, num_classes, size=n)
    return X, y


def flatten_structure(node: _TreeNode) -> list[tuple]:
    """Preorder (feature, threshold, value, leaf_id) tuples of a fitted tree."""
    out: list[tuple] = []
    stack = [node]
    while stack:
        current = stack.pop()
        out.append((current.feature, current.threshold, current.value, current.leaf_id))
        if current.feature is not None:
            stack.append(current.right)
            stack.append(current.left)
    return out


class TestBackendResolution:
    def test_auto_resolves_to_array_with_numpy(self):
        assert resolve_ml_backend("auto") == "array"
        assert resolve_ml_backend("node") == "node"
        assert resolve_ml_backend("array") == "array"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ModelConfigError):
            resolve_ml_backend("tensor")
        with pytest.raises(ModelConfigError):
            GradientRegressionTree(backend="csr")
        with pytest.raises(ModelConfigError):
            GradientBoostedClassifier(backend="csr")

    def test_gbdt_config_backend_validation(self):
        with pytest.raises(ModelConfigError):
            GBDTConfig(backend="dict").validate()
        GBDTConfig(backend="node").validate()

    def test_locec_config_ml_backend_validation(self):
        with pytest.raises(ModelConfigError):
            LoCECConfig(ml_backend="csr").validate()
        LoCECConfig(ml_backend="array").validate()


class TestTreeParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fitted_splits_bit_identical(self, seed):
        X, gradients, hessians = random_tree_problem(seed)
        config = RegressionTreeConfig(max_depth=4, min_samples_leaf=3)
        node_tree = GradientRegressionTree(config, backend="node").fit(
            X, gradients, hessians
        )
        array_tree = GradientRegressionTree(config, backend="array").fit(
            X, gradients, hessians
        )
        assert flatten_structure(node_tree.root_) == flatten_structure(
            array_tree.root_
        )
        assert node_tree.num_leaves_ == array_tree.num_leaves_

    @pytest.mark.parametrize("seed", SEEDS)
    def test_predict_apply_leaf_values_bit_identical(self, seed):
        X, gradients, hessians = random_tree_problem(seed)
        config = RegressionTreeConfig(max_depth=5)
        node_tree = GradientRegressionTree(config, backend="node").fit(
            X, gradients, hessians
        )
        array_tree = GradientRegressionTree(config, backend="array").fit(
            X, gradients, hessians
        )
        fresh = np.random.default_rng(seed + 50).normal(size=(60, X.shape[1]))
        for batch in (X, fresh, fresh[0]):
            assert np.array_equal(node_tree.predict(batch), array_tree.predict(batch))
            assert np.array_equal(node_tree.apply(batch), array_tree.apply(batch))
            assert np.array_equal(
                node_tree.leaf_values(batch), array_tree.leaf_values(batch)
            )
        assert node_tree.depth == array_tree.depth

    def test_tensor_accessor_matches_node_walk(self):
        X, gradients, hessians = random_tree_problem(9)
        node_tree = GradientRegressionTree(backend="node").fit(X, gradients, hessians)
        tensor = node_tree.tensor()  # lazily flattened on the node backend
        assert isinstance(tensor, TreeTensor)
        assert np.array_equal(tensor.predict(X), node_tree.predict(X))
        assert tensor.depth() == _node_depth(node_tree.root_)

    def test_single_leaf_tree(self):
        X = np.ones((8, 2))
        gradients = np.full(8, -1.0)
        tree = GradientRegressionTree(backend="array").fit(X, gradients, np.ones(8))
        assert tree.num_leaves_ == 1
        assert np.array_equal(tree.apply(X), np.zeros(8, dtype=np.int64))

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GradientRegressionTree(backend="array").predict(np.zeros((2, 2)))

    def test_iterative_depth_survives_deep_chains(self):
        # A 5000-deep left chain: the old recursive _node_depth blew the
        # interpreter recursion limit (default 1000) on trees like this.
        leaf = _TreeNode(depth=5000, leaf_id=0)
        node = leaf
        for depth in range(4999, -1, -1):
            node = _TreeNode(
                depth=depth,
                feature=0,
                threshold=0.0,
                left=node,
                right=_TreeNode(depth=depth + 1, leaf_id=1),
            )
        assert _node_depth(node) == 5000


class TestForestParity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_gbdt_outputs_bit_identical(self, seed):
        X, y = random_classification_problem(seed)
        kwargs = dict(num_rounds=8, max_depth=3, seed=seed)
        node_model = GradientBoostedClassifier(backend="node", **kwargs).fit(X, y)
        array_model = GradientBoostedClassifier(backend="array", **kwargs).fit(X, y)
        assert node_model.train_loss_history_ == array_model.train_loss_history_
        fresh = np.random.default_rng(seed + 200).normal(size=(40, X.shape[1]))
        for batch in (X, fresh, fresh[0]):
            assert np.array_equal(
                node_model.decision_function(batch),
                array_model.decision_function(batch),
            )
            assert np.array_equal(
                node_model.predict_proba(batch), array_model.predict_proba(batch)
            )
            assert np.array_equal(
                node_model.predict(batch), array_model.predict(batch)
            )
            assert np.array_equal(
                node_model.leaf_values(batch), array_model.leaf_values(batch)
            )
            assert np.array_equal(
                node_model.leaf_indices(batch), array_model.leaf_indices(batch)
            )

    def test_subsampled_fit_bit_identical(self):
        X, y = random_classification_problem(11, n=200)
        kwargs = dict(num_rounds=10, subsample=0.6, seed=7)
        node_model = GradientBoostedClassifier(backend="node", **kwargs).fit(X, y)
        array_model = GradientBoostedClassifier(backend="array", **kwargs).fit(X, y)
        assert np.array_equal(
            node_model.predict_proba(X), array_model.predict_proba(X)
        )

    def test_predict_raw_alias(self):
        X, y = random_classification_problem(3)
        model = GradientBoostedClassifier(num_rounds=3).fit(X, y)
        assert np.array_equal(model.predict_raw(X), model.decision_function(X))

    def test_forest_tensor_from_node_trees(self):
        X, y = random_classification_problem(5)
        node_model = GradientBoostedClassifier(num_rounds=4, backend="node").fit(X, y)
        forest = ForestTensor.from_trees(
            [tree for round_trees in node_model.trees_ for tree in round_trees]
        )
        assert forest.num_trees == node_model.num_trees
        assert np.array_equal(
            forest.leaf_values_matrix(X), node_model.leaf_values(X)
        )
        assert np.array_equal(
            forest.leaf_indices_matrix(X), node_model.leaf_indices(X)
        )

    def test_array_backend_populates_forest(self):
        X, y = random_classification_problem(6)
        model = GradientBoostedClassifier(num_rounds=2, backend="array").fit(X, y)
        assert model.forest_ is not None
        assert model.forest_.num_trees == model.num_trees
        node_model = GradientBoostedClassifier(num_rounds=2, backend="node").fit(X, y)
        assert node_model.forest_ is None


def random_stores_and_communities(seed: int):
    """Random Phase II stores plus communities (mirrors test_phase2_csr)."""
    from repro.graph.features import NodeFeatureStore
    from repro.graph.interactions import InteractionStore

    rng = random.Random(seed)
    features = NodeFeatureStore(["f0", "f1", "f2"])
    interactions = InteractionStore(num_dims=4)
    num_nodes = 26
    for node in range(num_nodes):
        if rng.random() < 0.8:
            features.set(node, [rng.randint(0, 5) + 0.5 for _ in range(3)])
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < 0.3:
                interactions.record(u, v, rng.randrange(4), rng.randint(1, 9))
    communities = []
    for index in range(14):
        size = rng.choice([1, 2, 4, 7, 10])
        members = frozenset(rng.sample(range(num_nodes + 2), size))
        tightness = {member: rng.random() for member in members}
        communities.append(
            LocalCommunity(ego=-index, members=members, tightness=tightness, index=0)
        )
    return features, interactions, communities


class TestCommunityClassifierParity:
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_gbdt_community_classifier_bit_identical(self, seed):
        from repro.core.aggregation import FeatureMatrixBuilder

        features, interactions, communities = random_stores_and_communities(seed)
        labels = [index % 3 for index in range(len(communities))]
        results = {}
        for ml_backend in ("node", "array"):
            builder = FeatureMatrixBuilder(features, interactions, k=6)
            classifier = GBDTCommunityClassifier(
                builder, config=GBDTConfig(num_rounds=6, backend=ml_backend)
            ).fit(communities, labels)
            results[ml_backend] = (
                classifier.predict_proba(communities),
                classifier.result_vectors(communities),
            )
        assert np.array_equal(results["node"][0], results["array"][0])
        # The Phase III leaf-value embedding r_C must match bit-for-bit too.
        assert np.array_equal(results["node"][1], results["array"][1])

    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_matrices_as_tensor_path_bit_identical(self, seed):
        """Direct Phase2Kernel->CNN tensor path vs the dict reference."""
        from repro.core.aggregation import FeatureMatrixBuilder

        features, interactions, communities = random_stores_and_communities(seed)
        for k in (3, 6, 20):  # truncation, the default, and heavy padding
            dict_builder = FeatureMatrixBuilder(
                features, interactions, k=k, backend="dict"
            )
            csr_builder = FeatureMatrixBuilder(
                features, interactions, k=k, backend="csr"
            )
            assert np.array_equal(
                dict_builder.matrices_as_tensor(communities),
                csr_builder.matrices_as_tensor(communities),
            )
        assert csr_builder.matrices_as_tensor([]).shape == (0, 1, 20, 7)
