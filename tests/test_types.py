"""Tests for repro.types and repro.exceptions."""

from __future__ import annotations

import pytest

from repro import exceptions
from repro.types import (
    PRF,
    ClassificationReport,
    InteractionDim,
    LabeledEdge,
    MomentsCategory,
    RelationType,
    SecondCategory,
    canonical_edge,
)


class TestRelationType:
    def test_classification_targets_are_the_three_major_types(self):
        targets = RelationType.classification_targets()
        assert targets == (
            RelationType.FAMILY,
            RelationType.COLLEAGUE,
            RelationType.SCHOOLMATE,
        )

    def test_class_indices_are_stable(self):
        assert int(RelationType.FAMILY) == 0
        assert int(RelationType.COLLEAGUE) == 1
        assert int(RelationType.SCHOOLMATE) == 2

    def test_other_is_not_a_classification_target(self):
        assert RelationType.OTHER not in RelationType.classification_targets()

    def test_display_names_match_paper_tables(self):
        assert RelationType.FAMILY.display_name == "Family Members"
        assert RelationType.COLLEAGUE.display_name == "Colleague"
        assert RelationType.SCHOOLMATE.display_name == "Schoolmates"


class TestSecondCategory:
    def test_every_second_category_maps_to_a_first_category(self):
        for category in SecondCategory:
            assert isinstance(category.first_category, RelationType)

    def test_kin_is_family(self):
        assert SecondCategory.KIN.first_category is RelationType.FAMILY

    def test_university_is_schoolmate(self):
        assert SecondCategory.UNIVERSITY.first_category is RelationType.SCHOOLMATE

    def test_past_colleague_is_colleague(self):
        assert SecondCategory.PAST_COLLEAGUE.first_category is RelationType.COLLEAGUE


class TestInteractionDim:
    def test_count_matches_enum_size(self):
        assert InteractionDim.count() == len(InteractionDim) == 7

    def test_moments_dims_exclude_messaging(self):
        dims = InteractionDim.moments_dims()
        assert InteractionDim.MESSAGE not in dims
        assert len(dims) == 6

    def test_values_are_contiguous_indices(self):
        assert sorted(int(dim) for dim in InteractionDim) == list(range(7))


class TestMomentsCategory:
    def test_like_and_comment_dims_are_distinct(self):
        for category in MomentsCategory:
            assert category.like_dim != category.comment_dim

    def test_picture_maps_to_picture_dims(self):
        assert MomentsCategory.PICTURE.like_dim is InteractionDim.LIKE_PICTURE
        assert MomentsCategory.PICTURE.comment_dim is InteractionDim.COMMENT_PICTURE


class TestCanonicalEdge:
    def test_order_independent(self):
        assert canonical_edge(2, 1) == canonical_edge(1, 2)

    def test_is_idempotent(self):
        edge = canonical_edge(5, 3)
        assert canonical_edge(*edge) == edge

    def test_string_nodes(self):
        assert canonical_edge("b", "a") == canonical_edge("a", "b")


class TestLabeledEdge:
    def test_edge_property_is_canonical(self):
        item = LabeledEdge(5, 2, RelationType.FAMILY)
        assert item.edge == canonical_edge(2, 5)

    def test_is_hashable_and_frozen(self):
        item = LabeledEdge(1, 2, RelationType.COLLEAGUE)
        assert hash(item) is not None
        with pytest.raises(AttributeError):
            item.u = 3  # type: ignore[misc]


class TestPRF:
    def test_from_counts_perfect(self):
        prf = PRF.from_counts(tp=10, fp=0, fn=0)
        assert prf.precision == prf.recall == prf.f1 == 1.0

    def test_from_counts_zero_predictions(self):
        prf = PRF.from_counts(tp=0, fp=0, fn=5)
        assert prf.precision == 0.0
        assert prf.recall == 0.0
        assert prf.f1 == 0.0

    def test_from_counts_known_values(self):
        prf = PRF.from_counts(tp=6, fp=2, fn=6)
        assert prf.precision == pytest.approx(0.75)
        assert prf.recall == pytest.approx(0.5)
        assert prf.f1 == pytest.approx(0.6)


class TestClassificationReport:
    def test_as_rows_ordering_matches_paper(self):
        report = ClassificationReport(
            per_class={
                RelationType.FAMILY: PRF(0.9, 0.9, 0.9),
                RelationType.COLLEAGUE: PRF(0.8, 0.8, 0.8),
                RelationType.SCHOOLMATE: PRF(0.7, 0.7, 0.7),
            },
            overall=PRF(0.85, 0.85, 0.85),
        )
        names = [row[0] for row in report.as_rows()]
        assert names == ["Colleague", "Family Members", "Schoolmates", "Overall"]

    def test_row_lookup(self):
        report = ClassificationReport(
            per_class={RelationType.FAMILY: PRF(0.5, 0.6, 0.55)}
        )
        assert report.row(RelationType.FAMILY).recall == 0.6


class TestExceptions:
    def test_hierarchy_roots_at_repro_error(self):
        assert issubclass(exceptions.GraphError, exceptions.ReproError)
        assert issubclass(exceptions.PipelineError, exceptions.ReproError)
        assert issubclass(exceptions.DatasetError, exceptions.ReproError)

    def test_node_not_found_is_keyerror(self):
        error = exceptions.NodeNotFoundError(42)
        assert isinstance(error, KeyError)
        assert error.node == 42

    def test_not_fitted_mentions_estimator_type(self):
        class Dummy:
            pass

        error = exceptions.NotFittedError(Dummy())
        assert "Dummy" in str(error)

    def test_self_loop_error_carries_node(self):
        error = exceptions.SelfLoopError("u")
        assert error.node == "u"
