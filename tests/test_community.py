"""Tests for the community-detection substrate."""

from __future__ import annotations

import pytest

from repro.community import (
    connected_components,
    edge_betweenness,
    girvan_newman,
    girvan_newman_levels,
    label_propagation_communities,
    louvain_communities,
    modularity,
    node_component_map,
    number_connected_components,
    partition_to_membership,
)
from repro.exceptions import CommunityError
from repro.graph import Graph, ego_network
from repro.graph.generators import planted_partition
from repro.types import canonical_edge


class TestConnectedComponents:
    def test_single_component(self, triangle_graph):
        components = connected_components(triangle_graph)
        assert len(components) == 1
        assert components[0] == {1, 2, 3}

    def test_multiple_components(self):
        graph = Graph(edges=[(1, 2), (3, 4)])
        graph.add_node(5)
        assert number_connected_components(graph) == 3

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    def test_node_component_map_consistency(self, two_cliques_graph):
        two_cliques_graph.remove_edge(3, 4)
        mapping = node_component_map(two_cliques_graph)
        assert mapping[0] == mapping[3]
        assert mapping[0] != mapping[4]


class TestEdgeBetweenness:
    def test_path_graph_central_edge_highest(self):
        graph = Graph(edges=[(1, 2), (2, 3), (3, 4)])
        betweenness = edge_betweenness(graph)
        assert betweenness[canonical_edge(2, 3)] == max(betweenness.values())

    def test_path_graph_exact_values(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        betweenness = edge_betweenness(graph)
        # Edge (1,2) lies on shortest paths (1,2) and (1,3): value 2.
        assert betweenness[canonical_edge(1, 2)] == pytest.approx(2.0)
        assert betweenness[canonical_edge(2, 3)] == pytest.approx(2.0)

    def test_bridge_dominates_two_cliques(self, two_cliques_graph):
        betweenness = edge_betweenness(two_cliques_graph)
        bridge = canonical_edge(3, 4)
        assert betweenness[bridge] == max(betweenness.values())
        # The bridge carries all 16 cross-clique shortest paths.
        assert betweenness[bridge] == pytest.approx(16.0)

    def test_symmetric_clique_edges_equal(self, triangle_graph):
        values = set(round(v, 9) for v in edge_betweenness(triangle_graph).values())
        assert len(values) == 1

    def test_covers_every_edge(self, fig7_graph):
        betweenness = edge_betweenness(fig7_graph)
        assert set(betweenness) == set(fig7_graph.edges())


class TestModularity:
    def test_perfect_split_is_positive(self, two_cliques_graph):
        q = modularity(two_cliques_graph, [{0, 1, 2, 3}, {4, 5, 6, 7}])
        assert q > 0.3

    def test_single_community_is_zero(self, triangle_graph):
        assert modularity(triangle_graph, [{1, 2, 3}]) == pytest.approx(0.0)

    def test_empty_graph_is_zero(self):
        assert modularity(Graph(), []) == 0.0

    def test_non_partition_raises(self, triangle_graph):
        with pytest.raises(CommunityError):
            modularity(triangle_graph, [{1, 2}])
        with pytest.raises(CommunityError):
            modularity(triangle_graph, [{1, 2, 3}, {3}])

    def test_better_partition_has_higher_modularity(self, two_cliques_graph):
        good = modularity(two_cliques_graph, [{0, 1, 2, 3}, {4, 5, 6, 7}])
        bad = modularity(two_cliques_graph, [{0, 1, 4, 5}, {2, 3, 6, 7}])
        assert good > bad


class TestGirvanNewman:
    def test_paper_figure7_ego_communities(self, fig7_graph):
        ego = ego_network(fig7_graph, 1)
        result = girvan_newman(ego)
        blocks = {frozenset(block) for block in result.communities}
        assert frozenset({2, 3, 4}) in blocks
        assert frozenset({5, 6}) in blocks

    def test_two_cliques_split(self, two_cliques_graph):
        result = girvan_newman(two_cliques_graph)
        assert result.sizes == [4, 4]
        assert result.modularity > 0.3

    def test_planted_partition_recovered(self):
        graph, communities = planted_partition([10, 10, 10], 0.9, 0.01, seed=3)
        result = girvan_newman(graph)
        detected = {frozenset(block) for block in result.communities}
        for planted in communities:
            assert frozenset(planted) in detected

    def test_empty_graph(self):
        result = girvan_newman(Graph())
        assert result.communities == ()

    def test_edgeless_graph_gives_singletons(self):
        graph = Graph(nodes=[1, 2, 3])
        result = girvan_newman(graph)
        assert sorted(len(block) for block in result.communities) == [1, 1, 1]

    def test_partition_covers_all_nodes(self, fig7_graph):
        result = girvan_newman(fig7_graph)
        covered = set().union(*result.communities)
        assert covered == set(fig7_graph.nodes())

    def test_community_of_lookup(self, two_cliques_graph):
        result = girvan_newman(two_cliques_graph)
        assert 0 in result.community_of(0)
        with pytest.raises(CommunityError):
            result.community_of(99)

    def test_max_communities_cap(self, two_cliques_graph):
        result = girvan_newman(two_cliques_graph, max_communities=2)
        assert len(result.communities) <= 2

    def test_levels_are_monotonically_finer(self, two_cliques_graph):
        sizes = [len(partition) for partition in girvan_newman_levels(two_cliques_graph)]
        assert sizes == sorted(sizes)
        assert sizes[0] == 1

    def test_partition_to_membership(self):
        membership = partition_to_membership([frozenset({1, 2}), frozenset({3})])
        assert membership == {1: 0, 2: 0, 3: 1}
        with pytest.raises(CommunityError):
            partition_to_membership([frozenset({1}), frozenset({1})])


class TestLabelPropagation:
    def test_two_cliques_split(self, two_cliques_graph):
        communities = label_propagation_communities(two_cliques_graph, seed=0)
        covered = set().union(*communities)
        assert covered == set(two_cliques_graph.nodes())
        assert len(communities) >= 2 or len(communities[0]) == 8

    def test_deterministic_for_fixed_seed(self, two_cliques_graph):
        a = label_propagation_communities(two_cliques_graph, seed=5)
        b = label_propagation_communities(two_cliques_graph, seed=5)
        assert {frozenset(x) for x in a} == {frozenset(x) for x in b}

    def test_isolated_nodes_stay_singletons(self):
        graph = Graph(nodes=[1, 2])
        communities = label_propagation_communities(graph)
        assert len(communities) == 2


class TestLouvain:
    def test_two_cliques_split(self, two_cliques_graph):
        communities = louvain_communities(two_cliques_graph, seed=0)
        blocks = {frozenset(block) for block in communities}
        assert frozenset({0, 1, 2, 3}) in blocks
        assert frozenset({4, 5, 6, 7}) in blocks

    def test_planted_partition_mostly_recovered(self):
        graph, planted = planted_partition([12, 12], 0.8, 0.02, seed=1)
        communities = louvain_communities(graph, seed=0)
        assert 1 < len(communities) <= 6
        covered = set().union(*communities)
        assert covered == set(graph.nodes())

    def test_empty_and_edgeless_graphs(self):
        assert louvain_communities(Graph()) == ()
        singletons = louvain_communities(Graph(nodes=[1, 2, 3]))
        assert sorted(len(block) for block in singletons) == [1, 1, 1]
