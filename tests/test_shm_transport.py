"""Tests for the zero-copy transport stack: shared-memory CSR graphs,
out-of-core npz spill, and the executor's transport plumbing.

Covers the PR's hard invariants:

* publish -> pickle-the-handle -> attach round-trips the CSR arrays
  **bit-identically**, and the handle stays tiny (< 4 KiB) as the graph
  grows;
* a pool run under any transport (``pickle``, ``shm``, ``auto``) merges to a
  :class:`DivisionResult` identical to the clean serial run — including on
  string-labeled graphs, where set iteration order is the usual trap;
* leases never leak: the executor sweeps its segments on close and on pool
  rebuild (the slow tier hard-kills a worker to prove it);
* ``save_csr_npz``/``load_csr_npz`` round-trip bit-identically in both
  mmap modes, and the spill fingerprint feeds the checkpoint identity.
"""

from __future__ import annotations

import multiprocessing
import pickle
from pathlib import Path

import numpy as np
import pytest

import repro.runtime.executor as executor_module
from repro.core.config import ResilienceConfig
from repro.exceptions import ExecutorError, ModelConfigError
from repro.graph.csr import CSRGraph, ego_network_ordered, neighbor_order_array
from repro.graph.ego import ego_network
from repro.graph.generators import paper_figure7_network, planted_partition
from repro.graph.graph import Graph
from repro.graph.io import csr_npz_fingerprint, load_csr_npz, save_csr_npz
from repro.graph.phase2 import Phase2Kernel
from repro.graph.shm import (
    SharedCSRGraph,
    SharedPhase2Kernel,
    handle_nbytes,
    shm_supported,
)
from repro.runtime import (
    ClusterSpec,
    CostModel,
    ShardedDivisionExecutor,
    TransportCalibration,
    measure_transport,
)
from repro.runtime.faultinject import Fault, FaultPlan
from repro.runtime.resilience import FakeClock, shard_fingerprint
from repro.runtime.sharding import shard_nodes
from repro.synthetic import make_workload

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="POSIX shared memory unavailable"
)


@pytest.fixture
def graph():
    return paper_figure7_network()


@pytest.fixture
def string_graph():
    """A graph whose node labels defeat small-int set-layout coincidences."""
    base, _ = planted_partition([8, 8, 8], intra_prob=0.8, inter_prob=0.05, seed=7)
    relabeled = Graph(nodes=(f"user:{node:04d}" for node in base.nodes()))
    for u, v in base.edges():
        relabeled.add_edge(f"user:{u:04d}", f"user:{v:04d}")
    return relabeled


def _serial_division(graph, detector="label_propagation", num_shards=3):
    return (
        ShardedDivisionExecutor(num_shards=num_shards, detector=detector)
        .run(graph)
        .division
    )


def _attach_in_child(handle_payload: bytes, conn) -> None:
    """Spawn-target: unpickle a handle, attach, ship back checksums."""
    attached = pickle.loads(handle_payload).attach()
    try:
        conn.send(
            {
                "num_nodes": attached.num_nodes,
                "indptr_sum": int(attached.indptr.sum()),
                "indices_sum": int(attached.indices.sum()),
            }
        )
    finally:
        attached.close()
        conn.close()


# ------------------------------------------------------------ shm round-trip
@needs_shm
class TestSharedCSRRoundTrip:
    def test_publish_attach_is_bit_identical(self, graph):
        csr = CSRGraph.from_graph(graph)
        lease = SharedCSRGraph.publish(csr)
        try:
            attached = pickle.loads(
                pickle.dumps(lease.handle, pickle.HIGHEST_PROTOCOL)
            ).attach()
            try:
                np.testing.assert_array_equal(attached.indptr, csr.indptr)
                np.testing.assert_array_equal(attached.indices, csr.indices)
                assert list(attached.nodes()) == list(csr.nodes())
                np.testing.assert_array_equal(
                    attached._neighbor_order, neighbor_order_array(csr)
                )
            finally:
                attached.close()
        finally:
            lease.close()

    def test_attached_arrays_are_read_only_views(self, graph):
        lease = SharedCSRGraph.publish(CSRGraph.from_graph(graph))
        try:
            attached = lease.handle.attach()
            try:
                with pytest.raises((ValueError, TypeError)):
                    attached.indices[0] = 0
            finally:
                attached.close()
        finally:
            lease.close()

    def test_handle_stays_small_as_graph_grows(self):
        sizes = []
        for group_size in (5, 20, 60):
            graph, _ = planted_partition(
                [group_size] * 4, intra_prob=0.6, inter_prob=0.02, seed=1
            )
            lease = SharedCSRGraph.publish(CSRGraph.from_graph(graph))
            try:
                sizes.append(handle_nbytes(lease.handle))
            finally:
                lease.close()
        assert all(size < 4096 for size in sizes)
        # O(1): 12x more nodes must not mean 12x more handle.
        assert sizes[-1] < 2 * sizes[0]

    def test_handle_attaches_across_spawn(self, graph):
        lease = SharedCSRGraph.publish(CSRGraph.from_graph(graph))
        try:
            payload = pickle.dumps(lease.handle, pickle.HIGHEST_PROTOCOL)
            ctx = multiprocessing.get_context("spawn")
            parent_conn, child_conn = ctx.Pipe()
            child = ctx.Process(
                target=_attach_in_child, args=(payload, child_conn)
            )
            child.start()
            try:
                assert parent_conn.poll(60), "spawn child never reported"
                seen = parent_conn.recv()
            finally:
                child.join(timeout=60)
            assert child.exitcode == 0
            csr = CSRGraph.from_graph(graph)
            assert seen == {
                "num_nodes": csr.num_nodes,
                "indptr_sum": int(csr.indptr.sum()),
                "indices_sum": int(csr.indices.sum()),
            }
        finally:
            lease.close()

    def test_closed_lease_unlinks_segments(self, graph):
        lease = SharedCSRGraph.publish(CSRGraph.from_graph(graph))
        handle = lease.handle
        lease.close()
        assert lease.released
        lease.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            handle.attach()

    def test_lease_context_manager(self, graph):
        with SharedCSRGraph.publish(CSRGraph.from_graph(graph)) as lease:
            handle = lease.handle
            assert lease.segment_nbytes > 0
            assert len(lease.segment_names) == len(handle.segment_names)
        with pytest.raises(FileNotFoundError):
            handle.attach()


# ------------------------------------------------------- ordered ego replay
class TestOrderedEgoReplay:
    @pytest.mark.parametrize("fixture", ["graph", "string_graph"])
    def test_ordered_ego_matches_dict_backend(self, fixture, request):
        source = request.getfixturevalue(fixture)
        csr = CSRGraph.from_graph(source)
        csr._neighbor_order = neighbor_order_array(csr)
        csr._source = None  # detach: force the replay path
        for ego in source.nodes():
            replayed = ego_network_ordered(csr, ego)
            direct = ego_network(source, ego)
            assert list(replayed.nodes()) == list(direct.nodes())
            for node in direct.nodes():
                assert list(replayed.neighbors(node)) == list(
                    direct.neighbors(node)
                )


# ------------------------------------------------------ division parity
@needs_shm
class TestTransportParity:
    @pytest.mark.parametrize("transport", ["pickle", "shm", "auto"])
    @pytest.mark.parametrize("fixture", ["graph", "string_graph"])
    def test_pool_division_matches_clean_serial(
        self, transport, fixture, request
    ):
        source = request.getfixturevalue(fixture)
        clean = _serial_division(source)
        with ShardedDivisionExecutor(
            num_shards=3,
            num_workers=2,
            detector="label_propagation",
            resilience=ResilienceConfig(transport=transport),
        ) as executor:
            pooled = executor.run(source)
        assert (
            pooled.division.communities_by_ego == clean.communities_by_ego
        )

    def test_shm_requires_csr_backend(self, graph):
        executor = ShardedDivisionExecutor(
            num_shards=2,
            num_workers=2,
            backend="dict",
            resilience=ResilienceConfig(transport="shm"),
        )
        with pytest.raises(ExecutorError):
            executor.run(graph)

    def test_auto_degrades_to_pickle_for_dict_backend(self, graph):
        with ShardedDivisionExecutor(
            num_shards=2,
            num_workers=2,
            backend="dict",
            detector="label_propagation",
            resilience=ResilienceConfig(transport="auto"),
        ) as executor:
            report = executor.run(graph)
        assert report.transport.transport == "pickle"
        assert report.transport.payload_bytes > 0

    def test_transport_accounting(self, graph):
        with ShardedDivisionExecutor(
            num_shards=2,
            num_workers=2,
            detector="label_propagation",
            resilience=ResilienceConfig(transport="shm"),
        ) as executor:
            report = executor.run(graph)
        stats = report.transport
        assert stats.transport == "shm"
        assert stats.num_workers == 2
        assert 0 < stats.payload_bytes < 4096
        assert stats.segment_bytes > 0
        assert stats.shipped_bytes == stats.payload_bytes * 2
        assert stats.peak_worker_rss_bytes > 0
        # close() after run swept the published lease.
        assert stats.swept_segments > 0

    def test_serial_run_is_inline(self, graph):
        report = ShardedDivisionExecutor(
            num_shards=2, detector="label_propagation"
        ).run(graph)
        assert report.transport.transport == "inline"
        assert report.transport.payload_bytes == 0
        assert report.transport.peak_worker_rss_bytes > 0

    def test_invalid_transport_rejected(self):
        with pytest.raises(ModelConfigError):
            ResilienceConfig(transport="carrier_pigeon").validate()


# -------------------------------------------------------- worker teardown
class TestWorkerTeardown:
    def test_close_resets_worker_globals(self, graph):
        executor = ShardedDivisionExecutor(
            num_shards=2, detector="label_propagation"
        )
        executor.run(graph)
        executor_module._WORKER_GRAPH = CSRGraph.from_graph(graph)
        executor.close()
        assert executor_module._WORKER_GRAPH is None
        assert executor._prepared_graph is None
        assert executor._lease is None

    def test_context_manager_closes(self, graph):
        with ShardedDivisionExecutor(
            num_shards=2, detector="label_propagation"
        ) as executor:
            executor.run(graph)
        assert executor._lease is None


# ------------------------------------------------------------- leak sweep
@needs_shm
@pytest.mark.slow
class TestLeaseSweepUnderFaults:
    def _leaked_segments(self, before: set) -> set:
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():  # pragma: no cover - non-Linux
            return set()
        return {p.name for p in shm_dir.iterdir() if p.name.startswith("psm_")} - before

    def test_killed_worker_rebuild_sweeps_segments(self, graph):
        shm_dir = Path("/dev/shm")
        before = (
            {p.name for p in shm_dir.iterdir() if p.name.startswith("psm_")}
            if shm_dir.is_dir()
            else set()
        )
        plan = FaultPlan([Fault(0, 0, "kill")])
        clean = _serial_division(graph)
        with ShardedDivisionExecutor(
            num_shards=3,
            num_workers=2,
            detector="label_propagation",
            resilience=ResilienceConfig(
                transport="shm", max_attempts=3, max_pool_rebuilds=2
            ),
            fault_plan=plan,
            clock=FakeClock(),
        ) as executor:
            report = executor.run(graph)
        assert report.pool_rebuilds >= 1
        # The pre-rebuild lease was swept, then the end-of-run sweep covered
        # the replacement: both generations of segments are accounted for.
        assert report.transport.swept_segments >= 4
        assert (
            report.division.communities_by_ego == clean.communities_by_ego
        )
        assert self._leaked_segments(before) == set()


# ----------------------------------------------------------- npz spill
class TestCsrNpzSpill:
    @pytest.fixture
    def big_graph(self):
        # Wider than one shard's worth of egos: 4 shards x 25 nodes.
        graph, _ = planted_partition(
            [20] * 5, intra_prob=0.5, inter_prob=0.03, seed=11
        )
        return graph

    @pytest.mark.parametrize("mmap_mode", [None, "r"])
    def test_round_trip_is_bit_identical(self, big_graph, tmp_path, mmap_mode):
        csr = CSRGraph.from_graph(big_graph)
        path = tmp_path / "graph.npz"
        save_csr_npz(csr, path)
        loaded = load_csr_npz(path, mmap_mode=mmap_mode)
        np.testing.assert_array_equal(loaded.indptr, csr.indptr)
        np.testing.assert_array_equal(loaded.indices, csr.indices)
        assert list(loaded.nodes()) == list(csr.nodes())
        np.testing.assert_array_equal(
            loaded._neighbor_order, neighbor_order_array(csr)
        )

    def test_mmap_division_matches_serial(self, big_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_csr_npz(CSRGraph.from_graph(big_graph), path)
        spilled = load_csr_npz(path, mmap_mode="r")
        clean = _serial_division(big_graph, num_shards=4)
        report = ShardedDivisionExecutor(
            num_shards=4, detector="label_propagation"
        ).run(spilled)
        assert report.division.communities_by_ego == clean.communities_by_ego

    def test_fingerprint_is_stable_and_content_bound(self, big_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_csr_npz(CSRGraph.from_graph(big_graph), path)
        first = csr_npz_fingerprint(path)
        assert first == csr_npz_fingerprint(path)
        loaded = load_csr_npz(path, mmap_mode="r")
        assert loaded.spill_identity == first

    def test_spill_identity_feeds_checkpoint_fingerprint(self, big_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_csr_npz(CSRGraph.from_graph(big_graph), path)
        shard = shard_nodes(list(big_graph.nodes()), num_shards=2)[0]
        bare = shard_fingerprint(shard, "label_propagation")
        spilled = shard_fingerprint(
            shard, "label_propagation", csr_npz_fingerprint(path)
        )
        other = shard_fingerprint(shard, "label_propagation", "spill|0|deadbeef")
        assert len({bare, spilled, other}) == 3


# ----------------------------------------------------------- phase 2 shm
@needs_shm
class TestSharedPhase2Kernel:
    def test_publish_attach_preserves_kernel_outputs(self):
        workload = make_workload("tiny", seed=0)
        dataset = workload.dataset
        kernel = Phase2Kernel.compile(dataset.features, dataset.interactions)
        probe = list(dataset.graph.nodes())[:6]
        lease = SharedPhase2Kernel.publish(kernel)
        try:
            attached = pickle.loads(
                pickle.dumps(lease.handle, pickle.HIGHEST_PROTOCOL)
            ).attach()
            try:
                assert attached.num_nodes == kernel.num_nodes
                np.testing.assert_array_equal(
                    attached.intern(probe), kernel.intern(probe)
                )
                np.testing.assert_array_equal(
                    attached.feature_rows(probe), kernel.feature_rows(probe)
                )
            finally:
                attached.close()
        finally:
            lease.close()

    def test_phase2_handle_is_small(self):
        workload = make_workload("tiny", seed=0)
        kernel = Phase2Kernel.compile(
            workload.dataset.features, workload.dataset.interactions
        )
        with SharedPhase2Kernel.publish(kernel) as lease:
            assert handle_nbytes(lease.handle) < 4096


# -------------------------------------------------------- cost calibration
class TestTransportCalibration:
    def test_from_measurements_and_speedup(self):
        calibration = TransportCalibration.from_measurements(
            pickle_seconds=2.0,
            attach_seconds=0.01,
            publish_seconds=0.5,
            graph_bytes=10_000_000,
            handle_bytes=400,
        )
        assert calibration.attach_speedup == pytest.approx(200.0)
        assert calibration.worker_startup_seconds("pickle") == 2.0
        assert calibration.fleet_startup_seconds("pickle", 10) == 20.0
        assert calibration.fleet_startup_seconds("shm", 10) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ModelConfigError):
            TransportCalibration.from_measurements(-1.0, 0.1)
        with pytest.raises(ModelConfigError):
            TransportCalibration(1.0, 0.1, graph_bytes=-5).validate()
        with pytest.raises(ModelConfigError):
            TransportCalibration(1.0, 0.1).worker_startup_seconds("carrier")
        with pytest.raises(ModelConfigError):
            TransportCalibration(1.0, 0.1).fleet_startup_seconds("shm", 0)

    def test_cost_model_startup_projection(self):
        calibration = TransportCalibration.from_measurements(
            pickle_seconds=3.6, attach_seconds=0.036, publish_seconds=3.6
        )
        model = CostModel(transport=calibration)
        cluster = ClusterSpec(num_servers=10, cores_per_server=10)
        pickle_hours = model.startup_overhead_hours("pickle", cluster)
        shm_hours = model.startup_overhead_hours("shm", cluster)
        assert pickle_hours == pytest.approx(0.1)
        assert shm_hours == pytest.approx((0.036 * 100 + 3.6) / 3600.0)
        assert shm_hours < pickle_hours

    def test_cost_model_requires_calibration(self):
        with pytest.raises(ModelConfigError):
            CostModel().startup_overhead_hours("shm", ClusterSpec())

    @needs_shm
    def test_measure_transport_on_real_dataset(self):
        dataset = make_workload("tiny", seed=0).dataset
        calibration = measure_transport(dataset)
        calibration.validate()
        assert calibration.graph_bytes > calibration.handle_bytes > 0
        assert calibration.handle_bytes < 4096
