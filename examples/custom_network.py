"""Using LoCEC on your own network data (no synthetic generator involved).

Shows the full data path a downstream user follows:

1. build a :class:`repro.graph.Graph` from an edge list,
2. attach per-user features and per-edge interaction counts,
3. provide a handful of labeled edges,
4. fit LoCEC and inspect the local communities and edge predictions.

The tiny hand-written network below contains two families, one office and one
classmate circle around a shared user, so the predictions are easy to verify
by eye.

Run with::

    python examples/custom_network.py
"""

from __future__ import annotations

import itertools

from repro.core import LoCEC, LoCECConfig, divide_ego
from repro.graph import Graph, InteractionStore, NodeFeatureStore
from repro.types import InteractionDim, LabeledEdge, RelationType

# ----------------------------------------------------------------- build graph
FAMILY_A = ["alice", "bob", "carol"]
FAMILY_B = ["dave", "erin", "frank"]
OFFICE = ["alice", "dave", "grace", "heidi", "ivan", "judy"]
CLASSMATES = ["alice", "kate", "leo", "mallory", "nick"]

graph = Graph()
for circle in (FAMILY_A, FAMILY_B, OFFICE, CLASSMATES):
    for u, v in itertools.combinations(circle, 2):
        graph.add_edge(u, v)

# ------------------------------------------------------------------- features
features = NodeFeatureStore(["gender", "age_bucket", "tenure_years", "activity_level"])
for index, user in enumerate(sorted(graph.nodes())):
    features.set(user, [index % 2, 2 + index % 3, 3.0, 1.0])

# ---------------------------------------------------------------- interactions
interactions = InteractionStore()
for circle, dims in (
    (FAMILY_A, [InteractionDim.LIKE_PICTURE, InteractionDim.MESSAGE]),
    (FAMILY_B, [InteractionDim.LIKE_PICTURE, InteractionDim.COMMENT_PICTURE]),
    (OFFICE, [InteractionDim.LIKE_ARTICLE, InteractionDim.COMMENT_ARTICLE]),
    (CLASSMATES, [InteractionDim.LIKE_GAME, InteractionDim.COMMENT_GAME]),
):
    for u, v in itertools.combinations(circle, 2):
        for dim in dims:
            interactions.record(u, v, dim, 2)

# --------------------------------------------------------------- labeled edges
labeled = [
    LabeledEdge("alice", "bob", RelationType.FAMILY),
    LabeledEdge("alice", "carol", RelationType.FAMILY),
    LabeledEdge("dave", "erin", RelationType.FAMILY),
    LabeledEdge("alice", "grace", RelationType.COLLEAGUE),
    LabeledEdge("dave", "heidi", RelationType.COLLEAGUE),
    LabeledEdge("grace", "ivan", RelationType.COLLEAGUE),
    LabeledEdge("alice", "kate", RelationType.SCHOOLMATE),
    LabeledEdge("kate", "leo", RelationType.SCHOOLMATE),
    LabeledEdge("mallory", "nick", RelationType.SCHOOLMATE),
]


def main() -> None:
    print("Alice's ego network splits into these local communities:")
    for community in divide_ego(graph, "alice"):
        members = ", ".join(sorted(community.members))
        print(f"  community {community.index}: {{{members}}}")

    config = LoCECConfig.locec_xgb(seed=0)  # GBDT variant: fast on tiny data
    config.gbdt.num_rounds = 20
    pipeline = LoCEC(config)
    pipeline.fit(graph, features, interactions, labeled)

    print("\nPredicted relationship types for unlabeled edges:")
    queries = [
        ("bob", "carol"),        # family A internals
        ("erin", "frank"),       # family B internals
        ("heidi", "ivan"),       # office internals
        ("leo", "mallory"),      # classmates internals
        ("alice", "dave"),       # family member who is also a colleague
    ]
    for u, v in queries:
        label = pipeline.predict_edge(u, v)
        print(f"  ({u:<7} , {v:<7}) -> {label.display_name}")


if __name__ == "__main__":
    main()
