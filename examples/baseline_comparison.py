"""Compare every edge-classification method from the paper (Table IV / Figure 11).

Runs ProbWP, Economix, plain XGBoost, LoCEC-XGB and LoCEC-CNN on the same
synthetic survey sub-graph, first with the full training labels (the Table IV
protocol) and then with only 5 % of them (the left edge of Figure 11), which
is where label-propagation methods collapse while LoCEC keeps working.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.experiments.common import (
    EDGE_METHODS,
    evaluate_method,
    overall_f1,
)
from repro.synthetic import make_workload


def main() -> None:
    workload = make_workload("small", seed=0)
    print(
        f"network: {workload.dataset.num_users} users, "
        f"{workload.dataset.num_edges} edges, "
        f"{len(workload.train_edges)} training labels"
    )

    print("\n== Table IV protocol: all training labels ==")
    print(f"{'Algorithm':<12} {'Overall F1':>10}")
    full_scores: dict[str, float] = {}
    for method in EDGE_METHODS:
        report = evaluate_method(method, workload, seed=0)
        full_scores[method] = overall_f1(report)
        print(f"{method:<12} {full_scores[method]:>10.3f}")

    print("\n== Figure 11 left edge: only 5% of training labels ==")
    sparse_train = workload.subsample_train(0.05)
    print(f"({len(sparse_train)} training labels retained)")
    print(f"{'Algorithm':<12} {'Overall F1':>10}")
    for method in EDGE_METHODS:
        report = evaluate_method(method, workload, train_edges=sparse_train, seed=0)
        print(f"{method:<12} {overall_f1(report):>10.3f}")

    best = max(full_scores, key=full_scores.get)
    print(
        f"\nBest method with full labels: {best} "
        "(the paper reports LoCEC-CNN first, LoCEC-XGB a close second)."
    )


if __name__ == "__main__":
    main()
