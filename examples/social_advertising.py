"""Social advertising with relationship-aware targeting (the Figure 14 scenario).

Fits LoCEC-CNN on a synthetic network, then runs two ad campaigns — a
furniture ad and a mobile-game ad — comparing the paper's two targeting
policies under the same CTR scorer and response model:

* **Relation** — the friends of the advertiser's seed users with the highest
  CTR scores, regardless of relationship type.
* **LoCEC-CNN** — friends connected to a seed by the *affine* relationship
  type (family for furniture, schoolmates for games), scored the same way.

Run with::

    python examples/social_advertising.py
"""

from __future__ import annotations

import random

from repro.ads import AdCategory, AdSimulator, Campaign
from repro.core import LoCEC, LoCECConfig
from repro.synthetic import make_workload


def main() -> None:
    workload = make_workload("small", seed=2)
    dataset = workload.dataset

    print("fitting LoCEC-CNN to obtain relationship labels for every edge...")
    pipeline = LoCEC(LoCECConfig.locec_cnn(seed=2))
    pipeline.fit(
        dataset.graph,
        dataset.features,
        dataset.interactions,
        workload.train_edges,
    )
    edge_labels = pipeline.classify_network().edge_label_map()

    simulator = AdSimulator(dataset, edge_labels, seed=2)
    rng = random.Random(2)
    active_users = [
        node for node in dataset.graph.nodes() if dataset.graph.degree(node) >= 3
    ]

    print(f"\n{'Category':<12} {'Policy':<10} {'Click rate':>10} {'Interact rate':>14}")
    print("-" * 50)
    for category in (AdCategory.FURNITURE, AdCategory.MOBILE_GAME):
        campaign = Campaign(
            category=category,
            seeds=rng.sample(active_users, 40),
            audience_size=60,
        )
        outcomes = simulator.compare_policies(campaign)
        for policy in ("LoCEC-CNN", "Relation"):
            outcome = outcomes[policy]
            print(
                f"{category.value:<12} {policy:<10} "
                f"{outcome.click_rate:>9.2%} {outcome.interact_rate:>13.2%}"
            )
    print(
        "\nLoCEC targeting shows the larger relative gain on the interact rate, "
        "matching the paper's Figure 14."
    )


if __name__ == "__main__":
    main()
