"""Quickstart: classify the relationships of a synthetic WeChat-like network.

Generates a small synthetic social network with a survey-style labeled-edge
subset, fits the LoCEC-CNN pipeline, evaluates it on held-out edges (the
Table IV protocol) and prints a few example predictions.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import LoCEC, LoCECConfig
from repro.ml.metrics import format_report
from repro.synthetic import make_workload


def main() -> None:
    # A ~300-user synthetic network plus a simulated user survey, split 80/20.
    workload = make_workload("small", seed=0)
    dataset = workload.dataset
    print(
        f"network: {dataset.num_users} users, {dataset.num_edges} edges, "
        f"{len(workload.labeled_edges)} labeled edges "
        f"({workload.labeled_fraction:.0%} of all edges)"
    )
    print(f"interaction sparsity: {dataset.interaction_sparsity():.0%} of pairs are silent")

    # LoCEC-CNN: Girvan-Newman local communities + CommCNN + logistic regression.
    config = LoCECConfig.locec_cnn(seed=0)
    pipeline = LoCEC(config)
    pipeline.fit(
        dataset.graph,
        dataset.features,
        dataset.interactions,
        workload.train_edges,
    )
    summary = pipeline.fit_summary_
    print(
        f"\nPhase I found {summary.num_communities} local communities in "
        f"{summary.num_egos} ego networks "
        f"({summary.num_labeled_communities} of them carry a survey label)"
    )

    report = pipeline.evaluate(workload.test_edges)
    print("\nHeld-out edge classification (Table IV protocol):")
    print(format_report(report, "LoCEC-CNN"))

    print("\nExample predictions:")
    for item in workload.test_edges[:5]:
        predicted = pipeline.predict_edge(item.u, item.v)
        print(
            f"  edge ({item.u}, {item.v}): predicted={predicted.display_name:<15} "
            f"true={item.label.display_name}"
        )


if __name__ == "__main__":
    main()
