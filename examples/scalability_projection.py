"""Scalability study: from locally measured per-node costs to WeChat scale.

Reproduces the Table VI / Figure 12 methodology:

1. measure the three LoCEC phases on a real (synthetic) network on this
   machine,
2. calibrate the per-item cost model from those measurements,
3. project the run time of the full WeChat workload (10⁹ nodes, 1.4·10¹¹
   edges) on clusters of different sizes, and
4. print the paper-calibrated Table VI for comparison.

Run with::

    python examples/scalability_projection.py
"""

from __future__ import annotations

from repro.runtime import (
    ClusterSpec,
    CostModel,
    ScalabilityStudy,
    WorkloadSpec,
    measure_phases,
)
from repro.synthetic import make_workload


def main() -> None:
    workload = make_workload("small", seed=1)
    print("measuring per-phase costs on the local synthetic network ...")
    measured = measure_phases(workload.dataset, max_egos=150)
    print(
        f"  Phase I   {measured.phase1_seconds:7.2f}s over {measured.num_nodes} ego networks\n"
        f"  Phase II  {measured.phase2_seconds:7.2f}s over {measured.num_communities} communities\n"
        f"  Phase III {measured.phase3_seconds:7.2f}s over {measured.num_edges} edges"
    )

    local_model = CostModel(measured.to_calibration())
    wechat = WorkloadSpec()
    print("\nProjection to the full WeChat network (locally calibrated costs):")
    print(f"{'Servers':>8} {'Phase I (h)':>12} {'Phase II (h)':>13} {'Phase III (h)':>14} {'Total (h)':>10}")
    for servers in (50, 100, 200):
        estimate = local_model.estimate(
            wechat, ClusterSpec(num_servers=servers), include_training=False
        )
        print(
            f"{servers:>8} {estimate.phase1_hours:>12.1f} {estimate.phase2_hours:>13.1f} "
            f"{estimate.phase3_hours:>14.1f} {estimate.total_hours:>10.1f}"
        )

    print("\nTable VI with the paper-derived calibration (100 servers):")
    estimate = ScalabilityStudy().table6()
    for name, value in estimate.as_row().items():
        print(f"  {name:<10} {value:>6.1f} h")
    print(
        "\nNote how Phase I (local community detection) dominates in both "
        "calibrations — the same conclusion the paper draws."
    )


if __name__ == "__main__":
    main()
