"""Advertising campaigns and CTR scoring (the setting of Figure 14).

An advertiser provides a set of *seed users* known to be interested in the
product.  The platform selects an audience of the seeds' friends, shows the
ad in Moments, and measures the **click rate** (fraction of the audience who
click) and the **interact rate** (fraction who like/comment/reply — the
stronger signal the paper highlights).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.exceptions import DatasetError
from repro.types import Node, RelationType


class AdCategory(enum.Enum):
    """Ad verticals used in the paper's deployment study."""

    FURNITURE = "furniture"
    MOBILE_GAME = "mobile_game"

    @property
    def affine_relation(self) -> RelationType:
        """The relationship type whose social proof boosts this category.

        The paper: furniture ads resonate within families, mobile-game ads
        among schoolmates.
        """
        return {
            AdCategory.FURNITURE: RelationType.FAMILY,
            AdCategory.MOBILE_GAME: RelationType.SCHOOLMATE,
        }[self]


@dataclass
class Campaign:
    """One advertising campaign."""

    category: AdCategory
    seeds: list[Node]
    audience_size: int

    def validate(self) -> None:
        if not self.seeds:
            raise DatasetError("a campaign needs at least one seed user")
        if self.audience_size < 1:
            raise DatasetError("audience_size must be positive")


@dataclass
class CtrModel:
    """A simple user-level click-through-rate scoring function.

    The score combines the user's base activity with a per-category interest
    drawn once per user; it deliberately knows nothing about relationships,
    because in the paper both targeting policies share the *same* CTR scorer
    and differ only in the candidate pool.
    """

    base_rates: dict[AdCategory, float] = field(
        default_factory=lambda: {
            AdCategory.FURNITURE: 0.012,
            AdCategory.MOBILE_GAME: 0.02,
        }
    )
    seed: int = 0
    _interest_cache: dict[tuple[AdCategory, Node], float] = field(
        default_factory=dict, repr=False
    )

    def interest(self, category: AdCategory, user: Node) -> float:
        """Latent interest of ``user`` in ``category`` (stable per user)."""
        key = (category, user)
        if key not in self._interest_cache:
            rng = random.Random((hash(key) ^ self.seed) & 0xFFFFFFFF)
            self._interest_cache[key] = rng.betavariate(2.0, 5.0)
        return self._interest_cache[key]

    def score(self, category: AdCategory, user: Node, activity_level: float = 1.0) -> float:
        """CTR score used for audience ranking."""
        return self.base_rates[category] * (0.5 + self.interest(category, user)) * (
            0.5 + min(activity_level, 3.0) / 2.0
        )
