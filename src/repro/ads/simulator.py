"""Ad-response simulator comparing LoCEC-CNN targeting against the Relation baseline.

The simulator implements the behavioural facts the paper states:

* users are more likely to click a furniture ad when a *family member* (a
  seed) engaged with it, and a mobile-game ad when a *schoolmate* did;
* interactions (likes/comments/replies under the ad) amplify the same effect
  even more strongly, which is why the relative gain of LoCEC targeting is
  larger on interact rate than on click rate (Figure 14b vs 14a).

Both targeting policies share the same CTR scorer and the same response
model; only the audience-selection rule differs, exactly as in the paper's
A/B comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ads.campaign import AdCategory, Campaign, CtrModel
from repro.baselines.relation_targeting import relation_targeting, type_aware_targeting
from repro.synthetic.network import SocialNetworkDataset
from repro.types import Edge, Node, RelationType, canonical_edge


@dataclass
class CampaignOutcome:
    """Click/interact rates of one policy on one campaign.

    ``clicks`` and ``interactions`` are *expected* counts under the response
    model (sums of per-user probabilities), which makes small-audience
    comparisons deterministic and noise-free while preserving the rates the
    paper reports.
    """

    policy: str
    category: AdCategory
    audience_size: int
    clicks: float
    interactions: float

    @property
    def click_rate(self) -> float:
        return self.clicks / self.audience_size if self.audience_size else 0.0

    @property
    def interact_rate(self) -> float:
        return self.interactions / self.audience_size if self.audience_size else 0.0


class AdSimulator:
    """Simulates ad delivery and user response on a synthetic network.

    Parameters
    ----------
    dataset:
        The social network (graph + profiles) the ads run on.
    edge_labels:
        Relationship labels used by the type-aware policy — in production
        these are LoCEC-CNN's predictions; tests may pass ground truth to
        bound the achievable lift.
    ctr_model:
        Shared CTR scorer.
    seed:
        Seed of the response randomness.
    """

    #: Multiplier applied to the click probability when a same-type (affine)
    #: seed friend has engaged with the ad.
    SOCIAL_PROOF_CLICK_BOOST = 2.4
    #: Multiplier applied to the interact probability in the same situation;
    #: larger than the click boost, per the paper's Figure 14 discussion.
    SOCIAL_PROOF_INTERACT_BOOST = 3.5
    #: Base probability that a clicking user also interacts (likes/comments).
    BASE_INTERACT_GIVEN_CLICK = 0.22

    def __init__(
        self,
        dataset: SocialNetworkDataset,
        edge_labels: dict[Edge, RelationType],
        ctr_model: CtrModel | None = None,
        seed: int = 0,
    ) -> None:
        self.dataset = dataset
        self.edge_labels = edge_labels
        self.ctr_model = ctr_model or CtrModel(seed=seed)
        self.seed = seed

    # ------------------------------------------------------------------ policies
    def _activity(self, user: Node) -> float:
        profile = self.dataset.profiles.get(user)
        return profile.activity_level if profile is not None else 1.0

    def _scorer(self, category: AdCategory):
        return lambda user: self.ctr_model.score(category, user, self._activity(user))

    def select_relation_audience(self, campaign: Campaign) -> list[Node]:
        """The Relation baseline audience (top-CTR friends of seeds)."""
        campaign.validate()
        return relation_targeting(
            self.dataset.graph,
            campaign.seeds,
            self._scorer(campaign.category),
            campaign.audience_size,
        )

    def select_locec_audience(self, campaign: Campaign) -> list[Node]:
        """The LoCEC-CNN audience (type-matching friends of seeds, same scorer)."""
        campaign.validate()
        return type_aware_targeting(
            self.dataset.graph,
            campaign.seeds,
            self._scorer(campaign.category),
            campaign.audience_size,
            edge_labels=self.edge_labels,
            target_type=campaign.category.affine_relation,
        )

    # ------------------------------------------------------------------ response
    def simulate(self, campaign: Campaign, audience: list[Node], policy: str) -> CampaignOutcome:
        """Compute the expected clicks and interactions for an audience.

        The response model is evaluated in expectation (per-user probabilities
        are summed) so that two policies on the same audience sizes compare
        deterministically even for small synthetic audiences.
        """
        affine = campaign.category.affine_relation
        seeds = set(campaign.seeds)
        clicks = 0.0
        interactions = 0.0
        for user in audience:
            base_ctr = self.ctr_model.score(campaign.category, user, self._activity(user))
            has_affine_seed_friend = self._has_affine_seed_friend(user, seeds, affine)
            click_prob = min(
                base_ctr
                * (self.SOCIAL_PROOF_CLICK_BOOST if has_affine_seed_friend else 1.0),
                0.95,
            )
            interact_prob = min(
                self.BASE_INTERACT_GIVEN_CLICK
                * (self.SOCIAL_PROOF_INTERACT_BOOST if has_affine_seed_friend else 1.0),
                0.95,
            )
            clicks += click_prob
            interactions += click_prob * interact_prob
        return CampaignOutcome(
            policy=policy,
            category=campaign.category,
            audience_size=len(audience),
            clicks=clicks,
            interactions=interactions,
        )

    def _has_affine_seed_friend(
        self, user: Node, seeds: set[Node], affine: RelationType
    ) -> bool:
        graph = self.dataset.graph
        if user not in graph:
            return False
        for friend in graph.neighbors(user):
            if friend not in seeds:
                continue
            true_label = self.dataset.edge_types.get(canonical_edge(user, friend))
            if true_label == affine:
                return True
        return False

    # ------------------------------------------------------------------ A/B study
    def compare_policies(self, campaign: Campaign) -> dict[str, CampaignOutcome]:
        """Run both targeting policies on the same campaign (Figure 14)."""
        relation_audience = self.select_relation_audience(campaign)
        locec_audience = self.select_locec_audience(campaign)
        return {
            "Relation": self.simulate(campaign, relation_audience, "Relation"),
            "LoCEC-CNN": self.simulate(campaign, locec_audience, "LoCEC-CNN"),
        }
