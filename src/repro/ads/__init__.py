"""Social-advertising application of LoCEC's edge labels (Figure 14)."""

from repro.ads.campaign import AdCategory, Campaign, CtrModel
from repro.ads.simulator import AdSimulator, CampaignOutcome

__all__ = [
    "AdCategory",
    "Campaign",
    "CtrModel",
    "AdSimulator",
    "CampaignOutcome",
]
