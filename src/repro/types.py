"""Shared domain types for the LoCEC reproduction.

The paper classifies WeChat relationships into three *major* first-category
types (family members, colleagues, schoolmates); a fourth catch-all bucket
("others") exists in the survey but is excluded from classification.  The
survey additionally records thirteen second-category sub-types (Table I).

This module defines those label spaces, the canonical interaction dimensions
used throughout the reproduction, and small typed containers shared by the
graph substrate, the synthetic generator and the LoCEC pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Sequence

Node = Hashable
Edge = tuple[Node, Node]


class RelationType(enum.IntEnum):
    """First-category relationship types used for classification.

    The integer values double as class indices for every classifier in the
    library, so the ordering here is load-bearing: ``FAMILY`` is class 0,
    ``COLLEAGUE`` class 1 and ``SCHOOLMATE`` class 2.  ``OTHER`` exists only
    for survey bookkeeping and is never a prediction target.
    """

    FAMILY = 0
    COLLEAGUE = 1
    SCHOOLMATE = 2
    OTHER = 3

    @classmethod
    def classification_targets(cls) -> tuple["RelationType", ...]:
        """The three major types the paper classifies edges into."""
        return (cls.FAMILY, cls.COLLEAGUE, cls.SCHOOLMATE)

    @property
    def display_name(self) -> str:
        """Human-readable name matching the paper's tables."""
        return _DISPLAY_NAMES[self]


_DISPLAY_NAMES = {
    RelationType.FAMILY: "Family Members",
    RelationType.COLLEAGUE: "Colleague",
    RelationType.SCHOOLMATE: "Schoolmates",
    RelationType.OTHER: "Others",
}


class SecondCategory(enum.Enum):
    """Second-category sub-types from Table I of the paper."""

    # Family members
    NEXT_OF_KIN = "next_of_kin"
    KIN = "kin"
    IN_LAW = "in_law"
    FAMILY_UNKNOWN = "family_unknown"
    # Colleagues
    CURRENT_COLLEAGUE = "current_colleague"
    PAST_COLLEAGUE = "past_colleague"
    COLLEAGUE_UNKNOWN = "colleague_unknown"
    # Schoolmates
    PRIMARY_SCHOOL = "primary_school"
    MIDDLE_SCHOOL = "middle_school"
    UNIVERSITY = "university"
    GRADUATE_SCHOOL = "graduate_school"
    SCHOOL_UNKNOWN = "school_unknown"
    # Others
    INTEREST = "interest"
    BUSINESS = "business"
    AGENT = "agent"
    PRIVATE = "private"
    OTHER_UNKNOWN = "other_unknown"

    @property
    def first_category(self) -> RelationType:
        """Map a second-category sub-type back to its first category."""
        return _SECOND_TO_FIRST[self]


_SECOND_TO_FIRST = {
    SecondCategory.NEXT_OF_KIN: RelationType.FAMILY,
    SecondCategory.KIN: RelationType.FAMILY,
    SecondCategory.IN_LAW: RelationType.FAMILY,
    SecondCategory.FAMILY_UNKNOWN: RelationType.FAMILY,
    SecondCategory.CURRENT_COLLEAGUE: RelationType.COLLEAGUE,
    SecondCategory.PAST_COLLEAGUE: RelationType.COLLEAGUE,
    SecondCategory.COLLEAGUE_UNKNOWN: RelationType.COLLEAGUE,
    SecondCategory.PRIMARY_SCHOOL: RelationType.SCHOOLMATE,
    SecondCategory.MIDDLE_SCHOOL: RelationType.SCHOOLMATE,
    SecondCategory.UNIVERSITY: RelationType.SCHOOLMATE,
    SecondCategory.GRADUATE_SCHOOL: RelationType.SCHOOLMATE,
    SecondCategory.SCHOOL_UNKNOWN: RelationType.SCHOOLMATE,
    SecondCategory.INTEREST: RelationType.OTHER,
    SecondCategory.BUSINESS: RelationType.OTHER,
    SecondCategory.AGENT: RelationType.OTHER,
    SecondCategory.PRIVATE: RelationType.OTHER,
    SecondCategory.OTHER_UNKNOWN: RelationType.OTHER,
}


class InteractionDim(enum.IntEnum):
    """Interaction dimensions observed between user pairs.

    These mirror the behaviours the paper analyses in Section II: instant
    messaging plus liking/commenting under the three Moments post categories
    (pictures, articles, games).  The integer value is the column index of
    the dimension inside :class:`repro.graph.InteractionStore`.
    """

    MESSAGE = 0
    LIKE_PICTURE = 1
    LIKE_ARTICLE = 2
    LIKE_GAME = 3
    COMMENT_PICTURE = 4
    COMMENT_ARTICLE = 5
    COMMENT_GAME = 6

    @classmethod
    def count(cls) -> int:
        """Number of interaction dimensions (the paper's ``|I|``)."""
        return len(cls)

    @classmethod
    def moments_dims(cls) -> tuple["InteractionDim", ...]:
        """The Moments-related dimensions (everything except messaging)."""
        return (
            cls.LIKE_PICTURE,
            cls.LIKE_ARTICLE,
            cls.LIKE_GAME,
            cls.COMMENT_PICTURE,
            cls.COMMENT_ARTICLE,
            cls.COMMENT_GAME,
        )


class MomentsCategory(enum.Enum):
    """Moments post categories analysed in Figure 3 of the paper."""

    PICTURE = "picture"
    ARTICLE = "article"
    GAME = "game"

    @property
    def like_dim(self) -> InteractionDim:
        return {
            MomentsCategory.PICTURE: InteractionDim.LIKE_PICTURE,
            MomentsCategory.ARTICLE: InteractionDim.LIKE_ARTICLE,
            MomentsCategory.GAME: InteractionDim.LIKE_GAME,
        }[self]

    @property
    def comment_dim(self) -> InteractionDim:
        return {
            MomentsCategory.PICTURE: InteractionDim.COMMENT_PICTURE,
            MomentsCategory.ARTICLE: InteractionDim.COMMENT_ARTICLE,
            MomentsCategory.GAME: InteractionDim.COMMENT_GAME,
        }[self]


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical (sorted) representation of an undirected edge.

    The graph is undirected, so ``(u, v)`` and ``(v, u)`` denote the same
    relationship.  Every map keyed by edges in the library uses this
    canonical form.
    """
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True)
class LabeledEdge:
    """A ground-truth labeled relationship, as collected by the user survey."""

    u: Node
    v: Node
    label: RelationType
    second_category: SecondCategory | None = None

    @property
    def edge(self) -> Edge:
        return canonical_edge(self.u, self.v)


@dataclass
class ClassificationReport:
    """Per-class and overall precision/recall/F1, as in Tables IV and V."""

    per_class: dict[RelationType, "PRF"] = field(default_factory=dict)
    overall: "PRF | None" = None

    def row(self, label: RelationType) -> "PRF":
        return self.per_class[label]

    def as_rows(self) -> list[tuple[str, float, float, float]]:
        """Rows in the paper's table order: colleague, family, schoolmate, overall."""
        order = (
            RelationType.COLLEAGUE,
            RelationType.FAMILY,
            RelationType.SCHOOLMATE,
        )
        rows = [
            (
                label.display_name,
                self.per_class[label].precision,
                self.per_class[label].recall,
                self.per_class[label].f1,
            )
            for label in order
            if label in self.per_class
        ]
        if self.overall is not None:
            rows.append(
                ("Overall", self.overall.precision, self.overall.recall, self.overall.f1)
            )
        return rows


@dataclass(frozen=True)
class PRF:
    """A (precision, recall, F1) triple."""

    precision: float
    recall: float
    f1: float

    @classmethod
    def from_counts(cls, tp: int, fp: int, fn: int) -> "PRF":
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return cls(precision=precision, recall=recall, f1=f1)


@dataclass(frozen=True)
class CommunityLabel:
    """Ground-truth label of a local community (majority vote of member edges)."""

    ego: Node
    members: tuple[Node, ...]
    label: RelationType


DEFAULT_FEATURE_NAMES: Sequence[str] = (
    "gender",
    "age_bucket",
    "tenure_years",
    "activity_level",
)
"""Default individual (profile) feature names used by the synthetic generator."""
