"""Command-line interface for the LoCEC reproduction.

The subcommands cover the common workflows without writing any Python:

* ``locec-repro list`` — list the available paper experiments.
* ``locec-repro run table4 --scale small --seed 0`` — regenerate one paper
  table/figure and print it.
* ``locec-repro generate /tmp/network.json --scale small`` — generate a
  synthetic WeChat-like dataset (graph + features + interactions + survey
  labels) and save it as a JSON bundle loadable with
  :func:`repro.graph.load_dataset_json`.
* ``locec-repro chaos --scale tiny --fault-rate 0.3`` — chaos knob: run the
  sharded Phase I executor under a seeded fault-injection schedule
  (transient errors, timeouts, simulated worker kills) and exit non-zero
  unless the merged division is bit-identical to a clean run.
* ``locec-repro serve-replay --scale tiny --fault-rate 0.3`` — serving
  smoke: fit a pipeline, open a :class:`repro.serve.ServingSession` and
  replay synthetic update + query traffic (optionally under injected
  re-division faults); prints sustained QPS and latency percentiles and
  exits non-zero if any query goes unanswered or an update degrades when
  the fault schedule guarantees recovery.
* ``locec-repro lint`` — run the repo-native invariant lint engine
  (:mod:`repro.lint`): determinism, backend-parity coverage,
  multiprocessing safety and NumPy hygiene rules; exits non-zero on any
  finding.

The CLI is also reachable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.registry import get_experiment, list_experiments
from repro.graph.io import save_dataset_json
from repro.synthetic import make_workload


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="locec-repro",
        description="Reproduction of LoCEC (ICDE 2020): experiments and dataset generation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available paper experiments")

    run_parser = subparsers.add_parser("run", help="run one paper experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id, e.g. table4 or fig11")
    run_parser.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "medium", "large"],
        help="synthetic workload size (default: small)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")

    generate_parser = subparsers.add_parser(
        "generate", help="generate a synthetic dataset and save it as JSON"
    )
    generate_parser.add_argument("output", help="path of the JSON file to write")
    generate_parser.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "medium", "large"],
        help="synthetic workload size (default: small)",
    )
    generate_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run the sharded Phase I executor under seeded fault injection "
        "and verify the merged result matches a clean run",
    )
    chaos_parser.add_argument(
        "--scale",
        default="tiny",
        choices=["tiny", "small", "medium", "large"],
        help="synthetic workload size (default: tiny)",
    )
    chaos_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    chaos_parser.add_argument(
        "--shards", type=int, default=4, help="number of shards (default: 4)"
    )
    chaos_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; 1 = serial fault simulation (default: 1)",
    )
    chaos_parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.25,
        help="per-attempt fault probability in [0, 1] (default: 0.25)",
    )
    chaos_parser.add_argument(
        "--mode",
        default="skip",
        choices=["raise", "skip", "serial_fallback"],
        help="on_shard_failure mode (default: skip)",
    )
    chaos_parser.add_argument(
        "--max-egos",
        type=int,
        default=80,
        help="limit Phase I to the first N egos (default: 80)",
    )
    chaos_parser.add_argument(
        "--transport",
        default="auto",
        choices=["auto", "pickle", "shm"],
        help="graph transport to pool workers (default: auto)",
    )
    chaos_parser.add_argument(
        "--phase2-workers",
        type=int,
        default=0,
        help="also chaos-test sharded Phase II aggregation with this many "
        "workers; 0 = Phase I only (default: 0)",
    )

    serve_parser = subparsers.add_parser(
        "serve-replay",
        help="fit a pipeline, open a ServingSession and replay synthetic "
        "update + query traffic; reports sustained QPS and latency "
        "percentiles and exits non-zero if serving degrades unexpectedly",
    )
    serve_parser.add_argument(
        "--scale",
        default="tiny",
        choices=["tiny", "small", "medium", "large"],
        help="synthetic workload size (default: tiny)",
    )
    serve_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    serve_parser.add_argument(
        "--batches", type=int, default=12, help="query batches to replay (default: 12)"
    )
    serve_parser.add_argument(
        "--queries-per-batch",
        type=int,
        default=32,
        help="edge queries per batch (default: 32)",
    )
    serve_parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-attempt fault probability injected into update re-divisions; "
        "0 = fault-free replay (default: 0.0)",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="run the invariant lint engine (repro.lint) over the repository",
    )
    lint_parser.add_argument(
        "--root",
        default=None,
        help="repository root to lint (default: auto-detected)",
    )
    lint_parser.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=["text", "json"],
        help="report format (default: text)",
    )
    lint_parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _command_list() -> int:
    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _command_run(experiment_id: str, scale: str, seed: int) -> int:
    run = get_experiment(experiment_id)
    # Scale-independent experiments (cost-model projections) ignore these kwargs.
    if experiment_id in {"table6", "fig12"}:
        result = run()
    else:
        result = run(scale=scale, seed=seed)
    print(result.to_text())
    return 0


def _command_generate(output: str, scale: str, seed: int) -> int:
    workload = make_workload(scale=scale, seed=seed)
    dataset = workload.dataset
    save_dataset_json(
        output,
        dataset.graph,
        features=dataset.features,
        interactions=dataset.interactions,
        labels=workload.labeled_edges,
    )
    print(
        f"wrote {output}: {dataset.num_users} users, {dataset.num_edges} edges, "
        f"{len(workload.labeled_edges)} labeled edges"
    )
    return 0


def _command_chaos(
    scale: str,
    seed: int,
    shards: int,
    workers: int,
    fault_rate: float,
    mode: str,
    max_egos: int,
    transport: str,
    phase2_workers: int,
) -> int:
    from repro.runtime import run_chaos

    workload = make_workload(scale=scale, seed=seed)
    report = run_chaos(
        workload.dataset,
        num_shards=shards,
        num_workers=workers,
        fault_rate=fault_rate,
        seed=seed,
        max_egos=max_egos,
        on_shard_failure=mode,
        transport=transport,
        phase2_workers=phase2_workers,
    )
    print(report.to_text())
    # The chaos gate: a fault schedule that eventually succeeds must yield
    # a merged division bit-identical to the clean run — and, when the
    # Phase II leg ran, sharded aggregation bit-identical to the serial
    # kernel.
    passed = report.identical_to_clean and not report.failed_shards
    if report.phase2_identical is not None:
        passed = passed and report.phase2_identical
    return 0 if passed else 1


def _command_serve_replay(
    scale: str,
    seed: int,
    batches: int,
    queries_per_batch: int,
    fault_rate: float,
) -> int:
    from repro.core.config import LoCECConfig
    from repro.core.pipeline import LoCEC
    from repro.runtime import FaultPlan
    from repro.serve import ServingSession, replay_traffic

    workload = make_workload(scale=scale, seed=seed)
    config = LoCECConfig.locec_xgb(seed=seed)
    config.gbdt.num_rounds = 10
    pipeline = LoCEC(config)
    pipeline.fit(
        workload.dataset.graph,
        features=workload.dataset.features,
        interactions=workload.dataset.interactions,
        labeled_edges=workload.train_edges,
        division=workload.division(),
    )
    # FaultPlan.random only injects recoverable faults (each shard's final
    # attempt is clean), so even a chaos replay must end with zero stale
    # egos — staleness here would mean the retry envelope leaked.
    fault_plan = (
        FaultPlan.random(range(4), seed=seed, fault_rate=fault_rate)
        if fault_rate > 0.0
        else None
    )
    with ServingSession(pipeline) as session:
        report = replay_traffic(
            session,
            num_batches=batches,
            queries_per_batch=queries_per_batch,
            seed=seed,
            fault_plan=fault_plan,
        )
    for key, value in report.as_dict().items():
        print(f"{key}: {value:.6g}")
    for name, latency in (
        ("query", report.query_latency),
        ("update", report.update_latency),
    ):
        for stat, value in latency.items():
            print(f"{name}_latency_{stat}: {value:.6g}")
    passed = (
        report.num_queries == batches * queries_per_batch
        and report.sustained_qps > 0.0
        and not report.stale_egos
        and report.num_degraded_updates == 0
    )
    return 0 if passed else 1


def _command_lint(
    root: str | None, output_format: str, rules: str | None, list_rules: bool
) -> int:
    from repro.lint.engine import main as lint_main

    argv: list[str] = []
    if list_rules:
        argv.append("--list-rules")
    if root is not None:
        argv.extend(["--root", root])
    argv.extend(["--format", output_format])
    if rules:
        argv.extend(["--rules", rules])
    return lint_main(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args.experiment, args.scale, args.seed)
    if args.command == "generate":
        return _command_generate(args.output, args.scale, args.seed)
    if args.command == "lint":
        return _command_lint(
            args.root, args.output_format, args.rules, args.list_rules
        )
    if args.command == "serve-replay":
        return _command_serve_replay(
            args.scale,
            args.seed,
            args.batches,
            args.queries_per_batch,
            args.fault_rate,
        )
    if args.command == "chaos":
        return _command_chaos(
            args.scale,
            args.seed,
            args.shards,
            args.workers,
            args.fault_rate,
            args.mode,
            args.max_egos,
            args.transport,
            args.phase2_workers,
        )
    return 2  # pragma: no cover - argparse enforces the choices above


if __name__ == "__main__":
    sys.exit(main())
