"""Command-line interface for the LoCEC reproduction.

Three subcommands cover the common workflows without writing any Python:

* ``locec-repro list`` — list the available paper experiments.
* ``locec-repro run table4 --scale small --seed 0`` — regenerate one paper
  table/figure and print it.
* ``locec-repro generate /tmp/network.json --scale small`` — generate a
  synthetic WeChat-like dataset (graph + features + interactions + survey
  labels) and save it as a JSON bundle loadable with
  :func:`repro.graph.load_dataset_json`.

The CLI is also reachable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.registry import get_experiment, list_experiments
from repro.graph.io import save_dataset_json
from repro.synthetic import make_workload


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="locec-repro",
        description="Reproduction of LoCEC (ICDE 2020): experiments and dataset generation.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available paper experiments")

    run_parser = subparsers.add_parser("run", help="run one paper experiment and print its table")
    run_parser.add_argument("experiment", help="experiment id, e.g. table4 or fig11")
    run_parser.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "medium", "large"],
        help="synthetic workload size (default: small)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")

    generate_parser = subparsers.add_parser(
        "generate", help="generate a synthetic dataset and save it as JSON"
    )
    generate_parser.add_argument("output", help="path of the JSON file to write")
    generate_parser.add_argument(
        "--scale",
        default="small",
        choices=["tiny", "small", "medium", "large"],
        help="synthetic workload size (default: small)",
    )
    generate_parser.add_argument("--seed", type=int, default=0, help="random seed (default: 0)")
    return parser


def _command_list() -> int:
    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _command_run(experiment_id: str, scale: str, seed: int) -> int:
    run = get_experiment(experiment_id)
    # Scale-independent experiments (cost-model projections) ignore these kwargs.
    if experiment_id in {"table6", "fig12"}:
        result = run()
    else:
        result = run(scale=scale, seed=seed)
    print(result.to_text())
    return 0


def _command_generate(output: str, scale: str, seed: int) -> int:
    workload = make_workload(scale=scale, seed=seed)
    dataset = workload.dataset
    save_dataset_json(
        output,
        dataset.graph,
        features=dataset.features,
        interactions=dataset.interactions,
        labels=workload.labeled_edges,
    )
    print(
        f"wrote {output}: {dataset.num_users} users, {dataset.num_edges} edges, "
        f"{len(workload.labeled_edges)} labeled edges"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args.experiment, args.scale, args.seed)
    if args.command == "generate":
        return _command_generate(args.output, args.scale, args.seed)
    return 2  # pragma: no cover - argparse enforces the choices above


if __name__ == "__main__":
    sys.exit(main())
