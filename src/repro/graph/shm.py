"""Zero-copy shared-memory transport for CSR graphs and Phase II kernels.

The sharded runtime historically shipped the *entire* graph to every worker
by pickle (``executor._init_worker``), making worker startup O(graph) in both
time and RAM — ``num_workers + 1`` full copies resident at once.  This module
makes the CSR arrays themselves the wire format:

* :meth:`SharedCSRGraph.publish` copies a :class:`CSRGraph`'s arrays into
  POSIX shared-memory segments **once** and returns a :class:`ShmLease` — the
  owner object whose :meth:`ShmLease.close` guarantees ``close()``/``unlink()``
  of every segment (context-manager friendly, idempotent).
* The lease's :class:`ShmHandle` pickles as segment names + dtypes + shapes —
  a few hundred bytes regardless of graph scale — and
  :meth:`ShmHandle.attach` maps the segments back into a fully functional
  :class:`CSRGraph` subclass with **zero** edge-array copies.
* :meth:`SharedPhase2Kernel.publish` / :class:`Phase2ShmHandle` do the same
  for the compiled Phase II state (interaction CSR + dense feature matrix),
  so sharded feature aggregation is attach + slice.

Ordering parity: a published graph also ships the permutation produced by
:func:`repro.graph.csr.neighbor_order_array`, so an attached graph — which
has no ``_source`` dict graph to mirror — still emits communities in the
dict backend's set-iteration order.  That is what keeps the PR 6 invariant
(*any transport merges bit-identical to the clean serial run*) intact.

Lifecycle rules (enforced by lint rule ``MP003``): segments are acquired
only inside ``with`` blocks or ``try`` statements whose cleanup path calls
``close()`` (plus ``unlink()`` for creators).  Attachers additionally
unregister from :mod:`multiprocessing.resource_tracker`: attachment is a
*borrow* — if a worker dies, its tracker must not unlink segments the owner
is still serving to the rest of the pool.
"""

from __future__ import annotations

import pickle
import sys
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.graph.csr import CSRGraph, neighbor_order_array
from repro.graph.phase2 import InteractionMatrix, NodeFeatureMatrix, Phase2Kernel
from repro.types import Node

__all__ = [
    "ShmHandle",
    "ShmLease",
    "SharedCSRGraph",
    "Phase2ShmHandle",
    "SharedPhase2Kernel",
    "shm_supported",
    "handle_nbytes",
]


def shm_supported() -> bool:
    """True when POSIX shared memory is usable on this platform."""
    return sys.platform not in ("emscripten", "wasi", "cloudabi")


def handle_nbytes(handle: object) -> int:
    """Pickled size of a transport handle — the per-worker wire payload."""
    return len(pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL))


# ---------------------------------------------------------------- helpers
def _encode_node_labels(nodes: Sequence[Node]) -> tuple[np.ndarray, str]:
    """Node labels as a flat array plus the encoding used.

    All-int label sets take the fast path (an ``int64`` column attachers read
    directly); anything else rides as a pickled blob in a ``uint8`` segment.
    Either way the *handle* stays O(1) — label bytes live in the segment.
    """
    if all(type(node) is int for node in nodes):
        try:
            return np.asarray(nodes, dtype=np.int64), "int64"
        except OverflowError:
            pass
    payload = pickle.dumps(list(nodes), protocol=pickle.HIGHEST_PROTOCOL)
    return np.frombuffer(payload, dtype=np.uint8), "pickle"


def _decode_node_labels(array: np.ndarray, encoding: str) -> list[Node]:
    if encoding == "int64":
        return list(array.tolist())
    return list(pickle.loads(array.tobytes()))


_OWNED_NAMES: set[str] = set()
"""Segment names published (and therefore owned) by *this* process.

Attaching a segment you own must leave the resource tracker alone — the
owner's registration is what guarantees cleanup if the process dies before
its lease unlinks.  Only foreign attachments (workers under ``spawn``, whose
private tracker would otherwise unlink the owner's segments when the worker
exits) get unregistered.
"""


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Stop this process's resource tracker from unlinking ``segment``.

    ``SharedMemory(name=...)`` registers with the per-process tracker, which
    unlinks everything it knows about when the process dies — so a crashed
    worker would tear segments out from under the owner and its siblings.
    Ownership stays with the :class:`ShmLease`; 3.13's ``track=False`` does
    this natively, 3.11 needs the explicit unregister.
    """
    if segment.name in _OWNED_NAMES:
        return
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker internals vary by platform
        pass


def _release_segments(
    segments: Sequence[shared_memory.SharedMemory], *, unlink: bool
) -> None:
    """Close (and optionally unlink) segments, swallowing already-gone races."""
    for segment in segments:
        try:
            segment.close()
        except BufferError:
            # A caller still holds a live view; the mapping lasts until the
            # process exits, but the name can still be unlinked below.
            pass
        if unlink:
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------- handles
@dataclass(frozen=True)
class _SegmentSpec:
    """One published array: where it lives and how to view it."""

    role: str
    name: str
    dtype: str
    shape: tuple[int, ...]


def _publish_arrays(
    arrays: dict[str, np.ndarray],
) -> tuple[tuple[_SegmentSpec, ...], list[shared_memory.SharedMemory]]:
    """Copy each array into a fresh segment; all-or-nothing on failure."""
    segments: list[shared_memory.SharedMemory] = []
    specs: list[_SegmentSpec] = []
    try:
        for role, array in arrays.items():
            contiguous = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(
                create=True, size=max(1, int(contiguous.nbytes))
            )
            segments.append(segment)
            view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)
            view[...] = contiguous
            del view
            specs.append(
                _SegmentSpec(
                    role=role,
                    name=segment.name,
                    dtype=str(contiguous.dtype),
                    shape=tuple(int(dim) for dim in contiguous.shape),
                )
            )
    except BaseException:
        _release_segments(segments, unlink=True)
        raise
    _OWNED_NAMES.update(segment.name for segment in segments)
    return tuple(specs), segments


def _attach_arrays(
    specs: Sequence[_SegmentSpec],
) -> tuple[dict[str, np.ndarray], list[shared_memory.SharedMemory]]:
    """Map every segment of a handle read-only; all-or-nothing on failure."""
    segments: list[shared_memory.SharedMemory] = []
    arrays: dict[str, np.ndarray] = {}
    try:
        for spec in specs:
            segment = shared_memory.SharedMemory(name=spec.name)
            segments.append(segment)
            _untrack(segment)
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
            view.flags.writeable = False
            arrays[spec.role] = view
    except BaseException:
        _release_segments(segments, unlink=False)
        raise
    return arrays, segments


@dataclass(frozen=True)
class ShmHandle:
    """Picklable pointer to a published :class:`CSRGraph`.

    A handle is a few hundred bytes regardless of graph scale (asserted at
    < 4 KiB by the transport test suite): segment names, dtypes, shapes and
    the label encoding.  :meth:`attach` maps the arrays back zero-copy.
    """

    segments: tuple[_SegmentSpec, ...]
    label_encoding: str
    spill_identity: str | None = None

    def attach(self) -> "SharedCSRGraph":
        """Map the published arrays into this process as a live CSR graph."""
        arrays, segments = _attach_arrays(self.segments)
        try:
            nodes = _decode_node_labels(arrays["nodes"], self.label_encoding)
            graph = SharedCSRGraph(
                arrays["indptr"], arrays["indices"], nodes, segments=segments
            )
            order = arrays.get("order")
            if order is not None:
                graph._neighbor_order = order
            graph.spill_identity = self.spill_identity
        except BaseException:
            _release_segments(segments, unlink=False)
            raise
        return graph

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.segments)

    @property
    def segment_nbytes(self) -> int:
        """Total payload held in shared memory (what pickle would re-ship
        per worker)."""
        total = 0
        for spec in self.segments:
            count = 1
            for dim in spec.shape:
                count *= dim
            total += count * np.dtype(spec.dtype).itemsize
        return total


class SharedCSRGraph(CSRGraph):
    """A :class:`CSRGraph` whose arrays live in shared-memory segments.

    Instances come from :meth:`ShmHandle.attach`; they borrow the segments
    (the publishing :class:`ShmLease` owns unlink) and release their
    mappings via :meth:`close` — also usable as a context manager.
    """

    __slots__ = ("_segments", "_closed")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        nodes: list[Node],
        segments: list[shared_memory.SharedMemory],
    ) -> None:
        super().__init__(indptr, indices, nodes, source=None)
        self._segments = segments
        self._closed = False

    @classmethod
    def publish(cls, csr: CSRGraph) -> "ShmLease":
        """Copy ``csr``'s arrays into shared memory; returns the owning lease.

        The lease's ``handle`` is the picklable worker payload.  The graph's
        set-iteration orderings are captured into an ``order`` segment
        (:func:`neighbor_order_array`) so attached copies keep emitting
        communities in the dict backend's order.
        """
        arrays: dict[str, np.ndarray] = {
            "indptr": csr.indptr,
            "indices": csr.indices,
        }
        labels, encoding = _encode_node_labels(list(csr.nodes()))
        arrays["nodes"] = labels
        order = neighbor_order_array(csr)
        if order is not None:
            arrays["order"] = order
        specs, segments = _publish_arrays(arrays)
        handle = ShmHandle(
            segments=specs,
            label_encoding=encoding,
            spill_identity=csr.spill_identity,
        )
        return ShmLease(handle=handle, _segments=segments)

    def close(self) -> None:
        """Release this process's mappings (the owner keeps the segments)."""
        if self._closed:
            return
        self._closed = True
        empty = np.empty(0, dtype=np.int32)
        self.indptr = empty
        self.indices = empty
        self._neighbor_order = None
        segments, self._segments = self._segments, []
        _release_segments(segments, unlink=False)

    def __enter__(self) -> "SharedCSRGraph":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ------------------------------------------------------------------ lease
@dataclass
class ShmLease:
    """Owner of a set of published segments.

    Exactly one lease owns each publication; its :meth:`close` both unmaps
    and unlinks, is idempotent, and runs on context exit — the executor holds
    one per pool generation and sweeps it on rebuild, in its ``run()``
    finalizer and in :meth:`~object.__del__` as a last resort.
    """

    handle: "ShmHandle | Phase2ShmHandle"
    _segments: list[shared_memory.SharedMemory] = field(default_factory=list)
    released: bool = False

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(segment.name for segment in self._segments)

    @property
    def segment_nbytes(self) -> int:
        return sum(segment.size for segment in self._segments)

    def close(self) -> None:
        """Unmap and unlink every owned segment (idempotent)."""
        if self.released:
            return
        self.released = True
        segments, self._segments = self._segments, []
        _OWNED_NAMES.difference_update(segment.name for segment in segments)
        _release_segments(segments, unlink=True)

    def __enter__(self) -> "ShmLease":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------- phase II
@dataclass(frozen=True)
class Phase2ShmHandle:
    """Picklable pointer to a published :class:`Phase2Kernel`."""

    segments: tuple[_SegmentSpec, ...]
    label_encoding: str
    num_dims: int

    def attach(self) -> "SharedPhase2Kernel":
        """Map the compiled Phase II state into this process, zero-copy."""
        arrays, segments = _attach_arrays(self.segments)
        try:
            nodes = _decode_node_labels(arrays["index_nodes"], self.label_encoding)
            index = {node: i for i, node in enumerate(nodes)}
            interactions = InteractionMatrix(
                arrays["inter_indptr"],
                arrays["inter_indices"],
                arrays["inter_data"],
                self.num_dims,
            )
            features = NodeFeatureMatrix(arrays["features"])
            kernel = SharedPhase2Kernel(interactions, features, index, segments)
        except BaseException:
            _release_segments(segments, unlink=False)
            raise
        return kernel

    @property
    def segment_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.segments)


class SharedPhase2Kernel(Phase2Kernel):
    """A :class:`Phase2Kernel` backed by shared-memory segments.

    Same borrow semantics as :class:`SharedCSRGraph`: sharded feature
    aggregation attaches once per worker and slices, instead of re-pickling
    the interaction CSR and dense feature matrix per worker.
    """

    __slots__ = ("_segments", "_closed")

    def __init__(
        self,
        interactions: InteractionMatrix,
        features: NodeFeatureMatrix,
        index: dict[Node, int],
        segments: list[shared_memory.SharedMemory],
    ) -> None:
        super().__init__(interactions, features, index)
        self._segments = segments
        self._closed = False

    @classmethod
    def publish(cls, kernel: Phase2Kernel) -> ShmLease:
        """Copy a compiled kernel's arrays into shared memory; returns the lease."""
        labels, encoding = _encode_node_labels(list(kernel._index))
        arrays: dict[str, np.ndarray] = {
            "inter_indptr": kernel.interactions.indptr,
            "inter_indices": kernel.interactions.indices,
            "inter_data": kernel.interactions.data,
            "features": kernel.features.dense,
            "index_nodes": labels,
        }
        specs, segments = _publish_arrays(arrays)
        handle = Phase2ShmHandle(
            segments=specs,
            label_encoding=encoding,
            num_dims=kernel.interactions.num_dims,
        )
        return ShmLease(handle=handle, _segments=segments)

    def close(self) -> None:
        """Release this process's mappings (the owner keeps the segments)."""
        if self._closed:
            return
        self._closed = True
        empty = np.empty(0, dtype=np.int64)
        self.interactions = InteractionMatrix(
            empty, empty, np.empty((0, 0), dtype=np.float64), 0
        )
        self.features = NodeFeatureMatrix(np.empty((1, 0), dtype=np.float64))
        segments, self._segments = self._segments, []
        _release_segments(segments, unlink=False)

    def __enter__(self) -> "SharedPhase2Kernel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
