"""Structural graph metrics used by the analysis module and tests."""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.graph.graph import Graph
from repro.types import Node


def density(graph: Graph) -> float:
    """Edge density ``2m / (n (n-1))`` of an undirected graph."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def local_clustering(graph: Graph, node: Node) -> float:
    """Local clustering coefficient of ``node``."""
    neighbors = list(graph.neighbors(node))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_set = set(neighbors)
    for i, u in enumerate(neighbors):
        links += sum(1 for v in neighbors[i + 1 :] if v in graph.neighbors(u))
    del neighbor_set
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: Graph) -> float:
    """Mean local clustering coefficient over all nodes."""
    n = graph.num_nodes
    if n == 0:
        return 0.0
    return sum(local_clustering(graph, node) for node in graph.nodes()) / n


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Histogram mapping degree value to number of nodes with that degree."""
    histogram: dict[int, int] = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(graph: Graph) -> float:
    """Mean node degree."""
    n = graph.num_nodes
    if n == 0:
        return 0.0
    return 2.0 * graph.num_edges / n


def shortest_path_lengths(graph: Graph, source: Node) -> dict[Node, int]:
    """Unweighted BFS shortest-path lengths from ``source``."""
    distances: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    if graph.num_nodes == 0:
        return True
    source = next(iter(graph.nodes()))
    return len(shortest_path_lengths(graph, source)) == graph.num_nodes


def common_neighbors(graph: Graph, u: Node, v: Node) -> set[Node]:
    """Set of common neighbours of ``u`` and ``v``."""
    return set(graph.neighbors(u)) & set(graph.neighbors(v))


def jaccard_similarity(graph: Graph, u: Node, v: Node) -> float:
    """Jaccard similarity of the neighbour sets of ``u`` and ``v``."""
    nu, nv = set(graph.neighbors(u)), set(graph.neighbors(v))
    union = nu | nv
    if not union:
        return 0.0
    return len(nu & nv) / len(union)


def edge_count_within(graph: Graph, nodes: Iterable[Node]) -> int:
    """Number of edges of ``graph`` with both endpoints in ``nodes``."""
    keep = set(nodes)
    count = 0
    for node in keep:
        if node in graph:
            count += sum(1 for other in graph.neighbors(node) if other in keep)
    return count // 2
