"""Serialisation of graphs, features and interactions.

The formats are deliberately simple and line-oriented so that a dataset can
be sharded across workers the way the paper's production pipeline streams
WeChat adjacency lists:

* **Edge list** — one ``u<TAB>v`` pair per line, ``#``-prefixed comments.
* **Labeled edges** — ``u<TAB>v<TAB>label_name`` per line.
* **JSON dataset** — a single document bundling graph, features,
  interactions and labels; convenient for small fixtures and examples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.exceptions import (
    DatasetError,
    DuplicateEdgeError,
    MalformedLineError,
    NonFiniteWeightError,
)
from repro.graph.features import NodeFeatureStore
from repro.graph.graph import Graph
from repro.graph.interactions import InteractionStore
from repro.types import LabeledEdge, RelationType


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` as a tab-separated edge list."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# undirected edge list: u<TAB>v\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")


def _check_on_error(on_error: str) -> None:
    if on_error not in {"raise", "skip"}:
        raise DatasetError(f"on_error must be 'raise' or 'skip', got {on_error!r}")


def read_edge_list(
    path: str | Path, node_type: type = int, on_error: str = "raise"
) -> Graph:
    """Read a tab- or space-separated edge list into a :class:`Graph`.

    Each data line is ``u v`` or ``u v weight``.  The graph model is
    unweighted, but a weight column — common in real edge-list dumps — is
    still validated: it must parse as a **finite** float.  Malformed input
    raises a precise :class:`~repro.exceptions.EdgeListError` subclass
    naming the offending line:

    * :class:`~repro.exceptions.MalformedLineError` — too few tokens, a
      token that ``node_type`` rejects, a non-numeric weight, or a
      self-loop;
    * :class:`~repro.exceptions.NonFiniteWeightError` — a weight that
      parses but is NaN or infinite;
    * :class:`~repro.exceptions.DuplicateEdgeError` — an undirected edge
      that already appeared (previously a silent overwrite).

    Parameters
    ----------
    path:
        File to read.
    node_type:
        Callable applied to each token to build node identifiers
        (default ``int``).
    on_error:
        ``"raise"`` (default) aborts on the first bad line; ``"skip"`` drops
        bad lines and keeps reading — the streaming posture of the paper's
        production ingest, where one corrupt record must not sink a shard.
    """
    _check_on_error(on_error)
    path = Path(path)
    graph = Graph()
    seen: set[tuple[object, object]] = set()
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                u, v = _parse_edge_line(path, lineno, line, node_type, seen)
            except (MalformedLineError, NonFiniteWeightError, DuplicateEdgeError):
                if on_error == "skip":
                    continue
                raise
            graph.add_edge(u, v)
    return graph


def _parse_edge_line(
    path: Path,
    lineno: int,
    line: str,
    node_type: type,
    seen: set[tuple[object, object]],
) -> tuple[object, object]:
    parts = line.split()
    if len(parts) < 2:
        raise MalformedLineError(path, lineno, f"expected 'u v' pair, got {line!r}")
    try:
        u, v = node_type(parts[0]), node_type(parts[1])
    except (TypeError, ValueError) as exc:
        raise MalformedLineError(
            path, lineno, f"cannot parse node ids from {line!r}: {exc}"
        ) from exc
    if u == v:
        raise MalformedLineError(
            path, lineno, f"self-loop {u!r}-{v!r} is not allowed"
        )
    if len(parts) >= 3:
        try:
            weight = float(parts[2])
        except ValueError as exc:
            raise MalformedLineError(
                path, lineno, f"cannot parse weight {parts[2]!r}"
            ) from exc
        if not np.isfinite(weight):
            raise NonFiniteWeightError(
                path, lineno, f"non-finite edge weight {parts[2]!r}"
            )
    key = (u, v) if repr(u) <= repr(v) else (v, u)
    if key in seen:
        raise DuplicateEdgeError(
            path, lineno, f"duplicate edge {u!r}-{v!r}"
        )
    seen.add(key)
    return u, v


def write_labeled_edges(labels: Iterable[LabeledEdge], path: str | Path) -> None:
    """Write labeled edges as ``u<TAB>v<TAB>label`` lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# labeled edges: u<TAB>v<TAB>relation\n")
        for item in labels:
            handle.write(f"{item.u}\t{item.v}\t{item.label.name}\n")


def read_labeled_edges(
    path: str | Path, node_type: type = int, on_error: str = "raise"
) -> list[LabeledEdge]:
    """Read labeled edges written by :func:`write_labeled_edges`.

    Error handling mirrors :func:`read_edge_list`: malformed lines, unknown
    relation names and duplicate labeled edges raise
    :class:`~repro.exceptions.EdgeListError` subclasses naming the line, and
    ``on_error="skip"`` drops bad lines instead of aborting.
    """
    _check_on_error(on_error)
    path = Path(path)
    labels: list[LabeledEdge] = []
    seen: set[tuple[object, object]] = set()
    with path.open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                labels.append(
                    _parse_labeled_line(path, lineno, line, node_type, seen)
                )
            except (MalformedLineError, DuplicateEdgeError):
                if on_error == "skip":
                    continue
                raise
    return labels


def _parse_labeled_line(
    path: Path,
    lineno: int,
    line: str,
    node_type: type,
    seen: set[tuple[object, object]],
) -> LabeledEdge:
    parts = line.split()
    if len(parts) < 3:
        raise MalformedLineError(
            path, lineno, f"expected 'u v label', got {line!r}"
        )
    try:
        u, v = node_type(parts[0]), node_type(parts[1])
    except (TypeError, ValueError) as exc:
        raise MalformedLineError(
            path, lineno, f"cannot parse node ids from {line!r}: {exc}"
        ) from exc
    try:
        label = RelationType[parts[2]]
    except KeyError:
        raise MalformedLineError(
            path, lineno, f"unknown relation type {parts[2]!r}"
        ) from None
    key = (u, v) if repr(u) <= repr(v) else (v, u)
    if key in seen:
        raise DuplicateEdgeError(path, lineno, f"duplicate labeled edge {u!r}-{v!r}")
    seen.add(key)
    return LabeledEdge(u, v, label)


def save_dataset_json(
    path: str | Path,
    graph: Graph,
    features: NodeFeatureStore | None = None,
    interactions: InteractionStore | None = None,
    labels: Iterable[LabeledEdge] | None = None,
) -> None:
    """Bundle a dataset into a single JSON document.

    Node identifiers are serialised via ``str`` and restored as ``int`` when
    they round-trip through ``int``; otherwise they stay strings.
    """
    document: dict = {
        "format": "locec-dataset",
        "version": 1,
        "edges": [[_encode_node(u), _encode_node(v)] for u, v in graph.edges()],
        "isolated_nodes": [
            _encode_node(node) for node in graph.nodes() if graph.degree(node) == 0
        ],
    }
    if features is not None:
        document["feature_names"] = list(features.feature_names)
        document["features"] = {
            str(node): features.get(node).tolist() for node in features.nodes()
        }
    if interactions is not None:
        document["interaction_dims"] = interactions.num_dims
        document["interactions"] = [
            [_encode_node(u), _encode_node(v), vector.tolist()]
            for (u, v), vector in interactions.items()
        ]
    if labels is not None:
        document["labels"] = [
            [_encode_node(item.u), _encode_node(item.v), item.label.name]
            for item in labels
        ]
    Path(path).write_text(json.dumps(document), encoding="utf-8")


def load_dataset_json(
    path: str | Path,
) -> tuple[Graph, NodeFeatureStore | None, InteractionStore | None, list[LabeledEdge]]:
    """Load a dataset produced by :func:`save_dataset_json`."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DatasetError(f"{path} is not valid JSON: {exc}") from exc
    if document.get("format") != "locec-dataset":
        raise DatasetError(f"{path} is not a locec-dataset JSON document")

    graph = Graph()
    for node in document.get("isolated_nodes", []):
        graph.add_node(_decode_node(node))
    for u, v in document.get("edges", []):
        graph.add_edge(_decode_node(u), _decode_node(v))

    features: NodeFeatureStore | None = None
    if "features" in document:
        features = NodeFeatureStore(document.get("feature_names") or ["f0"])
        for node, values in document["features"].items():
            features.set(_decode_node(node), np.asarray(values, dtype=np.float64))

    interactions: InteractionStore | None = None
    if "interactions" in document:
        interactions = InteractionStore(int(document.get("interaction_dims", 1)))
        for u, v, vector in document["interactions"]:
            interactions.set_vector(
                _decode_node(u), _decode_node(v), np.asarray(vector, dtype=np.float64)
            )

    labels = [
        LabeledEdge(_decode_node(u), _decode_node(v), RelationType[name])
        for u, v, name in document.get("labels", [])
    ]
    return graph, features, interactions, labels


def _encode_node(node: object) -> str:
    return str(node)


def _decode_node(token: str) -> object:
    try:
        return int(token)
    except (TypeError, ValueError):
        return token


# ------------------------------------------------------------- binary CSR
CSR_SPILL_VERSION = 1
"""Version stamp of the out-of-core CSR container (the ``format`` member)."""


def save_csr_npz(graph, path):
    """Spill a graph to disk as an uncompressed ``.npz`` CSR container.

    Members: ``format`` (version + label encoding flag), ``indptr``/
    ``indices`` (the CSR arrays, written with their in-memory dtypes so the
    round trip is bit-identical), ``labels`` (node labels — an ``int64``
    column for all-int graphs, otherwise a pickled blob in ``uint8``) and,
    when the graph knows its dict-backend orderings, ``order`` (the
    :func:`repro.graph.csr.neighbor_order_array` permutation, so a loaded
    spill emits communities in the same order the source graph would).

    The container is plain ``np.savez`` **without compression**: every
    member is ``ZIP_STORED``, which is what lets :func:`load_csr_npz` map
    the big arrays straight off disk with ``mmap_mode="r"``.
    """
    from repro.graph.csr import CSRGraph, neighbor_order_array

    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)
    from repro.graph.shm import _encode_node_labels

    labels, encoding = _encode_node_labels(list(csr.nodes()))
    arrays = {
        "format": np.array(
            [CSR_SPILL_VERSION, 1 if encoding == "pickle" else 0], dtype=np.int64
        ),
        "indptr": csr.indptr,
        "indices": csr.indices,
        "labels": labels,
    }
    order = neighbor_order_array(csr)
    if order is not None:
        arrays["order"] = order
    path = Path(path)
    with path.open("wb") as handle:
        np.savez(handle, **arrays)
    return path


def load_csr_npz(path, mmap_mode=None):
    """Load a :func:`save_csr_npz` container back into a ``CSRGraph``.

    With ``mmap_mode=None`` every array is materialised in RAM.  With
    ``mmap_mode="r"`` the edge arrays (``indptr``/``indices``/``order``) are
    ``np.memmap`` views straight into the file — ``np.load`` cannot mmap
    *members* of an ``.npz``, so this locates each ``ZIP_STORED`` member's
    data offset and maps it directly; node labels are always materialised
    (the interner is a Python dict regardless).

    The loaded graph carries ``spill_identity`` — ``path|size|sha256`` from
    :func:`csr_npz_fingerprint` — which the shard checkpoint store folds
    into its fingerprints so checkpoints never resume against a different
    spill that happens to share a path.
    """
    from repro.graph.csr import CSRGraph
    from repro.graph.shm import _decode_node_labels

    if mmap_mode not in (None, "r"):
        raise DatasetError(f"mmap_mode must be None or 'r', got {mmap_mode!r}")
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        fmt = np.asarray(data["format"])
        if fmt.shape != (2,) or int(fmt[0]) != CSR_SPILL_VERSION:
            raise DatasetError(
                f"{path}: unsupported CSR spill container (format={fmt!r})"
            )
        encoding = "pickle" if int(fmt[1]) else "int64"
        labels_array = np.asarray(data["labels"])
        has_order = "order" in data.files
        if mmap_mode is None:
            indptr = np.asarray(data["indptr"])
            indices = np.asarray(data["indices"])
            order = np.asarray(data["order"]) if has_order else None
    if mmap_mode == "r":
        keys = ("indptr", "indices") + (("order",) if has_order else ())
        mapped = _mmap_npz_members(path, keys)
        indptr = mapped["indptr"]
        indices = mapped["indices"]
        order = mapped.get("order")
    nodes = _decode_node_labels(labels_array, encoding)
    graph = CSRGraph(indptr, indices, nodes)
    graph._neighbor_order = order
    graph.spill_identity = csr_npz_fingerprint(path)
    return graph


def csr_npz_fingerprint(path):
    """Mtime-free identity of a spill file: ``path|size|sha256(content)``."""
    import hashlib

    path = Path(path)
    digest = hashlib.sha256()
    size = path.stat().st_size
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return f"{path.resolve()}|{size}|{digest.hexdigest()}"


def _mmap_npz_members(path, keys):
    """Read-only ``np.memmap`` views of selected ``.npz`` members.

    Walks the zip directory, checks each requested member is stored
    uncompressed, parses its local file header plus the ``.npy`` header it
    wraps, and maps the raw array bytes at their absolute file offset.
    """
    import zipfile

    from numpy.lib import format as npy_format

    wanted = {f"{key}.npy": key for key in keys}
    mapped = {}
    with zipfile.ZipFile(path) as archive, path.open("rb") as handle:
        for member, key in wanted.items():
            info = archive.getinfo(member)
            if info.compress_type != zipfile.ZIP_STORED:
                raise DatasetError(
                    f"{path}: member {member!r} is compressed; "
                    "mmap loading requires an uncompressed container"
                )
            handle.seek(info.header_offset)
            local_header = handle.read(30)
            if local_header[:4] != b"PK\x03\x04":
                raise DatasetError(f"{path}: corrupt zip local header for {member!r}")
            name_length = int.from_bytes(local_header[26:28], "little")
            extra_length = int.from_bytes(local_header[28:30], "little")
            handle.seek(info.header_offset + 30 + name_length + extra_length)
            version = npy_format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = npy_format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = npy_format.read_array_header_2_0(handle)
            else:
                raise DatasetError(
                    f"{path}: unsupported .npy version {version} in {member!r}"
                )
            mapped[key] = np.memmap(
                path,
                dtype=dtype,
                mode="r",
                offset=handle.tell(),
                shape=shape,
                order="F" if fortran else "C",
            )
    return mapped
