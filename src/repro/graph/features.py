"""Per-node individual feature storage (the paper's matrix ``F``).

Each user has a small dense vector of profile features ``f_v`` (gender, age
bucket, ...).  These features are independent of any local community, unlike
the interaction features computed by Equation 1 of the paper.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, FeatureError, NodeNotFoundError
from repro.types import DEFAULT_FEATURE_NAMES, Node


class NodeFeatureStore:
    """Dense per-node feature vectors with named dimensions.

    Parameters
    ----------
    feature_names:
        Names of the feature dimensions.  ``|f|`` is ``len(feature_names)``.

    Examples
    --------
    >>> store = NodeFeatureStore(["gender", "age_bucket"])
    >>> store.set(7, [1.0, 3.0])
    >>> store.get(7)
    array([1., 3.])
    """

    __slots__ = ("_feature_names", "_features", "_default", "_default_view", "_version")

    def __init__(
        self, feature_names: Sequence[str] = DEFAULT_FEATURE_NAMES
    ) -> None:
        if not feature_names:
            raise FeatureError("at least one feature dimension is required")
        self._feature_names = tuple(str(name) for name in feature_names)
        self._features: dict[Node, np.ndarray] = {}
        self._default = np.zeros(len(self._feature_names), dtype=np.float64)
        self._default_view = self._default.view()
        self._default_view.flags.writeable = False
        self._version = 0

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._feature_names

    @property
    def num_features(self) -> int:
        """The paper's ``|f|``: length of each individual feature vector."""
        return len(self._feature_names)

    @property
    def num_nodes(self) -> int:
        return len(self._features)

    @property
    def version(self) -> int:
        """Write counter; compiled snapshots use it to detect staleness."""
        return self._version

    # ------------------------------------------------------------------ access
    def set(self, node: Node, values: Sequence[float] | np.ndarray) -> None:
        """Set the feature vector of ``node``."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != (self.num_features,):
            raise DimensionMismatchError(
                f"expected feature vector of shape ({self.num_features},), "
                f"got {arr.shape}"
            )
        self._features[node] = arr.copy()
        self._version += 1

    def get(self, node: Node) -> np.ndarray:
        """Return the feature vector of ``node`` (a copy).

        Raises :class:`NodeNotFoundError` when the node has no features.
        """
        try:
            return self._features[node].copy()
        except KeyError:
            raise NodeNotFoundError(node) from None

    def get_or_default(self, node: Node) -> np.ndarray:
        """Return the feature vector of ``node`` or an all-zero default.

        LoCEC must handle users with private/empty profiles; they contribute
        a zero individual-feature block but still carry interaction features.
        """
        vector = self._features.get(node)
        return vector.copy() if vector is not None else self._default.copy()

    def get_view(self, node: Node) -> np.ndarray:
        """Read-only, no-copy view of ``node``'s vector (or the zero default).

        The batch accessor for hot loops: callers that only read (stacking
        into a preallocated matrix, summing) skip the per-call allocation of
        :meth:`get_or_default`.  The returned array is not writable.
        """
        vector = self._features.get(node)
        if vector is None:
            return self._default_view
        view = vector.view()
        view.flags.writeable = False
        return view

    def has(self, node: Node) -> bool:
        return node in self._features

    def nodes(self) -> Iterator[Node]:
        return iter(self._features)

    def set_many(
        self, items: Iterable[tuple[Node, Sequence[float]]]
    ) -> None:
        for node, values in items:
            self.set(node, values)

    # --------------------------------------------------------------- utilities
    def matrix(self, nodes: Sequence[Node]) -> np.ndarray:
        """Stack feature vectors of ``nodes`` into a ``len(nodes) × |f|`` matrix."""
        out = np.zeros((len(nodes), self.num_features), dtype=np.float64)
        features = self._features
        for row, node in enumerate(nodes):
            vector = features.get(node)
            if vector is not None:
                out[row] = vector
        return out

    def feature_index(self, name: str) -> int:
        """Index of feature ``name`` within the vectors."""
        try:
            return self._feature_names.index(name)
        except ValueError:
            raise FeatureError(
                f"unknown feature {name!r}; known: {self._feature_names}"
            ) from None

    def restrict_to(self, nodes: Iterable[Node]) -> "NodeFeatureStore":
        """Return a new store with only the given nodes' features."""
        keep = set(nodes)
        restricted = NodeFeatureStore(self._feature_names)
        for node, vector in self._features.items():
            if node in keep:
                restricted._features[node] = vector.copy()
        return restricted

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, node: Node) -> bool:
        return node in self._features

    def __repr__(self) -> str:
        return (
            f"NodeFeatureStore(num_features={self.num_features}, "
            f"num_nodes={self.num_nodes})"
        )
