"""NumPy CSR (compressed sparse row) graph kernel layer.

LoCEC's Phase I cost is dominated by interpreter-bound inner loops over the
``dict[node, set[node]]`` adjacency of :class:`repro.graph.Graph`: ego-network
extraction, Brandes edge betweenness inside Girvan-Newman, tightness
(Equation 3) and Louvain local moves.  This module provides an array-backed
graph representation plus vectorized kernels for exactly those hot paths:

* :class:`CSRGraph` — int32 ``indptr``/``indices`` over a node <-> index
  interner, exposing the same read API as :class:`Graph` (``neighbors``,
  ``degree``, ``subgraph``, ``edges``, ``num_nodes``/``num_edges``).
* :func:`ego_network_csr` — sorted-adjacency intersection instead of the
  per-friend Python loop in :mod:`repro.graph.ego`.
* :func:`edge_betweenness_csr` — Brandes with flat arrays, run for *all*
  sources simultaneously (level-synchronous BFS as dense matrix products;
  ego networks are small, so dense ``k x k`` state is both exact and fast).
* :func:`girvan_newman_csr` — the full GN dendrogram sweep on the dense
  arrays, bit-compatible with :func:`repro.community.girvan_newman`.
* :func:`community_tightness_csr` — one membership pass per community
  instead of per-member set rebuilds.
* :func:`louvain_communities_csr` — Louvain with the modularity gains of a
  node against all neighbouring communities computed in one ``bincount``.

All kernels are drop-in compatible with their dict-backend counterparts:
path counts, degrees and link weights are integers (exactly representable in
float64), so the vectorized results match the reference implementations
bit-for-bit wherever the reference accumulates integers, and to ~1e-12
otherwise.  ``repro.core.division`` selects the backend via its ``backend``
knob; see ``scripts/perf_report.py`` / ``BENCH_kernels.json`` for measured
speedups.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Collection, Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import NodeNotFoundError
from repro.graph.graph import Graph
from repro.types import Edge, Node, canonical_edge

__all__ = [
    "CSRGraph",
    "DenseEgoNet",
    "neighbor_order_array",
    "ego_network_csr",
    "ego_network_ordered",
    "edge_betweenness_csr",
    "girvan_newman_csr",
    "community_tightness_csr",
    "louvain_communities_csr",
]


class CSRGraph:
    """Undirected graph stored in compressed sparse row form.

    Nodes are interned to dense ``int32`` indices in insertion order;
    ``indices[indptr[i]:indptr[i + 1]]`` holds the neighbour indices of node
    ``i``, sorted ascending, which is what the intersection kernels rely on.

    The structure is immutable: build it once per (shard of the) global graph
    with :meth:`from_graph` / :meth:`from_edges` and run read-only kernels
    against it.  Mutating workloads (GN edge removal) copy into dense local
    arrays first — ego networks are tiny, the global graph is not.
    """

    __slots__ = (
        "indptr",
        "indices",
        "_nodes",
        "_index",
        "_source",
        "_neighbor_order",
        "spill_identity",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        nodes: list[Node],
        source: Graph | None = None,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self._nodes = nodes
        self._index: dict[Node, int] = {node: i for i, node in enumerate(nodes)}
        # Optional handle on the dict-backend graph this CSR was built from;
        # used to mirror its set-iteration orderings exactly so both backends
        # emit communities in identical order (index parity in Phase I).
        self._source = source
        # Detached stand-in for ``_source``'s orderings: a permutation array
        # aligned with ``indices`` (see :func:`neighbor_order_array`) carried
        # by graphs that crossed a process or disk boundary and left their
        # source behind (shared-memory attach, binary spill).
        self._neighbor_order: np.ndarray | None = None
        # Identity of the on-disk spill this graph was loaded from
        # (``path|size|sha256``, see ``repro.graph.io.csr_npz_fingerprint``);
        # the shard checkpoint store folds it into its fingerprints.
        self.spill_identity: str | None = None

    # -------------------------------------------------------------- builders
    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Build a CSR snapshot of a dict-backend :class:`Graph`."""
        nodes = list(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        degrees = np.fromiter(
            (graph.degree(node) for node in nodes), count=n, dtype=np.int64
        )
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        cursor = 0
        for node in nodes:
            neighbors = graph.neighbors(node)
            row = np.fromiter(
                (index[other] for other in neighbors),
                count=len(neighbors),
                dtype=np.int32,
            )
            row.sort()
            indices[cursor : cursor + row.size] = row
            cursor += row.size
        return cls(indptr, indices, nodes, source=graph)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Node, Node]] | None = None,
        nodes: Iterable[Node] | None = None,
    ) -> "CSRGraph":
        """Build from an edge list (plus optional isolated nodes)."""
        return cls.from_graph(Graph(edges=edges, nodes=nodes))

    def to_graph(self) -> Graph:
        """Materialise the equivalent dict-backend :class:`Graph`.

        A graph detached from its source but carrying a neighbour-order
        permutation (shared-memory attach, binary spill) fills each
        adjacency set in the source's own iteration order, so set-order
        dependent consumers (the non-GN detector fallback) observe the
        same orderings the original dict backend would.
        """
        graph = Graph(nodes=self._nodes)
        order = self._neighbor_order
        if order is not None:
            for i, u in enumerate(self._nodes):
                start, end = int(self.indptr[i]), int(self.indptr[i + 1])
                row = self.indices[start:end][order[start:end]]
                adjacency = graph._adj[u]
                for j in row.tolist():
                    adjacency.add(self._nodes[j])
            return graph
        for i, u in enumerate(self._nodes):
            for j in self._row(i):
                if i < j:
                    graph.add_edge(u, self._nodes[j])
        return graph

    # ------------------------------------------------------------- interner
    def index_of(self, node: Node) -> int:
        """Dense index of ``node`` (raises :class:`NodeNotFoundError`)."""
        try:
            return self._index[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def label_of(self, index: int) -> Node:
        """Node label at dense ``index``."""
        return self._nodes[index]

    def _row(self, index: int) -> np.ndarray:
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    # ---------------------------------------------------------- Graph read API
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return int(self.indices.size) // 2

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes)

    def has_node(self, node: Node) -> bool:
        return node in self._index

    def neighbors(self, node: Node) -> set[Node]:
        """Neighbour set of ``node`` (materialised from the CSR row)."""
        row = self._row(self.index_of(node))
        return {self._nodes[j] for j in row}

    def neighbor_list(self, node: Node) -> list[Node]:
        return [self._nodes[j] for j in self._row(self.index_of(node))]

    def degree(self, node: Node) -> int:
        i = self.index_of(node)
        return int(self.indptr[i + 1] - self.indptr[i])

    def degrees(self) -> dict[Node, int]:
        counts = np.diff(self.indptr)
        return {node: int(counts[i]) for i, node in enumerate(self._nodes)}

    def has_edge(self, u: Node, v: Node) -> bool:
        if u not in self._index or v not in self._index:
            return False
        row = self._row(self._index[u])
        j = int(np.searchsorted(row, self._index[v]))
        return j < row.size and int(row[j]) == self._index[v]

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges once each, in row-major index order."""
        for i, u in enumerate(self._nodes):
            for j in self._row(i):
                if i < j:
                    yield canonical_edge(u, self._nodes[j])

    def subgraph(self, nodes: Iterable[Node]) -> "CSRGraph":
        """Induced subgraph on ``nodes`` (unknown nodes ignored), as CSR."""
        keep = np.array(
            sorted({self._index[node] for node in nodes if node in self._index}),
            dtype=np.int32,
        )
        labels = [self._nodes[i] for i in keep]
        if keep.size == 0:
            return CSRGraph(np.zeros(1, np.int32), np.empty(0, np.int32), labels)
        starts = self.indptr[keep]
        ends = self.indptr[keep + 1]
        counts = (ends - starts).astype(np.int64, copy=False)
        cat = _gather_rows(self.indices, starts, ends)
        seg = np.repeat(np.arange(keep.size), counts)
        local, valid = _sorted_membership(keep, cat)
        seg, local = seg[valid], local[valid]
        indptr = np.zeros(keep.size + 1, dtype=np.int32)
        np.cumsum(np.bincount(seg, minlength=keep.size), out=indptr[1:])
        return CSRGraph(indptr, local.astype(np.int32, copy=False), labels)

    # -------------------------------------------------------------- dunder
    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CSRGraph):
            return set(self._nodes) == set(other._nodes) and set(self.edges()) == set(
                other.edges()
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"CSRGraph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"


def _gather_rows(indices: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``indices[starts[i]:ends[i]]`` for all i."""
    if starts.size == 0:
        return np.empty(0, dtype=indices.dtype)
    return np.concatenate(
        [indices[s:e] for s, e in zip(starts.tolist(), ends.tolist())]
        or [np.empty(0, dtype=indices.dtype)]
    )


def _sorted_membership(
    sorted_values: np.ndarray, queries: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of ``queries`` inside ``sorted_values`` plus a hit mask."""
    pos = np.searchsorted(sorted_values, queries)
    pos = np.minimum(pos, sorted_values.size - 1)
    valid = sorted_values[pos] == queries
    return pos, valid


# ======================================================================
# Ego-network extraction
# ======================================================================


@dataclass
class DenseEgoNet:
    """An ego network in local dense form, ready for the GN/tightness kernels.

    Attributes
    ----------
    labels:
        Local index -> node label (the ego's friends, ascending global index).
    order:
        Local indices in the iteration order the dict backend would use
        (the friends *set* order) so component discovery order — and hence
        :class:`LocalCommunity.index` — matches across backends.
    adjacency:
        Dense ``k x k`` float64 0/1 adjacency of the ego network, built
        lazily — the GN engine and tightness run off the edge arrays, so
        most egos never materialise it.
    eu, ev:
        Endpoint index arrays of the ego-net edges (``eu < ev``).
    """

    labels: list[Node]
    order: list[int]
    eu: np.ndarray
    ev: np.ndarray
    _adjacency: np.ndarray | None = None

    @property
    def adjacency(self) -> np.ndarray:
        if self._adjacency is None:
            k = len(self.labels)
            dense = np.zeros((k, k), dtype=np.float64)
            dense[self.eu, self.ev] = 1.0
            dense[self.ev, self.eu] = 1.0
            self._adjacency = dense
        return self._adjacency

    @property
    def num_nodes(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return int(self.eu.size)

    def edge_keys(self) -> list[Edge]:
        """Canonical label pair per edge (same keys as the dict backend)."""
        return [
            canonical_edge(self.labels[int(u)], self.labels[int(v)])
            for u, v in zip(self.eu, self.ev)
        ]


def dense_ego_net(csr: CSRGraph, ego: Node) -> DenseEgoNet:
    """Extract the ego network of ``ego`` via sorted-adjacency intersection.

    One gather + one ``searchsorted`` over the concatenated friend rows
    replaces the per-friend membership loop of :func:`repro.graph.ego.ego_network`.
    """
    ego_idx = csr.index_of(ego)
    friends = csr._row(ego_idx)
    k = int(friends.size)
    labels = [csr.label_of(int(i)) for i in friends]
    if k > 0:
        starts = csr.indptr[friends]
        ends = csr.indptr[friends + 1]
        counts = (ends - starts).astype(np.int64, copy=False)
        cat = _gather_rows(csr.indices, starts, ends)
        seg = np.repeat(np.arange(k), counts)
        local, valid = _sorted_membership(friends, cat)
        seg, local = seg[valid], local[valid]
        # Keep each undirected edge once; rows are sorted, so (seg < local)
        # yields the upper triangle in the same row-major order np.triu would.
        upper = seg < local
        eu, ev = seg[upper], local[upper]
    else:
        eu = ev = np.empty(0, dtype=np.int64)
    order = _dict_backend_order(csr, ego, labels)
    return DenseEgoNet(labels=labels, order=order, eu=eu, ev=ev)


def _dict_backend_order(csr: CSRGraph, ego: Node, labels: list[Node]) -> list[int]:
    """Local indices in the order the dict backend iterates the friend set."""
    if csr._source is not None:
        local = {label: i for i, label in enumerate(labels)}
        return [local[label] for label in csr._source.neighbors(ego)]
    if csr._neighbor_order is not None:
        e = csr.index_of(ego)
        start, end = int(csr.indptr[e]), int(csr.indptr[e + 1])
        return [int(pos) for pos in csr._neighbor_order[start:end]]
    return list(range(len(labels)))


def neighbor_order_array(csr: CSRGraph) -> np.ndarray | None:
    """Permutation mapping sorted CSR rows back to dict-set iteration order.

    ``order[indptr[i] + j]`` is the position *within the sorted row* of node
    ``i``'s ``j``-th neighbour as the source :class:`Graph` iterates its
    adjacency set.  The array is what lets a :class:`CSRGraph` detached from
    its source — a shared-memory attach in a worker, a binary spill loaded
    from disk — keep emitting communities in the dict backend's order
    (:func:`_dict_backend_order`, :meth:`CSRGraph.to_graph`).  ``None`` when
    the graph has neither a source nor a previously captured order.
    """
    if csr._neighbor_order is not None:
        return csr._neighbor_order
    if csr._source is None:
        return None
    order = np.empty(csr.indices.size, dtype=np.int32)
    for i, node in enumerate(csr._nodes):
        start = int(csr.indptr[i])
        count = int(csr.indptr[i + 1]) - start
        row = np.fromiter(
            (csr._index[other] for other in csr._source.neighbors(node)),
            count=count,
            dtype=np.int64,
        )
        perm = np.argsort(row, kind="stable")
        ranks = np.empty(count, dtype=np.int32)
        ranks[perm] = np.arange(count, dtype=np.int32)
        order[start : start + count] = ranks
    return order


def ego_network_ordered(csr: CSRGraph, ego: Node) -> Graph:
    """Ego network of ``ego`` replaying the dict backend's construction.

    Requires a ``_neighbor_order`` permutation (graphs attached from shared
    memory or loaded from a binary spill).  Visits friends and their
    neighbours in exactly the sequence :func:`repro.graph.ego.ego_network`
    does over the source graph, so the resulting :class:`Graph` has
    *identical* dict and set insertion histories — and therefore identical
    iteration orders, which order-sensitive detectors (label propagation,
    Louvain) observe.  This is what keeps non-GN division over a detached
    graph bit-identical to the clean serial run.
    """
    order = csr._neighbor_order
    assert order is not None, "ego_network_ordered needs a neighbor order"
    e = csr.index_of(ego)
    start, end = int(csr.indptr[e]), int(csr.indptr[e + 1])
    friends = csr.indices[start:end][order[start:end]].tolist()
    friend_set = set(friends)
    labels = csr._nodes
    ego_net = Graph(nodes=(labels[j] for j in friends))
    for j in friends:
        fstart, fend = int(csr.indptr[j]), int(csr.indptr[j + 1])
        row = csr.indices[fstart:fend][order[fstart:fend]]
        friend_label = labels[j]
        for k in row.tolist():
            if k in friend_set and k != j:
                ego_net.add_edge(friend_label, labels[k])
    return ego_net


def ego_network_csr(graph: Graph | CSRGraph, ego: Node) -> Graph:
    """Ego network of ``ego`` extracted with the CSR intersection kernel.

    Drop-in equivalent of :func:`repro.graph.ego.ego_network` (returns the
    same :class:`Graph`); the heavy lifting happens in :func:`dense_ego_net`.
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)
    net = dense_ego_net(csr, ego)
    ego_net = Graph(nodes=net.labels)
    for u, v in zip(net.eu.tolist(), net.ev.tolist()):
        ego_net.add_edge(net.labels[u], net.labels[v])
    return ego_net


# ======================================================================
# All-pairs Brandes (dense, level-synchronous, every source at once)
# ======================================================================


def _all_pairs_bfs_brandes(
    adjacency: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run Brandes' accumulation from every source simultaneously.

    Returns ``(dist, sigma, delta)`` where each is ``k x k`` indexed by
    ``[source, node]``: BFS distance (-1 when unreachable), shortest-path
    counts and Brandes' node dependencies.  Path counts are integers, so
    ``sigma`` is exact; the frontier expansion is one matrix product per BFS
    level instead of a Python loop per (source, node) pair.
    """
    k = adjacency.shape[0]
    dist = np.full((k, k), -1, dtype=np.int32)
    np.fill_diagonal(dist, 0)
    sigma = np.zeros((k, k), dtype=np.float64)
    np.fill_diagonal(sigma, 1.0)
    frontier = np.eye(k, dtype=bool)
    frontiers: list[np.ndarray] = [frontier]
    stacked = np.zeros((2 * k, k), dtype=np.float64)
    product_buffer = np.empty((2 * k, k), dtype=np.float64)
    level = 0
    while True:
        # One stacked GEMM per level expands the frontier (rows 0..k) and
        # propagates path counts (rows k..2k) simultaneously.
        np.copyto(stacked[:k], frontier)
        np.multiply(sigma, frontier, out=stacked[k:])
        product = np.matmul(stacked, adjacency, out=product_buffer)
        new_frontier = (product[:k] > 0.0) & (dist < 0)
        if not new_frontier.any():
            break
        level += 1
        dist[new_frontier] = level
        sigma[new_frontier] = product[k:][new_frontier]
        frontier = new_frontier
        frontiers.append(new_frontier)

    delta = np.zeros((k, k), dtype=np.float64)
    coef = np.empty((k, k), dtype=np.float64)
    for level_index in range(len(frontiers) - 1, 0, -1):
        level_mask = frontiers[level_index]
        coef.fill(0.0)
        np.divide(1.0 + delta, sigma, out=coef, where=level_mask)
        contrib = (coef @ adjacency) * sigma
        previous_mask = frontiers[level_index - 1]
        delta[previous_mask] += contrib[previous_mask]
    return dist, sigma, delta


def _edge_betweenness_values(
    dist: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    eu: np.ndarray,
    ev: np.ndarray,
) -> np.ndarray:
    """Per-edge betweenness from the all-pairs Brandes state (undirected)."""
    du, dv = dist[:, eu], dist[:, ev]
    su, sv = sigma[:, eu], sigma[:, ev]
    contrib_uv = np.where(
        dv == du + 1, su * (1.0 + delta[:, ev]) / np.where(sv > 0, sv, 1.0), 0.0
    ).sum(axis=0)
    contrib_vu = np.where(
        du == dv + 1, sv * (1.0 + delta[:, eu]) / np.where(su > 0, su, 1.0), 0.0
    ).sum(axis=0)
    return (contrib_uv + contrib_vu) / 2.0


def edge_betweenness_csr(graph: Graph | CSRGraph) -> dict[Edge, float]:
    """Vectorized drop-in for :func:`repro.community.betweenness.edge_betweenness`.

    Matches the reference to ~1e-12 (the accumulation order over sources
    differs, path counts themselves are exact).
    """
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)
    n = csr.num_nodes
    adjacency = np.zeros((n, n), dtype=np.float64)
    row_ids = np.repeat(np.arange(n), np.diff(csr.indptr).astype(np.int64, copy=False))
    adjacency[row_ids, csr.indices] = 1.0
    eu, ev = np.nonzero(np.triu(adjacency, 1))
    if eu.size == 0:
        return {}
    dist, sigma, delta = _all_pairs_bfs_brandes(adjacency)
    values = _edge_betweenness_values(dist, sigma, delta, eu, ev)
    labels = [csr.label_of(i) for i in range(n)]
    return {
        canonical_edge(labels[int(u)], labels[int(v)]): float(value)
        for u, v, value in zip(eu, ev, values)
    }


# ======================================================================
# Girvan-Newman on the dense local arrays
# ======================================================================

_PYTHON_KERNEL_MAX = 48
"""Components at or below this many nodes use the flat-list Brandes kernel.
Micro-benchmarks put the fixed cost of the ~50-NumPy-op dense kernel at
~55us per call, which the int-indexed Python loop undercuts until roughly
this size; beyond it the O(V*E) loop loses to the vectorized all-pairs
sweep (ego networks rarely get there, whole-graph calls do)."""

_MEMO_KERNEL_MAX = 6
"""Components at or below this many nodes resolve betweenness through the
structure-memo cache below instead of running Brandes."""

_SMALL_BETWEENNESS_CACHE: dict[tuple[int, int], tuple[float, ...]] = {}
"""(num_nodes, adjacency bitmask) -> quantized betweenness per pair slot.

GN grinds thousands of tiny fragments per graph and the same labelled
shapes (paths, cycles, near-cliques) recur constantly, so for components of
<= _MEMO_KERNEL_MAX nodes the engine keys their adjacency bitmask (over
pairs of size-ordered slots) and computes Brandes once per distinct shape.
"""

_PAIR_SLOTS: dict[int, dict[tuple[int, int], int]] = {
    n: {
        (i, j): i * (2 * n - i - 1) // 2 + (j - i - 1)
        for i in range(n)
        for j in range(i + 1, n)
    }
    for n in range(2, _MEMO_KERNEL_MAX + 1)
}


def _small_betweenness(num_nodes: int, mask: int) -> tuple[float, ...]:
    """Quantized edge betweenness of the canonical small graph ``mask``."""
    pair_slots = _PAIR_SLOTS[num_nodes]
    adjacency: list[list[int]] = [[] for _ in range(num_nodes)]
    pairs: list[tuple[int, int, int]] = []
    for (i, j), bit in pair_slots.items():
        if mask >> bit & 1:
            adjacency[i].append(j)
            adjacency[j].append(i)
            pairs.append((i, j, bit))
    acc = [0.0] * len(pair_slots)
    dist = [-1] * num_nodes
    sigma = [0.0] * num_nodes
    delta = [0.0] * num_nodes
    for source in range(num_nodes):
        for node in range(num_nodes):
            dist[node] = -1
            sigma[node] = 0.0
            delta[node] = 0.0
        dist[source] = 0
        sigma[source] = 1.0
        queue = [source]
        cursor = 0
        while cursor < len(queue):
            node = queue[cursor]
            cursor += 1
            next_dist = dist[node] + 1
            for other in adjacency[node]:
                if dist[other] < 0:
                    dist[other] = next_dist
                    queue.append(other)
                if dist[other] == next_dist:
                    sigma[other] += sigma[node]
        for position in range(len(queue) - 1, 0, -1):
            node = queue[position]
            prev_dist = dist[node] - 1
            coef = (1.0 + delta[node]) / sigma[node]
            for other in adjacency[node]:
                if dist[other] == prev_dist:
                    low, high = (other, node) if other < node else (node, other)
                    contribution = sigma[other] * coef
                    acc[pair_slots[(low, high)]] += contribution
                    delta[other] += contribution
    return tuple(round(value / 2.0, 9) for value in acc)


class _Component:
    """A live connected component inside the GN engine."""

    __slots__ = (
        "nodes",
        "edge_ids",
        "orig_edge_ids",
        "degree_sum",
        "min_pos",
        "dirty",
        "best_key",
        "best_eid",
    )

    def __init__(self, nodes: list[int], edge_ids: list[int], min_pos: int) -> None:
        self.nodes = nodes
        self.edge_ids = edge_ids
        self.min_pos = min_pos
        self.dirty = True
        # Cached argmax over this component's edges, maintained by _refresh:
        # clean components never rescan their edges in the global argmax.
        self.best_key: tuple[float, str] | None = None
        self.best_eid = -1
        # Modularity bookkeeping against the *original* ego net: the ids of
        # original edges with both endpoints inside this component, and the
        # total original degree of its nodes.  Both are exact integers kept
        # up to date across splits, so each dendrogram level's modularity is
        # recomputed from the same counts the dict backend derives by
        # rescanning the graph.
        self.orig_edge_ids: list[int] = []
        self.degree_sum = 0


class _GNEngine:
    """Girvan-Newman over one ego net with per-component betweenness caching.

    Removing one edge only changes shortest paths inside the component that
    contained it (betweenness is additive across components), so cached
    per-edge values stay valid everywhere else and each iteration recomputes
    Brandes only on the affected component.  Components are processed by a
    size-adaptive kernel: the vectorized all-pairs Brandes for large ones,
    an int-indexed flat-list Brandes for small ones (the common case — GN
    removes bridges first, so components shrink quickly).  Results are
    identical to ``girvan_newman_levels``: values are quantized to 9 decimals
    before the argmax on both backends, which absorbs the summation-order
    ulps, and partitions are emitted in the same discovery order.
    """

    def __init__(self, net: DenseEgoNet) -> None:
        k = net.num_nodes
        self.net = net
        self.k = k
        self.position = [0] * k
        for pos, node in enumerate(net.order):
            self.position[node] = pos
        eu = net.eu.tolist()
        ev = net.ev.tolist()
        self.edge_u = eu
        self.edge_v = ev
        # repr(canonical_edge(u, v)) without building tuples: a pair's repr
        # is "(<repr u>, <repr v>)" with the two reprs in sorted order, and
        # per-label reprs are computed once instead of per edge.
        label_reprs = [repr(label) for label in net.labels]
        self.edge_repr = []
        for u, v in zip(eu, ev):
            ru, rv = label_reprs[u], label_reprs[v]
            if rv < ru:
                ru, rv = rv, ru
            self.edge_repr.append(f"({ru}, {rv})")
        self.adj: list[list[tuple[int, int]]] = [[] for _ in range(k)]
        # Neighbour-only mirror of ``adj`` for the BFS sweeps, which never
        # need edge ids and save a tuple unpack per visit.
        self.adj_nbr: list[list[int]] = [[] for _ in range(k)]
        for eid, (u, v) in enumerate(zip(eu, ev)):
            self.adj[u].append((v, eid))
            self.adj[v].append((u, eid))
            self.adj_nbr[u].append(v)
            self.adj_nbr[v].append(u)
        self.rounded: list[float] = [0.0] * len(eu)
        self.node_comp: list[int] = [-1] * k
        self.comps: dict[int, _Component] = {}
        self._next_comp_id = 0
        self._ordered_comps: list[_Component] = []
        # Original structure for modularity (evaluated on the input graph).
        self._deg0 = [len(rows) for rows in self.adj]
        self._m0 = len(eu)
        self._init_components()
        # Scratch state for the flat-list Brandes kernel.
        self._dist = [-1] * k
        self._sigma = [0.0] * k
        self._delta = [0.0] * k
        self._acc: list[float] = [0.0] * len(eu)
        self._visited = [False] * k
        self._queue = [0] * k

    # ------------------------------------------------------------ components
    def _init_components(self) -> None:
        seen = [False] * self.k
        for start in self.net.order:
            if seen[start]:
                continue
            members = [start]
            seen[start] = True
            cursor = 0
            while cursor < len(members):
                node = members[cursor]
                cursor += 1
                for other in self.adj_nbr[node]:
                    if not seen[other]:
                        seen[other] = True
                        members.append(other)
            edge_ids: list[int] = []
            for node in members:
                for other, eid in self.adj[node]:
                    if node < other:  # each edge once
                        edge_ids.append(eid)
            self._add_component(members, edge_ids, list(edge_ids))

    def _add_component(
        self,
        nodes: list[int],
        edge_ids: list[int],
        orig_edge_ids: list[int],
    ) -> int:
        comp_id = self._next_comp_id
        self._next_comp_id += 1
        min_pos = min(self.position[node] for node in nodes)
        comp = _Component(nodes, edge_ids, min_pos)
        comp.orig_edge_ids = orig_edge_ids
        deg0 = self._deg0
        comp.degree_sum = sum(deg0[node] for node in nodes)
        self.comps[comp_id] = comp
        for node in nodes:
            self.node_comp[node] = comp_id
        return comp_id

    def _partition(self) -> list[list[int]]:
        """Current components in dict-backend discovery order."""
        ordered = sorted(self.comps.values(), key=lambda comp: comp.min_pos)
        self._ordered_comps = ordered
        return [comp.nodes for comp in ordered]

    # ------------------------------------------------------- betweenness cache
    def _refresh(self, comp: _Component) -> None:
        if comp.edge_ids:
            num_nodes = len(comp.nodes)
            num_edges = len(comp.edge_ids)
            if num_edges == num_nodes * (num_nodes - 1) // 2:
                # Clique: the only shortest path between any pair is the
                # direct edge, so every edge has betweenness exactly 1.
                rounded = self.rounded
                for eid in comp.edge_ids:
                    rounded[eid] = 1.0
            elif num_edges == num_nodes - 1:
                self._betweenness_tree(comp)
            elif num_nodes <= _MEMO_KERNEL_MAX:
                self._brandes_memo(comp)
            elif num_nodes <= _PYTHON_KERNEL_MAX:
                self._brandes_flat(comp)
            else:
                self._brandes_numpy(comp)
            rounded = self.rounded
            edge_repr = self.edge_repr
            edge_ids = comp.edge_ids
            best_eid = edge_ids[0]
            best_value = rounded[best_eid]
            best_repr = edge_repr[best_eid]
            for eid in edge_ids:
                value = rounded[eid]
                if value > best_value or (
                    value == best_value and edge_repr[eid] > best_repr
                ):
                    best_value = value
                    best_repr = edge_repr[eid]
                    best_eid = eid
            comp.best_key = (best_value, best_repr)
            comp.best_eid = best_eid
        comp.dirty = False

    def _betweenness_tree(self, comp: _Component) -> None:
        """Exact betweenness for a tree component in one O(V) sweep.

        Removing a tree edge leaves subtrees of ``s`` and ``V - s`` nodes;
        every one of the ``s * (V - s)`` node pairs routes its single
        shortest path over that edge, so that product *is* the betweenness
        (an exact integer — identical to what Brandes accumulates).
        """
        adj = self.adj
        parent = self._dist  # scratch: parent edge id per node
        size = self._sigma  # scratch: subtree size per node
        total = len(comp.nodes)
        root = comp.nodes[0]
        parent[root] = -2
        queue = [root]
        cursor = 0
        while cursor < len(queue):
            node = queue[cursor]
            cursor += 1
            for other, eid in adj[node]:
                if parent[other] == -1:
                    parent[other] = eid
                    queue.append(other)
        for node in queue:
            size[node] = 1.0
        rounded = self.rounded
        edge_u, edge_v = self.edge_u, self.edge_v
        for node in reversed(queue):
            eid = parent[node]
            if eid >= 0:
                subtree = size[node]
                rounded[eid] = subtree * (total - subtree)
                size[edge_u[eid] + edge_v[eid] - node] += subtree
            parent[node] = -1
            size[node] = 0.0

    def _brandes_memo(self, comp: _Component) -> None:
        """Betweenness of a tiny component via the structure-memo cache."""
        nodes = sorted(comp.nodes)
        num_nodes = len(nodes)
        slot = {node: i for i, node in enumerate(nodes)}
        pair_slots = _PAIR_SLOTS[num_nodes]
        edge_u, edge_v = self.edge_u, self.edge_v
        mask = 0
        bits = []
        for eid in comp.edge_ids:
            i, j = slot[edge_u[eid]], slot[edge_v[eid]]
            if i > j:
                i, j = j, i
            bit = pair_slots[(i, j)]
            mask |= 1 << bit
            bits.append(bit)
        key = (num_nodes, mask)
        values = _SMALL_BETWEENNESS_CACHE.get(key)
        if values is None:
            values = _small_betweenness(num_nodes, mask)
            _SMALL_BETWEENNESS_CACHE[key] = values
        rounded = self.rounded
        for eid, bit in zip(comp.edge_ids, bits):
            rounded[eid] = values[bit]

    def _brandes_flat(self, comp: _Component) -> None:
        """Brandes restricted to ``comp`` on int-indexed Python lists.

        Predecessors are stored as edge ids only (the predecessor node is
        recovered as ``u + v - node``) and scratch state is reset during the
        back-propagation sweep, so no per-source clearing pass is needed.
        """
        rounded = self.rounded
        adj = self.adj
        adj_nbr = self.adj_nbr
        dist = self._dist
        sigma = self._sigma
        delta = self._delta
        acc = self._acc
        queue = self._queue
        for eid in comp.edge_ids:
            acc[eid] = 0.0
        for source in comp.nodes:
            dist[source] = 0
            sigma[source] = 1.0
            queue[0] = source
            filled = 1
            cursor = 0
            while cursor < filled:
                node = queue[cursor]
                cursor += 1
                next_dist = dist[node] + 1
                sigma_node = sigma[node]
                for other in adj_nbr[node]:
                    level = dist[other]
                    if level < 0:
                        dist[other] = next_dist
                        queue[filled] = other
                        filled += 1
                        sigma[other] = sigma_node
                    elif level == next_dist:
                        sigma[other] += sigma_node
            # Predecessors are re-identified from the distance labels during
            # the reverse sweep (pred iff dist == dist[node] - 1), avoiding
            # per-visit predecessor-list allocations.  Scratch state is wiped
            # as each node finishes; the source is wiped without scanning
            # since dist -1 would otherwise look like a predecessor level.
            for position in range(filled - 1, 0, -1):
                node = queue[position]
                prev_dist = dist[node] - 1
                coef = (1.0 + delta[node]) / sigma[node]
                for other, eid in adj[node]:
                    if dist[other] == prev_dist:
                        contribution = sigma[other] * coef
                        acc[eid] += contribution
                        delta[other] += contribution
                dist[node] = -1
                sigma[node] = 0.0
                delta[node] = 0.0
            dist[source] = -1
            sigma[source] = 0.0
            delta[source] = 0.0
        for eid in comp.edge_ids:
            rounded[eid] = round(acc[eid] / 2.0, 9)

    def _brandes_numpy(self, comp: _Component) -> None:
        """Vectorized all-pairs Brandes on the component submatrix."""
        nodes = comp.nodes
        local = {node: i for i, node in enumerate(nodes)}
        sub = np.zeros((len(nodes), len(nodes)), dtype=np.float64)
        for node in nodes:
            row = local[node]
            for other in self.adj_nbr[node]:
                sub[row, local[other]] = 1.0
        dist, sigma, delta = _all_pairs_bfs_brandes(sub)
        eu = np.array([local[self.edge_u[eid]] for eid in comp.edge_ids], dtype=np.intp)
        ev = np.array([local[self.edge_v[eid]] for eid in comp.edge_ids], dtype=np.intp)
        values = _edge_betweenness_values(dist, sigma, delta, eu, ev)
        rounded = self.rounded
        for eid, value in zip(comp.edge_ids, values.tolist()):
            rounded[eid] = round(value, 9)

    # ------------------------------------------------------------- main sweep
    def levels(self) -> Iterator[list[list[int]]]:
        """Yield successive GN partitions (mirrors ``girvan_newman_levels``)."""
        yield self._partition()
        edge_u, edge_v = self.edge_u, self.edge_v
        while True:
            best_key = None
            best_comp = None
            for comp in self.comps.values():
                if not comp.edge_ids:
                    continue
                if comp.dirty:
                    self._refresh(comp)
                if best_key is None or comp.best_key > best_key:
                    best_key = comp.best_key
                    best_comp = comp
            if best_comp is None:
                return
            best_eid = best_comp.best_eid
            u, v = edge_u[best_eid], edge_v[best_eid]
            self.adj[u].remove((v, best_eid))
            self.adj[v].remove((u, best_eid))
            self.adj_nbr[u].remove(v)
            self.adj_nbr[v].remove(u)
            best_comp.edge_ids.remove(best_eid)
            if self._split(best_comp, u, v):
                yield self._partition()
            else:
                best_comp.dirty = True

    def _split(self, comp: _Component, u: int, v: int) -> bool:
        """Re-check connectivity of ``comp`` after removing edge ``(u, v)``."""
        visited = self._visited
        adj_nbr = self.adj_nbr
        if not adj_nbr[u]:
            # u lost its last edge: it detaches on its own and the remainder
            # of the component stays connected — no reachability sweep.
            queue = [u]
            visited[u] = True
        elif not adj_nbr[v]:
            queue = [node for node in comp.nodes if node != v]
            for node in queue:
                visited[node] = True
        else:
            visited[u] = True
            queue = [u]
            cursor = 0
            connected = False
            while cursor < len(queue):
                node = queue[cursor]
                cursor += 1
                for other in adj_nbr[node]:
                    if not visited[other]:
                        if other == v:
                            connected = True
                            cursor = len(queue)
                            break
                        visited[other] = True
                        queue.append(other)
            if connected:
                for node in queue:
                    visited[node] = False
                return False
        half_nodes = [node for node in comp.nodes if visited[node]]
        rest_nodes = [node for node in comp.nodes if not visited[node]]
        edge_u = self.edge_u
        edge_v = self.edge_v
        half_edges = [eid for eid in comp.edge_ids if visited[edge_u[eid]]]
        rest_edges = [eid for eid in comp.edge_ids if not visited[edge_u[eid]]]
        # Original edges whose endpoints land on different sides stop being
        # intra-community for modularity purposes; the rest follow their side.
        half_orig = [
            eid
            for eid in comp.orig_edge_ids
            if visited[edge_u[eid]] and visited[edge_v[eid]]
        ]
        rest_orig = [
            eid
            for eid in comp.orig_edge_ids
            if not visited[edge_u[eid]] and not visited[edge_v[eid]]
        ]
        for node in queue:
            visited[node] = False
        comp_id = self.node_comp[u]
        del self.comps[comp_id]
        self._add_component(half_nodes, half_edges, half_orig)
        self._add_component(rest_nodes, rest_edges, rest_orig)
        return True

    # -------------------------------------------------------------- modularity
    def current_modularity(self) -> float:
        """Newman modularity of the last-yielded partition on the original net.

        Uses the per-component integer intra-edge and degree counts that are
        maintained across splits; the per-block terms and their accumulation
        order are the same as in
        :func:`repro.community.modularity.modularity`, so the value is
        bit-identical to what the dict backend computes by rescanning.
        """
        if self._m0 == 0:
            return 0.0
        m = self._m0
        two_m = 2.0 * m
        q = 0.0
        for comp in self._ordered_comps:
            q += len(comp.orig_edge_ids) / m - (comp.degree_sum / two_m) ** 2
        return q


def girvan_newman_dense(
    net: DenseEgoNet,
    max_communities: int | None = None,
    min_community_size: int = 1,
) -> tuple[list[list[int]], float, int]:
    """Best-modularity GN partition of a dense ego net.

    Returns ``(blocks, modularity, levels_explored)`` with blocks as local
    index lists in the dict backend's discovery order.
    """
    k = net.num_nodes
    if k == 0:
        return [], 0.0, 0
    if net.num_edges == 0:
        return [[i] for i in net.order], 0.0, 1
    engine = _GNEngine(net)
    best_blocks: list[list[int]] | None = None
    best_q = float("-inf")
    levels = 0
    for blocks in engine.levels():
        levels += 1
        if max_communities is not None and len(blocks) > max_communities:
            break
        q = engine.current_modularity()
        if q > best_q:
            best_q = q
            best_blocks = blocks
        if min_community_size > 1 and all(
            len(block) < min_community_size for block in blocks
        ):
            break
    assert best_blocks is not None
    return best_blocks, best_q, levels


def girvan_newman_csr(
    graph: Graph | CSRGraph,
    max_communities: int | None = None,
    min_community_size: int = 1,
) -> "GirvanNewmanResult":
    """Vectorized drop-in for :func:`repro.community.girvan_newman.girvan_newman`."""
    from repro.community.girvan_newman import GirvanNewmanResult

    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)
    net = _whole_graph_as_ego_net(csr)
    blocks, q, levels = girvan_newman_dense(
        net, max_communities=max_communities, min_community_size=min_community_size
    )
    if net.num_nodes == 0:
        return GirvanNewmanResult(communities=(), modularity=0.0, levels_explored=0)
    communities = tuple(frozenset(net.labels[i] for i in block) for block in blocks)
    return GirvanNewmanResult(
        communities=communities, modularity=q if blocks else 0.0, levels_explored=levels
    )


def _whole_graph_as_ego_net(csr: CSRGraph) -> DenseEgoNet:
    """View an entire (small) graph as a DenseEgoNet for the GN kernel."""
    n = csr.num_nodes
    adjacency = np.zeros((n, n), dtype=np.float64)
    if n:
        row_ids = np.repeat(np.arange(n), np.diff(csr.indptr).astype(np.int64, copy=False))
        adjacency[row_ids, csr.indices] = 1.0
    eu, ev = np.nonzero(np.triu(adjacency, 1))
    if csr._source is not None:
        order_labels = list(csr._source.nodes())
        index = {label: i for i, label in enumerate(csr._nodes)}
        order = [index[label] for label in order_labels]
    else:
        order = list(range(n))
    return DenseEgoNet(
        labels=list(csr._nodes), order=order, eu=eu, ev=ev, _adjacency=adjacency
    )


# ======================================================================
# Tightness (Equation 3), batched
# ======================================================================


def tightness_from_dense(
    net: DenseEgoNet, block: np.ndarray | Sequence[int]
) -> dict[Node, float]:
    """Equation 3 for every member of ``block`` in one vectorized pass."""
    block = np.asarray(block, dtype=np.intp)
    size = int(block.size)
    if size == 1:
        return {net.labels[int(block[0])]: 1.0}
    sub = net.adjacency[np.ix_(block, block)]
    friends_in_community = sub.sum(axis=1)
    friends_in_ego = net.adjacency[block].sum(axis=1)
    values: dict[Node, float] = {}
    for local, fc, fe in zip(
        block.tolist(), friends_in_community.tolist(), friends_in_ego.tolist()
    ):
        if fe == 0:
            values[net.labels[local]] = 0.0
        else:
            values[net.labels[local]] = (fc / fe) * (fc / (size - 1))
    return values


_TIGHTNESS_ARRAY_MIN_SIZE = 32
"""Member count below which the scalar membership loop beats the batched
kernel: the array path pays fixed NumPy call overhead (gather, repeat,
searchsorted, bincount) that WeChat-like communities of a few dozen members
never amortise (see the ``community_tightness_{dict,csr}`` bench pair)."""


def community_tightness_csr(
    ego_net: Graph | CSRGraph, community: Collection[Node]
) -> dict[Node, float]:
    """Batched drop-in for :func:`repro.core.tightness.community_tightness`.

    One sorted-membership pass over the members' concatenated adjacency rows
    replaces the per-member set rebuild of the dict backend.  Routing is
    size-aware: below :data:`_TIGHTNESS_ARRAY_MIN_SIZE` members the batched
    kernel's fixed call overhead outweighs the flop savings, so small
    communities run the dict reference directly (on the ego net itself or
    the CSR's retained source graph) or, lacking one, a scalar pass over
    the same CSR rows — identical arithmetic, identical results, no
    backend-dependent output.
    """
    if len(community) < _TIGHTNESS_ARRAY_MIN_SIZE:
        from repro.core.tightness import community_tightness

        if isinstance(ego_net, Graph):
            return community_tightness(ego_net, community)
        if ego_net._source is not None:
            return community_tightness(ego_net._source, community)
        return _community_tightness_small(ego_net, community)
    csr = ego_net if isinstance(ego_net, CSRGraph) else CSRGraph.from_graph(ego_net)
    # Dedup like the dict reference (which materialises a member *set*), so a
    # community handed in as a list with repeated nodes cannot skew |C|.
    members = np.array(
        sorted({csr.index_of(node) for node in community}), dtype=np.int32
    )
    size = int(members.size)
    if size == 0:
        return {}
    if size == 1:
        return {csr.label_of(int(members[0])): 1.0}
    starts = csr.indptr[members]
    ends = csr.indptr[members + 1]
    counts = (ends - starts).astype(np.int64, copy=False)
    cat = _gather_rows(csr.indices, starts, ends)
    seg = np.repeat(np.arange(size), counts)
    _, valid = _sorted_membership(members, cat)
    friends_in_community = np.bincount(seg[valid], minlength=size)
    values: dict[Node, float] = {}
    for position, member in enumerate(members.tolist()):
        fc = int(friends_in_community[position])
        fe = int(counts[position])
        if fe == 0:
            values[csr.label_of(member)] = 0.0
        else:
            values[csr.label_of(member)] = (fc / fe) * (fc / (size - 1))
    return values


def _community_tightness_small(
    csr: CSRGraph, community: Collection[Node]
) -> dict[Node, float]:
    """Equation 3 for a small community: scalar loop over the CSR rows.

    Same integer counts and float operations as the batched path (and the
    dict backend), so the values are bit-identical — only the traversal
    strategy differs.
    """
    member_idx = sorted({csr.index_of(node) for node in community})
    size = len(member_idx)
    if size == 0:
        return {}
    if size == 1:
        return {csr.label_of(member_idx[0]): 1.0}
    member_set = set(member_idx)
    indptr = csr.indptr
    indices = csr.indices
    values: dict[Node, float] = {}
    for member in member_idx:
        row = indices[indptr[member] : indptr[member + 1]].tolist()
        friends_in_ego = len(row)
        if friends_in_ego == 0:
            values[csr.label_of(member)] = 0.0
            continue
        friends_in_community = sum(1 for other in row if other in member_set)
        values[csr.label_of(member)] = (friends_in_community / friends_in_ego) * (
            friends_in_community / (size - 1)
        )
    return values


# ======================================================================
# Louvain with vectorized modularity gains
# ======================================================================


def louvain_communities_csr(
    graph: Graph | CSRGraph, seed: int | None = 0, max_levels: int = 10
) -> tuple[frozenset[Node], ...]:
    """Vectorized drop-in for :func:`repro.community.louvain.louvain_communities`.

    The per-node scan over neighbouring communities — the dict backend's
    inner dict-accumulation loop — becomes one ``np.unique`` + ``bincount``
    per node (the "vectorized modularity gain"); sweep order, RNG use and
    tie-breaking are identical, and link weights are integer-valued at every
    level, so the partitions match the reference exactly.
    """
    csr = None if isinstance(graph, Graph) else graph
    nodes0 = list(graph.nodes())
    n = len(nodes0)
    if n == 0:
        return ()
    if graph.num_edges == 0:
        return tuple(frozenset([node]) for node in nodes0)

    if csr is not None:
        indptr = csr.indptr.astype(np.int64, copy=False)
        indices = csr.indices.astype(np.int64, copy=False)
    else:
        index = {node: i for i, node in enumerate(nodes0)}
        degrees = np.fromiter(
            (graph.degree(node) for node in nodes0), count=n, dtype=np.int64
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        cursor = 0
        for node in nodes0:
            for other in graph.neighbors(node):
                indices[cursor] = index[other]
                cursor += 1
    weights = np.ones(indices.size, dtype=np.float64)
    contents: list[list[Node]] = [[node] for node in nodes0]
    rng = random.Random(seed)

    for _ in range(max_levels):
        community, improved = _louvain_one_level(indptr, indices, weights, rng)
        if not improved:
            break
        previous_n = len(contents)
        indptr, indices, weights, contents = _louvain_aggregate(
            indptr, indices, weights, contents, community
        )
        if len(contents) == 1 and previous_n == 1:
            break

    return tuple(frozenset(block) for block in contents)


def _louvain_one_level(
    indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray, rng: random.Random
) -> tuple[np.ndarray, bool]:
    """One local-move pass; mirrors ``louvain._one_level`` on flat arrays."""
    n = indptr.size - 1
    node_order = list(range(n))
    community = np.arange(n, dtype=np.int64)
    degree = np.zeros(n, dtype=np.float64)
    np.add.at(degree, np.repeat(np.arange(n), np.diff(indptr)), weights)
    community_degree = degree.copy()
    total_weight = float(degree.sum()) / 2.0
    if total_weight == 0:
        return community, False

    improved_overall = False
    for _ in range(20):
        rng.shuffle(node_order)
        moved = False
        for node in node_order:
            start, end = int(indptr[node]), int(indptr[node + 1])
            row = indices[start:end]
            row_weights = weights[start:end]
            not_self = row != node
            neighbor_comms = community[row[not_self]]
            # Vectorized modularity gain: link weight to every neighbouring
            # community in one unique+bincount instead of a Python dict loop.
            candidates, inverse = np.unique(neighbor_comms, return_inverse=True)
            link_weights = np.bincount(
                inverse, weights=row_weights[not_self], minlength=candidates.size
            )
            current = int(community[node])
            node_degree = float(degree[node])
            community_degree[current] -= node_degree
            position = int(np.searchsorted(candidates, current))
            if position < candidates.size and int(candidates[position]) == current:
                link_current = float(link_weights[position])
            else:
                link_current = 0.0
            best_community = current
            best_gain = link_current - (
                float(community_degree[current]) * node_degree / (2.0 * total_weight)
            )
            for candidate, link_weight in zip(
                candidates.tolist(), link_weights.tolist()
            ):
                gain = link_weight - (
                    float(community_degree[candidate])
                    * node_degree
                    / (2.0 * total_weight)
                )
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = candidate
            community_degree[best_community] += node_degree
            if best_community != current:
                community[node] = best_community
                moved = True
                improved_overall = True
        if not moved:
            break

    # Renumber densely in first-encounter order over the node index order.
    uniq, first_positions, inverse = np.unique(
        community, return_index=True, return_inverse=True
    )
    dense_ids = np.empty(uniq.size, dtype=np.int64)
    dense_ids[np.argsort(first_positions, kind="stable")] = np.arange(uniq.size)
    return dense_ids[inverse], improved_overall


def _louvain_aggregate(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    contents: list[list[Node]],
    community: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[list[Node]]]:
    """Collapse communities into super nodes (dense accumulation, exact)."""
    n = indptr.size - 1
    k = int(community.max()) + 1
    new_contents: list[list[Node]] = [[] for _ in range(k)]
    for node, block in enumerate(community.tolist()):
        new_contents[block].extend(contents[node])
    dense = np.zeros((k, k), dtype=np.float64)
    row_ids = np.repeat(np.arange(n), np.diff(indptr))
    np.add.at(dense, (community[row_ids], community[indices]), weights)
    new_rows, new_cols = np.nonzero(dense)
    new_indptr = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(np.bincount(new_rows, minlength=k), out=new_indptr[1:])
    return new_indptr, new_cols.astype(np.int64, copy=False), dense[new_rows, new_cols], new_contents
