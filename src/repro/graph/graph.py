"""Undirected graph used throughout the LoCEC reproduction.

The WeChat friendship graph is undirected and simple (no self-loops, no
parallel edges).  This class stores adjacency as ``dict[node, set[node]]``
which is the structure every LoCEC phase needs: O(1) neighbour lookup for
ego-network extraction, fast membership checks for tightness computation,
and cheap iteration for community detection.

The class intentionally does *not* attach attribute dictionaries to nodes or
edges (unlike ``networkx``): node features and interaction counts live in
dedicated columnar stores (:class:`repro.graph.NodeFeatureStore` and
:class:`repro.graph.InteractionStore`) which mirrors how the paper separates
``G``, ``F`` and ``I``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, SelfLoopError
from repro.types import Edge, Node, canonical_edge


class Graph:
    """A simple undirected graph with set-based adjacency.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs to add at construction time.
    nodes:
        Optional iterable of nodes to add (useful for isolated nodes).

    Examples
    --------
    >>> g = Graph(edges=[(1, 2), (2, 3)])
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.has_edge(3, 2)
    True
    """

    __slots__ = ("_adj",)

    def __init__(
        self,
        edges: Iterable[tuple[Node, Node]] | None = None,
        nodes: Iterable[Node] | None = None,
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (no-op if it already exists)."""
        self._adj.setdefault(node, set())

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        try:
            neighbors = self._adj.pop(node)
        except KeyError:
            raise NodeNotFoundError(node) from None
        for other in neighbors:
            self._adj[other].discard(node)

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def nodes(self) -> Iterator[Node]:
        """Iterate over nodes in insertion order."""
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------ edges
    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``(u, v)``, creating endpoints as needed."""
        if u == v:
            raise SelfLoopError(u)
        self._adj.setdefault(u, set()).add(v)
        self._adj.setdefault(v, set()).add(u)

    def add_edges_from(self, edges: Iterable[tuple[Node, Node]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the undirected edge ``(u, v)``; endpoints are kept."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def has_edge(self, u: Node, v: Node) -> bool:
        neighbors = self._adj.get(u)
        return neighbors is not None and v in neighbors

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges, each reported once in canonical order.

        An edge is emitted the first time either endpoint is visited, which
        needs only an O(V) visited-node set rather than an O(E) seen-edge
        set; the emission order is unchanged (first-encounter order).
        """
        visited: set[Node] = set()
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if v not in visited:
                    yield canonical_edge(u, v)
            visited.add(u)

    @property
    def num_edges(self) -> int:
        return sum(len(neighbors) for neighbors in self._adj.values()) // 2

    # -------------------------------------------------------------- neighbours
    def neighbors(self, node: Node) -> set[Node]:
        """Return the neighbour set of ``node`` (a *copy-safe* frozen view).

        The returned set is the internal set; callers must not mutate it.
        Use :meth:`neighbor_list` when a mutable copy is needed.
        """
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbor_list(self, node: Node) -> list[Node]:
        """Return a mutable list copy of the neighbours of ``node``."""
        return list(self.neighbors(node))

    def degree(self, node: Node) -> int:
        return len(self.neighbors(node))

    def degrees(self) -> dict[Node, int]:
        """Degree of every node, keyed by node."""
        return {node: len(neighbors) for node, neighbors in self._adj.items()}

    # ---------------------------------------------------------------- subgraph
    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the induced subgraph on ``nodes``.

        Nodes absent from the graph are ignored, mirroring the behaviour a
        distributed shard sees when a friend-of-friend lives on another shard.
        """
        keep = {node for node in nodes if node in self._adj}
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for other in self._adj[node]:
                if other in keep:
                    sub.add_edge(node, other)
        return sub

    def copy(self) -> "Graph":
        """Return a deep copy of the graph structure."""
        clone = Graph()
        clone._adj = {node: set(neighbors) for node, neighbors in self._adj.items()}
        return clone

    # ------------------------------------------------------------------- dunder
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
