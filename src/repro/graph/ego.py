"""Ego-network extraction (LoCEC Phase I, division step).

The paper defines the ego network ``G_v`` of a user ``v`` as the sub-graph
induced on ``v``'s friends, with the ego node itself and its incident edges
*excluded* (Section IV-A).  Excluding the ego matters: if the ego were kept,
its star of edges would glue all friend circles into one giant community and
Girvan–Newman would return a single cluster.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.graph.graph import Graph
from repro.types import Node


def ego_network(graph: Graph, ego: Node) -> Graph:
    """Extract the ego network of ``ego``.

    Parameters
    ----------
    graph:
        The global friendship graph ``G``.
    ego:
        The ego node ``v``.

    Returns
    -------
    Graph
        The sub-graph induced on the ego's friends (the ego excluded).
        Friends with no mutual friendships appear as isolated nodes, so the
        node set of the result is always exactly ``neighbors(ego)``.
    """
    friends = graph.neighbors(ego)
    ego_net = Graph(nodes=friends)
    for friend in friends:
        for other in graph.neighbors(friend):
            if other in friends and other != friend:
                ego_net.add_edge(friend, other)
    return ego_net


def ego_networks(
    graph: Graph, egos: Iterable[Node] | None = None
) -> Iterator[tuple[Node, Graph]]:
    """Yield ``(ego, ego_network)`` pairs for ``egos`` (default: every node).

    This is the streaming, per-node decomposition the paper exploits for
    distributed processing: each ego network can be built and processed
    independently of all others.
    """
    if egos is None:
        egos = list(graph.nodes())
    for ego in egos:
        yield ego, ego_network(graph, ego)


def ego_network_size(graph: Graph, ego: Node) -> tuple[int, int]:
    """Return ``(num_friends, num_friend_edges)`` of the ego network of ``ego``.

    Useful for cost modelling without materialising the ego network: the
    dominant cost of Phase I for a node is governed by these two numbers.
    """
    friends = graph.neighbors(ego)
    edge_count = 0
    for friend in friends:
        edge_count += sum(1 for other in graph.neighbors(friend) if other in friends)
    return len(friends), edge_count // 2
