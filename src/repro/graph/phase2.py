"""NumPy kernel layer for Phase II feature aggregation.

Phase II (Equations 1-2, Algorithm 1) is dominated by interpreter-bound
gathers over :class:`repro.graph.interactions.InteractionStore` — the dict
path re-scans every member pair of a community once *per member*, costing
``O(k * |C|^2 * |I|)`` Python work per community.  This module compiles the
two Phase II stores into flat arrays once and then answers every
per-community question with batched NumPy gathers:

* :class:`InteractionMatrix` — CSR adjacency over a node <-> index interner
  (the same interning scheme as :class:`repro.graph.csr.CSRGraph`), with one
  dense ``|I|``-vector per directed edge entry.
* :class:`NodeFeatureMatrix` — a dense ``(n + 1) x |f|`` view of
  :class:`repro.graph.features.NodeFeatureStore`; the final all-zero row is
  the sentinel for nodes with no stored features, so batched gathers never
  branch on missing nodes.
* :class:`Phase2Kernel` — the compiled pair plus
  :meth:`Phase2Kernel.community_share_rows`, which computes every
  community's member-pair interaction totals **once** (``O(|C|^2)`` instead
  of ``O(k * |C|^2)``) and derives all requested members' Equation-2 share
  vectors from them in one shot, across a whole batch of communities, and
  :meth:`Phase2Kernel.community_tensor`, which scatters those batch rows
  directly into the zero-padded ``(n, 1, k, |I|+|f|)`` CommCNN input tensor
  with no intermediate per-community matrices.

The compiled stores support **delta compilation**: an update that only
changes values already representable in the snapshot — an existing edge's
interaction vector, an interned node's feature row — is patched in place
(:meth:`Phase2Kernel.patch_interaction`, :meth:`Phase2Kernel.patch_features`)
instead of recompiled; structural deltas (new nodes, new interaction edges)
report ``False`` and the caller falls back to a full recompile, so patched
and recompiled kernels always produce bit-identical community aggregates.

Parity contract: interaction counts are integer-valued in every workload the
repo generates, and sums of integers below 2^53 are exact in float64
regardless of accumulation order, so the share vectors — and everything
:class:`repro.core.aggregation.FeatureMatrixBuilder` derives from them —
match the dict path bit-for-bit (see ``tests/test_phase2_csr.py``).  With
non-integer counts the two paths agree to accumulation-order ulps.
"""

from __future__ import annotations

from typing import Collection, Iterable, Sequence

import numpy as np

from repro.graph.features import NodeFeatureStore
from repro.graph.interactions import InteractionStore
from repro.types import Node

__all__ = ["InteractionMatrix", "NodeFeatureMatrix", "Phase2Kernel"]


class InteractionMatrix:
    """CSR snapshot of an :class:`InteractionStore` over interned nodes.

    ``indices[indptr[i]:indptr[i + 1]]`` holds the (ascending) neighbour
    indices that node ``i`` has interactions with, and ``data`` carries the
    corresponding ``|I|``-vectors — one row per directed entry, so a row
    gather needs no canonical-edge bookkeeping.  Self-interactions are
    dropped at build time because the Equation-1 pair sums never include
    them.
    """

    __slots__ = ("indptr", "indices", "data", "num_dims")

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, num_dims: int
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.num_dims = num_dims

    @classmethod
    def from_store(
        cls, store: InteractionStore, index: dict[Node, int]
    ) -> "InteractionMatrix":
        """Compile ``store`` against an existing node -> dense-index interner.

        Edges with an endpoint outside ``index`` are skipped (mirroring how
        the dict path simply never looks them up).
        """
        n = len(index)
        num_dims = store.num_dims
        us: list[int] = []
        vs: list[int] = []
        vectors: list[np.ndarray] = []
        for (u, v), vector in store.items():
            if u == v:
                continue
            iu = index.get(u)
            iv = index.get(v)
            if iu is None or iv is None:
                continue
            us.append(iu)
            vs.append(iv)
            vectors.append(vector)
        num_edges = len(us)
        if num_edges == 0:
            return cls(
                np.zeros(n + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.zeros((0, num_dims), dtype=np.float64),
                num_dims,
            )
        iu = np.array(us, dtype=np.int64)
        iv = np.array(vs, dtype=np.int64)
        edge_data = np.array(vectors, dtype=np.float64)
        src = np.concatenate([iu, iv])
        dst = np.concatenate([iv, iu])
        edge_id = np.concatenate([np.arange(num_edges)] * 2)
        order = np.lexsort((dst, src))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(indptr, dst[order], edge_data[edge_id[order]], num_dims)

    @property
    def num_entries(self) -> int:
        """Number of directed (node, neighbour) entries (2x the edge count)."""
        return int(self.indices.size)

    def _entry_position(self, src: int, dst: int) -> int:
        """Position of the directed entry ``src -> dst`` in ``data``, or -1.

        Within-row neighbour indices are ascending by construction (the
        build lexsort orders on ``(src, dst)``), so the lookup is a binary
        search over the row slice.
        """
        start = int(self.indptr[src])
        stop = int(self.indptr[src + 1])
        pos = start + int(np.searchsorted(self.indices[start:stop], dst))
        if pos < stop and int(self.indices[pos]) == dst:
            return pos
        return -1

    def patch_edge(self, iu: int, iv: int, vector: np.ndarray) -> bool:
        """Overwrite both directed data rows of interned pair ``(iu, iv)``.

        Delta compilation: an interaction update on an edge the CSR already
        holds is a two-row in-place write, no recompile.  Returns ``False``
        — and writes nothing — when either directed entry is absent (a new
        edge needs a structural recompile); both positions are located
        before the first write, so a failed patch never leaves the matrix
        half-updated.
        """
        pos_uv = self._entry_position(iu, iv)
        if pos_uv < 0:
            return False
        pos_vu = self._entry_position(iv, iu)
        if pos_vu < 0:
            return False
        self.data[pos_uv] = vector
        self.data[pos_vu] = vector
        return True


class NodeFeatureMatrix:
    """Dense ``(n + 1) x |f|`` view of a :class:`NodeFeatureStore`.

    Row ``i`` is the feature vector of interned node ``i``; the final row is
    all-zero and acts as the sentinel for nodes with no stored features, so
    ``dense[ids]`` is a total function over any id batch.
    """

    __slots__ = ("dense", "num_features")

    def __init__(self, dense: np.ndarray) -> None:
        self.dense = dense
        self.num_features = int(dense.shape[1])

    @classmethod
    def from_store(
        cls, store: NodeFeatureStore, index: dict[Node, int]
    ) -> "NodeFeatureMatrix":
        dense = np.zeros((len(index) + 1, store.num_features), dtype=np.float64)
        for node in store.nodes():
            i = index.get(node)
            if i is not None:
                dense[i] = store.get_view(node)
        return cls(dense)

    def rows(self, ids: np.ndarray) -> np.ndarray:
        """Feature rows for a batch of interned ids (sentinel-safe)."""
        return self.dense[ids]

    def patch_row(self, row: int, values: np.ndarray) -> None:
        """Overwrite one interned node's feature row in place (delta path)."""
        self.dense[row] = values


class Phase2Kernel:
    """Compiled Phase II state: interaction CSR + dense feature matrix.

    Compile once per (features, interactions) pair — typically per pipeline
    ``fit`` — and reuse across every community.  The kernel snapshots the
    stores; mutations made to them afterwards are not reflected.
    """

    __slots__ = ("interactions", "features", "_index", "_sentinel")

    def __init__(
        self,
        interactions: InteractionMatrix,
        features: NodeFeatureMatrix,
        index: dict[Node, int],
    ) -> None:
        self.interactions = interactions
        self.features = features
        self._index = index
        self._sentinel = len(index)

    @classmethod
    def compile(
        cls,
        features: NodeFeatureStore,
        interactions: InteractionStore,
        nodes: Iterable[Node] | None = None,
    ) -> "Phase2Kernel":
        """Intern every node of both stores (or the given ``nodes``) and compile.

        The interner order is deterministic: interaction endpoints in store
        iteration order, then feature-store nodes not already seen.
        """
        index: dict[Node, int] = {}
        if nodes is not None:
            for node in nodes:
                if node not in index:
                    index[node] = len(index)
        else:
            for u, v in interactions.edges_with_interaction():
                if u not in index:
                    index[u] = len(index)
                if v not in index:
                    index[v] = len(index)
            for node in features.nodes():
                if node not in index:
                    index[node] = len(index)
        return cls(
            InteractionMatrix.from_store(interactions, index),
            NodeFeatureMatrix.from_store(features, index),
            index,
        )

    @property
    def num_nodes(self) -> int:
        return len(self._index)

    def intern(self, nodes: Sequence[Node]) -> np.ndarray:
        """Interned ids of ``nodes``; unknown nodes map to the zero-row sentinel."""
        get = self._index.get
        sentinel = self._sentinel
        return np.fromiter(
            (get(node, sentinel) for node in nodes), dtype=np.int64, count=len(nodes)
        )

    def feature_rows(self, nodes: Sequence[Node]) -> np.ndarray:
        """``len(nodes) x |f|`` feature matrix (unknown nodes -> zero rows)."""
        return self.features.rows(self.intern(nodes))

    # ------------------------------------------------------ delta compilation
    def patch_interaction(self, u: Node, v: Node, vector: np.ndarray | None) -> bool:
        """Patch the compiled interaction entry for ``(u, v)`` in place.

        ``vector`` is the edge's *new* per-dimension count vector; ``None``
        (or all zeros) marks a removed interaction — the CSR slot is zeroed
        rather than deleted, which is output-exact because a zero vector
        contributes exactly ``0.0`` to every Equation-1 pair sum, the same
        as the recompiled kernel that drops the entry.  Returns ``False``
        when the delta cannot be expressed as an in-place write (an
        endpoint outside the interner, or a brand-new edge with no CSR
        slot): the caller must fall back to a full recompile to stay
        bit-identical.  Self-interactions are ``True`` no-ops — Equation 1
        never includes them, patched or recompiled.
        """
        iu = self._index.get(u)
        iv = self._index.get(v)
        if iu is None or iv is None:
            return False
        if iu == iv:
            return True
        num_dims = self.interactions.num_dims
        if vector is None:
            data = np.zeros(num_dims, dtype=np.float64)
        else:
            data = np.asarray(vector, dtype=np.float64)
            if data.shape != (num_dims,):
                raise ValueError(
                    f"interaction vector must have shape ({num_dims},), "
                    f"got {data.shape}"
                )
        return self.interactions.patch_edge(iu, iv, data)

    def patch_features(self, node: Node, values: np.ndarray) -> bool:
        """Patch one node's compiled feature row in place.

        Returns ``False`` when ``node`` is outside the interner (a recompile
        would widen the dense matrix — the caller must recompile instead).
        """
        i = self._index.get(node)
        if i is None:
            return False
        row = np.asarray(values, dtype=np.float64)
        if row.shape != (self.features.num_features,):
            raise ValueError(
                f"feature vector must have shape ({self.features.num_features},), "
                f"got {row.shape}"
            )
        self.features.patch_row(i, row)
        return True

    # ------------------------------------------------------ Equation 1/2 batch
    def community_rows_batch(
        self, communities: Sequence[tuple[Collection[Node], Sequence[Node]]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Full Phase II rows for a batch of communities, in one sweep.

        Each item is ``(members, selected)``: the full member set (defining
        the Equation-1 pair totals) and the members whose rows are wanted, in
        row order.  Returns ``(rows, offsets)`` where ``rows`` is a
        ``sum(len(selected)) x (|I| + |f|)`` matrix — Equation-2 share block
        followed by the individual-feature block — and community ``c`` owns
        ``rows[offsets[c]:offsets[c + 1]]``.

        The member-pair totals of every community are found together: member
        adjacency rows are gathered from the CSR arrays, and a single
        ``searchsorted`` against per-community keys ``c * n + member`` keeps
        exactly the entries whose neighbour is a fellow member of the same
        community.  Per-member totals then reduce via ``bincount`` and pair
        totals via one more segment sum (each pair is seen from both
        endpoints, and halving the double-count is exact in float64).  No
        per-community NumPy call remains — total cost is a fixed number of
        array ops regardless of the batch size.
        """
        num_comms = len(communities)
        num_dims = self.interactions.num_dims
        num_columns = num_dims + self.features.num_features
        index_get = self._index.get
        n = self._sentinel

        sel_sizes = np.fromiter(
            (len(selected) for _, selected in communities),
            dtype=np.int64,
            count=num_comms,
        )
        offsets = np.zeros(num_comms + 1, dtype=np.int64)
        np.cumsum(sel_sizes, out=offsets[1:])
        total_selected = int(offsets[-1])
        rows = np.zeros((total_selected, num_columns))
        if num_comms == 0:
            return rows, offsets

        # Interned member ids per community (missing nodes dropped — they
        # cannot contribute interactions) and interned selected ids (missing
        # nodes kept as -1 so their rows resolve to the zero sentinel).
        member_ids: list[int] = []
        member_sizes = np.zeros(num_comms, dtype=np.int64)
        selected_ids: list[int] = []
        for c, (members, selected) in enumerate(communities):
            count = 0
            for member in members:
                i = index_get(member)
                if i is not None:
                    member_ids.append(i)
                    count += 1
            member_sizes[c] = count
            for member in selected:
                selected_ids.append(index_get(member, -1))
        total_members = len(member_ids)
        sel_ids = np.array(selected_ids, dtype=np.int64)

        # Individual-feature block: one dense gather (sentinel-safe).
        rows[:, num_dims:] = self.features.dense[np.where(sel_ids < 0, n, sel_ids)]

        if total_members == 0:
            return rows, offsets

        comm_of_member = np.repeat(np.arange(num_comms), member_sizes)
        all_members = np.array(member_ids, dtype=np.int64)
        order = np.lexsort((all_members, comm_of_member))
        all_members = all_members[order]
        # keys is globally sorted: ascending by community, then by member id.
        # The stride is n + 1 (not n) so the sentinel id ``n`` used for
        # missing selected nodes below can never alias a real member of a
        # neighbouring community.
        stride = n + 1
        keys = comm_of_member * stride + all_members

        # Per-member interaction totals restricted to fellow members.
        node_totals = np.zeros((total_members + 1, num_dims))  # +1: sentinel row
        indptr = self.interactions.indptr
        starts = indptr[all_members]
        counts = indptr[all_members + 1] - starts
        total_entries = int(counts.sum())
        if total_entries:
            seg = np.repeat(np.arange(total_members), counts)
            entry_offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
            positions = (
                np.arange(total_entries)
                - np.repeat(entry_offsets, counts)
                + np.repeat(starts, counts)
            )
            neighbor = self.interactions.indices[positions]
            query = comm_of_member[seg] * stride + neighbor
            pos = np.minimum(np.searchsorted(keys, query), keys.size - 1)
            valid = keys[pos] == query
            matched = self.interactions.data[positions[valid]]
            seg_valid = seg[valid]
            for dim in range(num_dims):
                node_totals[:total_members, dim] = np.bincount(
                    seg_valid, weights=matched[:, dim], minlength=total_members
                )

        # Pair totals per community: every pair is counted once from each
        # endpoint, and halving the double-count is exact for integer sums.
        pair_totals = np.empty((num_comms, num_dims))
        for dim in range(num_dims):
            pair_totals[:, dim] = np.bincount(
                comm_of_member,
                weights=node_totals[:total_members, dim],
                minlength=num_comms,
            )
        pair_totals /= 2.0

        # Selected rows resolve into node_totals through the same key space;
        # non-members and unknown nodes miss and land on the sentinel row.
        comm_of_selected = np.repeat(np.arange(num_comms), sel_sizes)
        sel_keys = comm_of_selected * stride + np.where(sel_ids < 0, n, sel_ids)
        pos = np.minimum(np.searchsorted(keys, sel_keys), keys.size - 1)
        gathered = np.where(keys[pos] == sel_keys, pos, total_members)
        numerators = node_totals[gathered]
        denominators = pair_totals[comm_of_selected]
        np.divide(
            numerators,
            denominators,
            out=rows[:, :num_dims],
            where=denominators > 0.0,
        )
        return rows, offsets

    def community_statistics(
        self,
        communities: Sequence[tuple[Collection[Node], Sequence[Node]]],
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Mean/std statistic vectors for a batch of communities.

        Each item is ``(members, ordered)`` where ``ordered`` is the full
        tightness ordering (not truncated to ``k``); row ``c`` of the result
        is the ``2 * (|I| + |f|) + 1`` LoCEC-XGB vector — mean block, std
        block, community size.  The segment reductions replay exactly the
        arithmetic of ``rows.mean(axis=0)`` / ``rows.std(axis=0)`` on each
        community's row block — sequential sums in row order, one divide,
        one sqrt — so the result is bit-identical to the dict aggregation
        path, and (because every reduction is per-community) independent of
        how the batch is split: computing a shard's communities alone yields
        the same rows as computing them inside the full batch.  That
        invariance is what the sharded Phase II runner relies on.

        ``out`` (optional) is the preallocated target to fill in place; a
        fresh zero matrix is allocated when omitted.
        """
        num_comms = len(communities)
        columns = self.interactions.num_dims + self.features.num_features
        if out is None:
            out = np.zeros((num_comms, 2 * columns + 1), dtype=np.float64)
        if num_comms == 0:
            return out
        rows, offsets = self.community_rows_batch(communities)
        counts = np.diff(offsets)
        comm_of_row = np.repeat(np.arange(num_comms), counts)
        sums = np.empty((num_comms, columns))
        for column in range(columns):
            sums[:, column] = np.bincount(
                comm_of_row, weights=rows[:, column], minlength=num_comms
            )
        mean = sums / counts[:, None]
        deviations = rows - mean[comm_of_row]
        deviations *= deviations
        for column in range(columns):
            sums[:, column] = np.bincount(
                comm_of_row, weights=deviations[:, column], minlength=num_comms
            )
        out[:, :columns] = mean
        out[:, columns : 2 * columns] = np.sqrt(sums / counts[:, None])
        out[:, -1] = counts
        return out

    def community_share_rows(
        self, communities: Sequence[tuple[Collection[Node], Sequence[Node]]]
    ) -> list[np.ndarray]:
        """Equation-2 share vectors per community (views into one batch array)."""
        rows, offsets = self.community_rows_batch(communities)
        num_dims = self.interactions.num_dims
        return [
            rows[offsets[c] : offsets[c + 1], :num_dims]
            for c in range(len(communities))
        ]

    def community_tensor(
        self,
        communities: Sequence[tuple[Collection[Node], Sequence[Node]]],
        k: int,
    ) -> np.ndarray:
        """CNN input tensor ``(n, 1, k, |I| + |f|)`` straight from batch rows.

        One fancy-index scatter places every community's Phase II rows into
        its zero-padded ``k``-row slab — no intermediate per-community
        ``CommunityFeatureMatrix`` objects, no Python loop over communities.
        Each ``selected`` list must already be truncated to at most ``k``
        members (the aggregation layer guarantees this).
        """
        rows, offsets = self.community_rows_batch(communities)
        num_comms = len(communities)
        num_columns = self.interactions.num_dims + self.features.num_features
        tensor = np.zeros((num_comms, 1, k, num_columns), dtype=np.float64)
        if rows.shape[0] == 0:
            return tensor
        counts = np.diff(offsets)
        if counts.max() > k:
            raise ValueError(
                f"selected member lists must hold at most k={k} rows, "
                f"got {int(counts.max())}"
            )
        comm_of_row = np.repeat(np.arange(num_comms), counts)
        row_within = np.arange(rows.shape[0]) - np.repeat(offsets[:-1], counts)
        tensor[comm_of_row, 0, row_within] = rows
        return tensor
