"""Basic random-graph generators used in tests and micro-benchmarks.

The realistic WeChat-like generator lives in :mod:`repro.synthetic`; the
functions here produce small structural test fixtures (Erdős–Rényi,
Barabási–Albert, planted partitions, cliques and the paper's Figure 7
example network).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.exceptions import DatasetError
from repro.graph.graph import Graph


def erdos_renyi(num_nodes: int, edge_prob: float, seed: int | None = None) -> Graph:
    """Erdős–Rényi ``G(n, p)`` random graph."""
    if num_nodes < 0:
        raise DatasetError("num_nodes must be non-negative")
    if not 0.0 <= edge_prob <= 1.0:
        raise DatasetError("edge_prob must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(nodes=range(num_nodes))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_prob:
                graph.add_edge(u, v)
    return graph


def barabasi_albert(num_nodes: int, edges_per_node: int, seed: int | None = None) -> Graph:
    """Barabási–Albert preferential-attachment graph.

    Produces the heavy-tailed degree distribution typical of friendship
    graphs, which stresses the ego-network extraction path.
    """
    if edges_per_node < 1:
        raise DatasetError("edges_per_node must be >= 1")
    if num_nodes <= edges_per_node:
        raise DatasetError("num_nodes must exceed edges_per_node")
    rng = random.Random(seed)
    graph = Graph(nodes=range(num_nodes))
    # Start from a small clique so early targets exist.
    targets = list(range(edges_per_node + 1))
    for u in targets:
        for v in targets:
            if u < v:
                graph.add_edge(u, v)
    repeated: list[int] = []
    for node in targets:
        repeated.extend([node] * graph.degree(node))
    for new_node in range(edges_per_node + 1, num_nodes):
        chosen: set[int] = set()
        while len(chosen) < edges_per_node:
            chosen.add(rng.choice(repeated))
        for target in chosen:
            graph.add_edge(new_node, target)
            repeated.extend([new_node, target])
    return graph


def planted_partition(
    community_sizes: Sequence[int],
    intra_prob: float,
    inter_prob: float,
    seed: int | None = None,
) -> tuple[Graph, list[list[int]]]:
    """Planted-partition graph: dense inside blocks, sparse between blocks.

    Returns the graph and the list of planted communities (lists of node ids).
    This is the canonical fixture for validating community detection.
    """
    if not 0.0 <= inter_prob <= intra_prob <= 1.0:
        raise DatasetError("expected 0 <= inter_prob <= intra_prob <= 1")
    rng = random.Random(seed)
    graph = Graph()
    communities: list[list[int]] = []
    next_id = 0
    for size in community_sizes:
        block = list(range(next_id, next_id + size))
        next_id += size
        communities.append(block)
        for node in block:
            graph.add_node(node)
    for ci, block in enumerate(communities):
        for i, u in enumerate(block):
            for v in block[i + 1 :]:
                if rng.random() < intra_prob:
                    graph.add_edge(u, v)
        for other in communities[ci + 1 :]:
            for u in block:
                for v in other:
                    if rng.random() < inter_prob:
                        graph.add_edge(u, v)
    return graph, communities


def clique(num_nodes: int, offset: int = 0) -> Graph:
    """Complete graph on ``num_nodes`` nodes, ids starting at ``offset``."""
    graph = Graph(nodes=range(offset, offset + num_nodes))
    nodes = list(range(offset, offset + num_nodes))
    for i, u in enumerate(nodes):
        for v in nodes[i + 1 :]:
            graph.add_edge(u, v)
    return graph


def paper_figure7_network() -> Graph:
    """The nine-node example network of Figure 7(a) in the paper.

    Node 1 is the ego node used in the paper's running example.  Its ego
    network splits into two local communities ``{2, 3, 4}`` and ``{5, 6}``,
    and node 4 has tightness 2/3 to the first community because it also
    connects to node 6.
    """
    graph = Graph()
    edges = [
        (1, 2), (1, 3), (1, 4), (1, 5), (1, 6),
        (2, 3), (2, 4), (3, 4),
        (5, 6), (4, 6),
        (6, 9),
        (5, 7), (7, 8), (5, 8),
    ]
    graph.add_edges_from(edges)
    return graph


def paper_figure1_network() -> Graph:
    """The example network of Figure 1 in the paper (users U1..U9).

    Integer node ``i`` stands for user ``U_i``.  U1's ego network contains
    U2..U6 and splits into communities ``{U2, U3, U4}`` and ``{U5, U6}``;
    U2's ego network contains U1, U3, U4 and U7.
    """
    graph = Graph()
    edges = [
        (1, 2), (1, 3), (1, 4), (1, 5), (1, 6),
        (2, 3), (2, 4), (3, 4),
        (5, 6),
        (2, 7), (7, 8),
        (6, 9),
    ]
    graph.add_edges_from(edges)
    return graph
