"""Graph substrate: undirected graphs, ego networks, feature and interaction stores.

Two interchangeable graph backends live here:

* :class:`Graph` — the pure-Python ``dict[node, set[node]]`` reference.  It
  is the mutable, readable implementation every algorithm is specified
  against, and the fallback when NumPy is unavailable.
* :class:`CSRGraph` (:mod:`repro.graph.csr`) — an immutable NumPy CSR
  snapshot with vectorized kernels for the Phase I hot paths (ego-network
  extraction, edge betweenness, Girvan-Newman, tightness, Louvain gains).

The Phase II stores get the same treatment in :mod:`repro.graph.phase2`:
:class:`Phase2Kernel` compiles :class:`InteractionStore` /
:class:`NodeFeatureStore` into an :class:`InteractionMatrix` (CSR) plus a
dense :class:`NodeFeatureMatrix`, and
``repro.core.aggregation.FeatureMatrixBuilder(..., backend="auto")`` routes
Algorithm 1 / statistic aggregation through it with bit-identical output.

Which to use: build the graph with :class:`Graph`, then let
``repro.core.division.divide(..., backend="auto")`` (the default) route hot
loops through CSR — both backends produce identical communities and
tightness values, so the knob is purely about speed.  Pick
``backend="dict"`` only when debugging kernel parity or running without
NumPy.  Measured kernel speeds live in ``BENCH_kernels.json`` at the repo
root (written by ``scripts/perf_report.py``): each entry records
``seconds_per_op``/``ops_per_sec`` per kernel and scale, and the
``phase1_division_small`` pair is the headline dict-vs-CSR comparison —
regenerate it with ``python scripts/perf_report.py --update`` after touching
any kernel, and CI fails if a kernel regresses >30% against the committed
baseline.
"""

try:  # CSR layer requires NumPy; the dict backend must work without it.
    from repro.graph.csr import (
        CSRGraph,
        community_tightness_csr,
        edge_betweenness_csr,
        ego_network_csr,
        girvan_newman_csr,
        louvain_communities_csr,
    )
    from repro.graph.phase2 import (
        InteractionMatrix,
        NodeFeatureMatrix,
        Phase2Kernel,
    )
    from repro.graph.shm import (
        Phase2ShmHandle,
        SharedCSRGraph,
        SharedPhase2Kernel,
        ShmHandle,
        ShmLease,
        shm_supported,
    )
except ImportError:  # pragma: no cover - exercised only on NumPy-less hosts
    CSRGraph = None  # type: ignore[assignment,misc]
    community_tightness_csr = None  # type: ignore[assignment]
    edge_betweenness_csr = None  # type: ignore[assignment]
    ego_network_csr = None  # type: ignore[assignment]
    girvan_newman_csr = None  # type: ignore[assignment]
    louvain_communities_csr = None  # type: ignore[assignment]
    InteractionMatrix = None  # type: ignore[assignment,misc]
    NodeFeatureMatrix = None  # type: ignore[assignment,misc]
    Phase2Kernel = None  # type: ignore[assignment,misc]
    Phase2ShmHandle = None  # type: ignore[assignment,misc]
    SharedCSRGraph = None  # type: ignore[assignment,misc]
    SharedPhase2Kernel = None  # type: ignore[assignment,misc]
    ShmHandle = None  # type: ignore[assignment,misc]
    ShmLease = None  # type: ignore[assignment,misc]
    shm_supported = None  # type: ignore[assignment]
from repro.graph.ego import ego_network, ego_network_size, ego_networks
from repro.graph.features import NodeFeatureStore
from repro.graph.graph import Graph
from repro.graph.interactions import InteractionStore
from repro.graph.io import (
    csr_npz_fingerprint,
    load_csr_npz,
    load_dataset_json,
    read_edge_list,
    read_labeled_edges,
    save_csr_npz,
    save_dataset_json,
    write_edge_list,
    write_labeled_edges,
)

__all__ = [
    "CSRGraph",
    "Graph",
    "InteractionMatrix",
    "InteractionStore",
    "NodeFeatureMatrix",
    "NodeFeatureStore",
    "Phase2Kernel",
    "community_tightness_csr",
    "edge_betweenness_csr",
    "ego_network",
    "ego_network_csr",
    "ego_networks",
    "ego_network_size",
    "girvan_newman_csr",
    "louvain_communities_csr",
    "Phase2ShmHandle",
    "SharedCSRGraph",
    "SharedPhase2Kernel",
    "ShmHandle",
    "ShmLease",
    "shm_supported",
    "read_edge_list",
    "write_edge_list",
    "read_labeled_edges",
    "write_labeled_edges",
    "save_dataset_json",
    "load_dataset_json",
    "save_csr_npz",
    "load_csr_npz",
    "csr_npz_fingerprint",
]
