"""Graph substrate: undirected graphs, ego networks, feature and interaction stores."""

from repro.graph.ego import ego_network, ego_network_size, ego_networks
from repro.graph.features import NodeFeatureStore
from repro.graph.graph import Graph
from repro.graph.interactions import InteractionStore
from repro.graph.io import (
    load_dataset_json,
    read_edge_list,
    read_labeled_edges,
    save_dataset_json,
    write_edge_list,
    write_labeled_edges,
)

__all__ = [
    "Graph",
    "InteractionStore",
    "NodeFeatureStore",
    "ego_network",
    "ego_networks",
    "ego_network_size",
    "read_edge_list",
    "write_edge_list",
    "read_labeled_edges",
    "write_labeled_edges",
    "save_dataset_json",
    "load_dataset_json",
]
