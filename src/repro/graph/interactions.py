"""Sparse per-edge interaction counts (the paper's matrices ``I``).

The paper models user interactions as ``|I|`` matrices of size ``n × n``
where entry ``I^j_{uv}`` counts how many times ``u`` and ``v`` interacted on
dimension ``j`` (messaging, liking pictures, commenting on articles, ...).
At WeChat scale those matrices are enormously sparse — around 60 % of friend
pairs have *no* interaction at all over a month — so this store keeps a
single dict keyed by canonical edge whose values are dense NumPy vectors of
length ``|I|``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.exceptions import DimensionMismatchError, FeatureError
from repro.types import Edge, InteractionDim, Node, canonical_edge


class InteractionStore:
    """Sparse storage of interaction counts on undirected edges.

    Parameters
    ----------
    num_dims:
        Number of interaction dimensions ``|I|``.  Defaults to the seven
        WeChat-style dimensions of :class:`repro.types.InteractionDim`.

    Examples
    --------
    >>> store = InteractionStore()
    >>> store.record(1, 2, InteractionDim.MESSAGE, count=3)
    >>> store.get(2, 1, InteractionDim.MESSAGE)
    3.0
    >>> store.get(1, 5, InteractionDim.MESSAGE)
    0.0
    """

    __slots__ = ("_num_dims", "_counts", "_version")

    def __init__(self, num_dims: int = InteractionDim.count()) -> None:
        if num_dims <= 0:
            raise FeatureError("num_dims must be positive")
        self._num_dims = int(num_dims)
        self._counts: dict[Edge, np.ndarray] = {}
        self._version = 0

    @property
    def num_dims(self) -> int:
        """The number of interaction dimensions ``|I|``."""
        return self._num_dims

    @property
    def version(self) -> int:
        """Write counter; compiled snapshots use it to detect staleness."""
        return self._version

    @property
    def num_edges_with_interaction(self) -> int:
        """Number of edges that have at least one recorded interaction."""
        return len(self._counts)

    # ------------------------------------------------------------------ writes
    def record(self, u: Node, v: Node, dim: int, count: float = 1.0) -> None:
        """Add ``count`` interactions of dimension ``dim`` between ``u`` and ``v``."""
        self._check_dim(dim)
        edge = canonical_edge(u, v)
        vector = self._counts.get(edge)
        if vector is None:
            vector = np.zeros(self._num_dims, dtype=np.float64)
            self._counts[edge] = vector
        vector[int(dim)] += count
        self._version += 1

    def set_vector(self, u: Node, v: Node, vector: np.ndarray) -> None:
        """Replace the whole interaction vector of edge ``(u, v)``."""
        arr = np.asarray(vector, dtype=np.float64)
        if arr.shape != (self._num_dims,):
            raise DimensionMismatchError(
                f"expected vector of shape ({self._num_dims},), got {arr.shape}"
            )
        if np.any(arr < 0):
            raise FeatureError("interaction counts must be non-negative")
        edge = canonical_edge(u, v)
        if np.any(arr > 0):
            self._counts[edge] = arr.copy()
        else:
            self._counts.pop(edge, None)
        self._version += 1

    def update_from(
        self, records: Iterable[tuple[Node, Node, int, float]]
    ) -> None:
        """Bulk-record ``(u, v, dim, count)`` tuples."""
        for u, v, dim, count in records:
            self.record(u, v, dim, count)

    # ------------------------------------------------------------------- reads
    def get(self, u: Node, v: Node, dim: int) -> float:
        """Return ``I^dim_{uv}`` (0.0 when the pair never interacted)."""
        self._check_dim(dim)
        vector = self._counts.get(canonical_edge(u, v))
        return float(vector[int(dim)]) if vector is not None else 0.0

    def vector(self, u: Node, v: Node) -> np.ndarray:
        """Return the full interaction vector of edge ``(u, v)`` (a copy)."""
        vector = self._counts.get(canonical_edge(u, v))
        if vector is None:
            return np.zeros(self._num_dims, dtype=np.float64)
        return vector.copy()

    def vector_view(self, u: Node, v: Node) -> np.ndarray | None:
        """Read-only, no-copy view of edge ``(u, v)``'s vector, or ``None``.

        The batch accessor for hot loops (Equation 1/2 pair scans): unlike
        :meth:`vector` it neither copies nor materialises zeros for silent
        edges — callers skip ``None`` instead of adding a zero vector.  The
        returned array is not writable.
        """
        vector = self._counts.get(canonical_edge(u, v))
        if vector is None:
            return None
        view = vector.view()
        view.flags.writeable = False
        return view

    def total(self, u: Node, v: Node) -> float:
        """Total interactions between ``u`` and ``v`` across all dimensions."""
        vector = self._counts.get(canonical_edge(u, v))
        return float(vector.sum()) if vector is not None else 0.0

    def has_interaction(self, u: Node, v: Node) -> bool:
        return canonical_edge(u, v) in self._counts

    def edges_with_interaction(self) -> Iterator[Edge]:
        return iter(self._counts)

    def items(self) -> Iterator[tuple[Edge, np.ndarray]]:
        """Iterate ``(edge, vector)`` pairs; vectors are the internal arrays."""
        return iter(self._counts.items())

    # --------------------------------------------------------------- utilities
    def restrict_to(self, nodes: Iterable[Node]) -> "InteractionStore":
        """Return a new store containing only interactions between ``nodes``."""
        keep = set(nodes)
        restricted = InteractionStore(self._num_dims)
        for (u, v), vector in self._counts.items():
            if u in keep and v in keep:
                restricted._counts[(u, v)] = vector.copy()
        return restricted

    def sparsity(self, total_edges: int) -> float:
        """Fraction of ``total_edges`` with *no* recorded interaction."""
        if total_edges <= 0:
            return 0.0
        silent = total_edges - len(self._counts)
        return max(0.0, silent / total_edges)

    def as_mapping(self) -> Mapping[Edge, np.ndarray]:
        """A read-only view of the underlying edge → vector mapping."""
        return dict(self._counts)

    def _check_dim(self, dim: int) -> None:
        if not 0 <= int(dim) < self._num_dims:
            raise FeatureError(
                f"interaction dimension {dim} out of range [0, {self._num_dims})"
            )

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return (
            f"InteractionStore(num_dims={self._num_dims}, "
            f"edges_with_interaction={len(self._counts)})"
        )
