"""Moments interaction analyses: Figure 3 (like/comment rates) and Figure 4 (CDF)."""

from __future__ import annotations

from repro.analysis.cdf import empirical_cdf
from repro.graph.interactions import InteractionStore
from repro.types import Edge, MomentsCategory, RelationType


def interaction_rate_by_category(
    interactions: InteractionStore,
    edge_types: dict[Edge, RelationType],
    behaviour: str = "like",
) -> dict[RelationType, dict[MomentsCategory, float]]:
    """Figure 3: fraction of pairs of each type that interacted per Moments category.

    Parameters
    ----------
    behaviour:
        ``"like"`` (Figure 3a) or ``"comment"`` (Figure 3b).
    """
    if behaviour not in {"like", "comment"}:
        raise ValueError("behaviour must be 'like' or 'comment'")
    totals: dict[RelationType, int] = {
        relation: 0 for relation in RelationType.classification_targets()
    }
    hits: dict[RelationType, dict[MomentsCategory, int]] = {
        relation: {category: 0 for category in MomentsCategory}
        for relation in RelationType.classification_targets()
    }
    for (u, v), relation in edge_types.items():
        if relation not in totals:
            continue
        totals[relation] += 1
        for category in MomentsCategory:
            dim = category.like_dim if behaviour == "like" else category.comment_dim
            if interactions.get(u, v, dim) > 0:
                hits[relation][category] += 1
    return {
        relation: {
            category: (hits[relation][category] / totals[relation] if totals[relation] else 0.0)
            for category in MomentsCategory
        }
        for relation in totals
    }


def total_interactions_per_pair(
    interactions: InteractionStore, edge_types: dict[Edge, RelationType]
) -> dict[RelationType, list[float]]:
    """Total Moments+message interaction count of every pair, bucketed by type."""
    per_type: dict[RelationType, list[float]] = {
        relation: [] for relation in RelationType.classification_targets()
    }
    for (u, v), relation in edge_types.items():
        if relation not in per_type:
            continue
        per_type[relation].append(interactions.total(u, v))
    return per_type


def interaction_count_cdf(
    interactions: InteractionStore,
    edge_types: dict[Edge, RelationType],
    points: list[int] = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
) -> dict[RelationType, list[float]]:
    """Figure 4: CDF of the number of interactions per relationship type."""
    per_type = total_interactions_per_pair(interactions, edge_types)
    return {
        relation: empirical_cdf(values, list(points))
        for relation, values in per_type.items()
    }


def silent_pair_fraction(
    interactions: InteractionStore, edge_types: dict[Edge, RelationType]
) -> dict[RelationType, float]:
    """Fraction of pairs of each type with zero interactions (the sparsity headline)."""
    per_type = total_interactions_per_pair(interactions, edge_types)
    return {
        relation: (sum(1 for value in values if value == 0) / len(values) if values else 0.0)
        for relation, values in per_type.items()
    }
