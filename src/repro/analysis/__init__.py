"""Dataset analyses reproducing the paper's Section II and parameter studies."""

from repro.analysis.cdf import cdf_table, empirical_cdf, median, percentile
from repro.analysis.community_stats import (
    community_size_cdf,
    mean_size_by_type,
    median_community_size,
    type_distributions,
)
from repro.analysis.group_stats import (
    common_group_cdf,
    common_groups_per_pair,
    pairs_with_no_common_group,
)
from repro.analysis.moments_stats import (
    interaction_count_cdf,
    interaction_rate_by_category,
    silent_pair_fraction,
    total_interactions_per_pair,
)
from repro.analysis.survey_stats import format_table1, major_type_share, table1_rows

__all__ = [
    "empirical_cdf",
    "cdf_table",
    "percentile",
    "median",
    "common_group_cdf",
    "common_groups_per_pair",
    "pairs_with_no_common_group",
    "interaction_rate_by_category",
    "interaction_count_cdf",
    "total_interactions_per_pair",
    "silent_pair_fraction",
    "community_size_cdf",
    "median_community_size",
    "type_distributions",
    "mean_size_by_type",
    "table1_rows",
    "major_type_share",
    "format_table1",
]
