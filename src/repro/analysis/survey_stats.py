"""Survey statistics (Table I)."""

from __future__ import annotations

from repro.synthetic.survey import SurveyResult
from repro.types import RelationType


def table1_rows(survey: SurveyResult) -> list[tuple[str, float, str, float]]:
    """Rows of Table I: (first category, ratio, second category, ratio).

    Second categories with zero observations are omitted; the "Unknown"
    second-category bucket per first category collects the edges whose second
    category was left unspecified.
    """
    first = survey.first_category_ratios()
    second = survey.second_category_ratios()

    # Unspecified second categories per first category.
    unknown: dict[RelationType, int] = {relation: 0 for relation in RelationType}
    for item in survey.labeled_edges:
        if item.second_category is None:
            unknown[item.label] += 1
    total = max(survey.num_labeled, 1)

    rows: list[tuple[str, float, str, float]] = []
    for relation in (
        RelationType.FAMILY,
        RelationType.COLLEAGUE,
        RelationType.SCHOOLMATE,
        RelationType.OTHER,
    ):
        first_ratio = first.get(relation, 0.0)
        second_rows: list[tuple[str, float]] = []
        for category, ratio in sorted(second.items(), key=lambda kv: -kv[1]):
            if category.first_category == relation:
                second_rows.append((category.value, ratio))
        second_rows.append(("unknown", unknown[relation] / total))
        for name, ratio in second_rows:
            rows.append((relation.display_name, first_ratio, name, ratio))
    return rows


def major_type_share(survey: SurveyResult) -> float:
    """Share of labeled edges covered by the three major types (paper: 84 %)."""
    first = survey.first_category_ratios()
    return sum(
        first.get(relation, 0.0) for relation in RelationType.classification_targets()
    )


def format_table1(survey: SurveyResult) -> str:
    """Render Table I as aligned text."""
    header = f"{'First Category':<16} {'First Ratio':>11}   {'Second Category':<20} {'Second Ratio':>12}"
    lines = [header, "-" * len(header)]
    last_first = None
    for first_name, first_ratio, second_name, second_ratio in table1_rows(survey):
        shown_first = first_name if first_name != last_first else ""
        shown_ratio = f"{first_ratio:.0%}" if first_name != last_first else ""
        lines.append(
            f"{shown_first:<16} {shown_ratio:>11}   {second_name:<20} {second_ratio:>11.0%}"
        )
        last_first = first_name
    return "\n".join(lines)
