"""Cumulative-distribution utilities shared by the Section II analyses."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ExperimentError


def empirical_cdf(values: Sequence[float], points: Sequence[float]) -> list[float]:
    """Empirical CDF of ``values`` evaluated at ``points``.

    Returns ``P[X <= p]`` for each point ``p``; an empty sample yields zeros.
    """
    if len(points) == 0:
        raise ExperimentError("at least one evaluation point is required")
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return [0.0 for _ in points]
    data.sort()
    return [float(np.searchsorted(data, point, side="right") / data.size) for point in points]


def cdf_table(
    series: dict[str, Sequence[float]], points: Sequence[float]
) -> dict[str, list[float]]:
    """Evaluate the CDF of several named samples at the same points."""
    return {name: empirical_cdf(values, points) for name, values in series.items()}


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values`` (0.0 for an empty sample)."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ExperimentError("percentile q must be in [0, 100]")
    return float(np.percentile(data, q))


def median(values: Sequence[float]) -> float:
    """Median of ``values`` (0.0 for an empty sample)."""
    return percentile(values, 50.0)
