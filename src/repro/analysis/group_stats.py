"""Chat-group analyses: Figure 2 (common-group CDF) and Table II inputs."""

from __future__ import annotations

from repro.analysis.cdf import empirical_cdf
from repro.synthetic.groups import GroupCollection
from repro.types import Edge, RelationType, canonical_edge


def common_groups_per_pair(
    groups: GroupCollection, edge_types: dict[Edge, RelationType]
) -> dict[RelationType, list[int]]:
    """Number of common chat groups for every friend pair, bucketed by type.

    Pairs that share no group contribute a zero, which is what produces the
    large mass at 0 in Figure 2 (e.g. >30 % of family pairs share no group).
    """
    counts = groups.common_group_counts()
    per_type: dict[RelationType, list[int]] = {
        relation: [] for relation in RelationType.classification_targets()
    }
    for edge, relation in edge_types.items():
        if relation not in per_type:
            continue
        per_type[relation].append(counts.get(canonical_edge(*edge), 0))
    return per_type


def common_group_cdf(
    groups: GroupCollection,
    edge_types: dict[Edge, RelationType],
    points: list[int] = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
) -> dict[RelationType, list[float]]:
    """Figure 2: CDF of the number of common groups per relationship type."""
    per_type = common_groups_per_pair(groups, edge_types)
    return {
        relation: empirical_cdf(values, list(points))
        for relation, values in per_type.items()
    }


def pairs_with_no_common_group(
    groups: GroupCollection, edge_types: dict[Edge, RelationType]
) -> dict[RelationType, float]:
    """Fraction of pairs of each type that share no chat group."""
    per_type = common_groups_per_pair(groups, edge_types)
    return {
        relation: (sum(1 for value in values if value == 0) / len(values) if values else 0.0)
        for relation, values in per_type.items()
    }
