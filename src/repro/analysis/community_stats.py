"""Community-level statistics: Figure 10(a) size CDF and Figure 13 distributions."""

from __future__ import annotations

from repro.analysis.cdf import empirical_cdf, median
from repro.core.division import DivisionResult
from repro.core.results import LoCECResult
from repro.types import RelationType


def community_size_cdf(
    division: DivisionResult, points: list[int] = (4, 8, 16, 32, 64, 128, 256)
) -> list[float]:
    """Figure 10(a): CDF of local community sizes at the given points."""
    sizes = division.community_sizes()
    return empirical_cdf(sizes, list(points))


def median_community_size(division: DivisionResult) -> float:
    """Median local community size (the paper reports 8 on WeChat)."""
    return median(division.community_sizes())


def type_distributions(result: LoCECResult) -> dict[str, dict[RelationType, float]]:
    """Figure 13: community- and edge-level predicted type distributions."""
    return {
        "community": result.community_type_distribution(),
        "relationship": result.edge_type_distribution(),
    }


def mean_size_by_type(result: LoCECResult) -> dict[RelationType, float]:
    """Mean predicted-community size per type.

    The paper explains the Figure 13 shift (49 % → 35 % family when moving
    from communities to edges) by family communities being much smaller than
    colleague communities; this statistic verifies that mechanism.
    """
    return {
        relation: result.mean_community_size(relation)
        for relation in RelationType.classification_targets()
    }
