"""Figure 2 — CDF of the number of common chat groups per relationship type."""

from __future__ import annotations

from repro.analysis.group_stats import common_group_cdf, pairs_with_no_common_group
from repro.experiments.common import ExperimentResult
from repro.synthetic.workloads import ExperimentWorkload, make_workload
from repro.types import RelationType


def run(
    workload: ExperimentWorkload | None = None, scale: str = "small", seed: int = 0
) -> ExperimentResult:
    """Regenerate Figure 2.

    Expected shape: family pairs share the fewest common groups (>30 % share
    none), colleagues the most.
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    dataset = workload.dataset
    points = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    cdfs = common_group_cdf(dataset.groups, dataset.edge_types, points=points)
    no_group = pairs_with_no_common_group(dataset.groups, dataset.edge_types)

    rows = []
    for index, point in enumerate(points):
        rows.append(
            {
                "Common groups <=": point,
                "Family members": cdfs[RelationType.FAMILY][index],
                "Colleagues": cdfs[RelationType.COLLEAGUE][index],
                "Schoolmates": cdfs[RelationType.SCHOOLMATE][index],
            }
        )
    return ExperimentResult(
        experiment_id="fig2",
        title="CDF of common chat groups per relationship type",
        rows=rows,
        notes=(
            "fraction with no common group: "
            + ", ".join(
                f"{relation.display_name}={value:.2f}" for relation, value in no_group.items()
            )
        ),
    )
