"""Table I — relationship types in user surveys."""

from __future__ import annotations

from repro.analysis.survey_stats import major_type_share, table1_rows
from repro.experiments.common import ExperimentResult
from repro.synthetic.workloads import ExperimentWorkload, make_workload


def run(workload: ExperimentWorkload | None = None, scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Regenerate Table I from the synthetic survey.

    The paper's ratios (family 28 %, colleague 41 %, schoolmate 15 %, others
    16 %; major types ≈84 %) are the calibration target of the generator, so
    the synthetic survey should land near them.
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    rows = [
        {
            "First Category": first_name,
            "First Ratio": first_ratio,
            "Second Category": second_name,
            "Second Ratio": second_ratio,
        }
        for first_name, first_ratio, second_name, second_ratio in table1_rows(workload.survey)
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Relationship types in user surveys",
        rows=rows,
        notes=(
            f"major types cover {major_type_share(workload.survey):.0%} of labeled edges "
            f"({workload.survey.num_labeled} labeled edges from "
            f"{len(workload.survey.surveyed_users)} surveyed users)"
        ),
    )
