"""Figure 11 — edge-classification F1 as the labeled-edge percentage varies."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    EDGE_METHODS,
    ExperimentResult,
    evaluate_method,
    overall_f1,
    per_class_f1,
)
from repro.synthetic.workloads import ExperimentWorkload, make_workload
from repro.types import RelationType


def run(
    workload: ExperimentWorkload | None = None,
    scale: str = "small",
    seed: int = 0,
    label_fractions: Sequence[float] = (0.05, 0.2, 0.4, 0.6, 0.8),
    methods: Sequence[str] = EDGE_METHODS,
    cnn_epochs: int = 30,
) -> ExperimentResult:
    """Regenerate Figure 11: F1 per class and overall vs labeled percentage.

    ``label_fractions`` are fractions *of the training labels* retained
    (mirroring the paper's "percentage of labeled edges" out of the 40 %
    labeled sub-graph).  Expected shape: LoCEC-CNN on top everywhere,
    LoCEC-XGB second; ProbWP collapses at 5 % and improves steeply with more
    labels; XGBoost is flat-ish and eventually overtaken by the propagation
    methods.
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    rows: list[dict[str, object]] = []
    for fraction in label_fractions:
        train_subset = workload.subsample_train(fraction, seed=seed)
        for method in methods:
            report = evaluate_method(
                method,
                workload,
                train_edges=train_subset,
                cnn_epochs=cnn_epochs,
                seed=seed,
            )
            rows.append(
                {
                    "Labeled %": round(fraction * 100),
                    "Algorithm": method,
                    "Colleagues F1": per_class_f1(report, RelationType.COLLEAGUE),
                    "Family F1": per_class_f1(report, RelationType.FAMILY),
                    "Schoolmates F1": per_class_f1(report, RelationType.SCHOOLMATE),
                    "Overall F1": overall_f1(report),
                }
            )
    return ExperimentResult(
        experiment_id="fig11",
        title="Edge classification F1 vs percentage of labeled edges",
        rows=rows,
        notes=f"{len(workload.train_edges)} training labels at 100%",
    )
