"""Figure 12 — scalability study: run time vs input nodes and vs servers."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.runtime.cost_model import CostCalibration
from repro.runtime.scalability import ScalabilityStudy, measure_worker_scaling
from repro.synthetic.workloads import ExperimentWorkload


def run(
    calibration: CostCalibration | None = None,
    node_counts_millions: Sequence[int] = (100, 200, 500, 1000),
    server_counts: Sequence[int] = (100, 150, 200),
) -> ExperimentResult:
    """Regenerate Figure 12 from the cost model.

    Expected shape: per-phase run time grows linearly with the number of
    input nodes (panel a) and shrinks as servers are added (panel b), with
    Phase I dominating throughout.
    """
    study = ScalabilityStudy(calibration or CostCalibration())
    rows: list[dict[str, object]] = []
    for nodes, estimate in study.figure12a(list(node_counts_millions)):
        rows.append(
            {
                "Panel": "a",
                "X": f"{nodes // 1_000_000}M nodes",
                "Phase I (h)": round(estimate.phase1_hours, 1),
                "Phase II (h)": round(estimate.phase2_hours, 1),
                "Phase III (h)": round(estimate.phase3_hours, 1),
                "Total (h)": round(estimate.total_hours, 1),
            }
        )
    for servers, estimate in study.figure12b(list(server_counts)):
        rows.append(
            {
                "Panel": "b",
                "X": f"{servers} servers",
                "Phase I (h)": round(estimate.phase1_hours, 1),
                "Phase II (h)": round(estimate.phase2_hours, 1),
                "Phase III (h)": round(estimate.phase3_hours, 1),
                "Total (h)": round(estimate.total_hours, 1),
            }
        )
    return ExperimentResult(
        experiment_id="fig12",
        title="Scalability study (projected at WeChat scale)",
        rows=rows,
        notes="panel a uses 50 servers; panel b uses the full 1B-node workload",
    )


def run_measured(
    workload: ExperimentWorkload,
    worker_counts: Sequence[int] = (1, 2, 4),
    max_egos: int = 200,
) -> ExperimentResult:
    """Locally *measured* analogue of Figure 12(b): Phase I makespan vs workers."""
    measurements = measure_worker_scaling(
        workload.dataset, worker_counts=list(worker_counts), max_egos=max_egos
    )
    rows = [
        {"Workers": workers, "Phase I makespan (s)": round(seconds, 3)}
        for workers, seconds in measurements
    ]
    return ExperimentResult(
        experiment_id="fig12-measured",
        title="Measured Phase I makespan vs simulated worker count",
        rows=rows,
        notes=f"{max_egos} egos, label-propagation detector",
    )
