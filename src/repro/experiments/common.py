"""Shared infrastructure for the paper-experiment modules.

Every experiment module exposes a ``run(...)`` function that returns an
:class:`ExperimentResult` — a small, renderable container with the experiment
id, a human-readable title and a list of result rows (dicts).  The benchmark
harness times these ``run`` functions, the examples print them, and
EXPERIMENTS.md records their output next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines import Economix, ProbWP, XGBoostEdgeClassifier
from repro.core import LoCEC, LoCECConfig
from repro.exceptions import ExperimentError
from repro.ml.metrics import classification_report
from repro.synthetic.workloads import ExperimentWorkload
from repro.types import ClassificationReport, LabeledEdge, RelationType


@dataclass
class ExperimentResult:
    """The output of one experiment run."""

    experiment_id: str
    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def to_text(self) -> str:
        """Render the result as an aligned text table."""
        if not self.rows:
            return f"== {self.experiment_id}: {self.title} ==\n(no rows)"
        columns = list(self.rows[0].keys())
        widths = {
            column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in self.rows))
            for column in columns
        }
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(str(column).ljust(widths[column]) for column in columns))
        lines.append("  ".join("-" * widths[column] for column in columns))
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns)
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def report_to_rows(algorithm: str, report: ClassificationReport) -> list[dict[str, object]]:
    """Convert a classification report into Table IV/V-style rows."""
    rows: list[dict[str, object]] = []
    for name, precision, recall, f1 in report.as_rows():
        rows.append(
            {
                "Algorithm": algorithm,
                "Community Type": name,
                "Precision": precision,
                "Recall": recall,
                "F1-score": f1,
            }
        )
    return rows


# --------------------------------------------------------------------- methods
EDGE_METHODS = ("ProbWP", "Economix", "XGBoost", "LoCEC-XGB", "LoCEC-CNN")


def evaluate_method(
    method: str,
    workload: ExperimentWorkload,
    train_edges: Sequence[LabeledEdge] | None = None,
    k: int = 20,
    cnn_epochs: int = 40,
    seed: int = 0,
) -> ClassificationReport:
    """Train one edge-classification method and evaluate it on the test split.

    Parameters
    ----------
    method:
        One of :data:`EDGE_METHODS`.
    workload:
        The dataset + survey + split.
    train_edges:
        Overrides the workload's training edges (used by the Figure 11
        label-fraction sweep); defaults to the full training split.
    k:
        LoCEC feature-matrix row count (ignored by baselines).
    cnn_epochs:
        CommCNN training epochs (benchmarks lower this to bound run time).
    """
    dataset = workload.dataset
    train = list(train_edges) if train_edges is not None else list(workload.train_edges)
    test = list(workload.test_edges)
    if not train or not test:
        raise ExperimentError("workload must provide non-empty train and test splits")
    test_edges = [item.edge for item in test]
    y_true = np.array([int(item.label) for item in test])

    if method == "ProbWP":
        model = ProbWP(num_hashes=20, seed=seed)
        model.fit(dataset.graph, train)
        y_pred = np.array([int(label) for label in model.predict(test_edges)])
    elif method == "Economix":
        model = Economix(seed=seed)
        model.fit(dataset.graph, dataset.interactions, train)
        y_pred = np.array([int(label) for label in model.predict(test_edges)])
    elif method == "XGBoost":
        model = XGBoostEdgeClassifier(seed=seed)
        model.fit(dataset.features, dataset.interactions, train)
        y_pred = np.array([int(label) for label in model.predict(test_edges)])
    elif method in {"LoCEC-XGB", "LoCEC-CNN"}:
        variant = "xgb" if method == "LoCEC-XGB" else "cnn"
        config = LoCECConfig(community_model=variant, k=k, seed=seed)
        config.cnn.epochs = cnn_epochs
        pipeline = LoCEC(config)
        pipeline.fit(
            dataset.graph,
            dataset.features,
            dataset.interactions,
            train,
            division=workload.division(config.community_detector),
        )
        y_pred = np.array([int(label) for label in pipeline.predict_edges(test_edges)])
    else:
        raise ExperimentError(f"unknown method {method!r}; available: {EDGE_METHODS}")

    return classification_report(y_true, y_pred)


def evaluate_all_methods(
    workload: ExperimentWorkload,
    methods: Sequence[str] = EDGE_METHODS,
    train_edges: Sequence[LabeledEdge] | None = None,
    cnn_epochs: int = 40,
    seed: int = 0,
) -> dict[str, ClassificationReport]:
    """Evaluate several methods on the same workload and splits."""
    return {
        method: evaluate_method(
            method,
            workload,
            train_edges=train_edges,
            cnn_epochs=cnn_epochs,
            seed=seed,
        )
        for method in methods
    }


def overall_f1(report: ClassificationReport) -> float:
    """The support-weighted overall F1 of a report (0 when undefined)."""
    return report.overall.f1 if report.overall is not None else 0.0


def per_class_f1(report: ClassificationReport, relation: RelationType) -> float:
    """F1 of one class (0 when the class is absent from the report)."""
    if relation not in report.per_class:
        return 0.0
    return report.per_class[relation].f1
