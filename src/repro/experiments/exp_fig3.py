"""Figure 3 — percentage of interacting pairs per Moments category and type."""

from __future__ import annotations

from repro.analysis.moments_stats import interaction_rate_by_category
from repro.experiments.common import ExperimentResult
from repro.synthetic.workloads import ExperimentWorkload, make_workload
from repro.types import MomentsCategory, RelationType


def run(
    workload: ExperimentWorkload | None = None, scale: str = "small", seed: int = 0
) -> ExperimentResult:
    """Regenerate Figure 3 (like and comment panels).

    Expected shape: pictures dominate for every type; colleagues and
    schoolmates like articles more than family members; schoolmates lead on
    game posts; colleagues almost never discuss games.
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    dataset = workload.dataset
    rows: list[dict[str, object]] = []
    for behaviour in ("like", "comment"):
        rates = interaction_rate_by_category(
            dataset.interactions, dataset.edge_types, behaviour=behaviour
        )
        for relation in RelationType.classification_targets():
            rows.append(
                {
                    "Behaviour": behaviour,
                    "Relationship": relation.display_name,
                    "Pictures": rates[relation][MomentsCategory.PICTURE],
                    "Articles": rates[relation][MomentsCategory.ARTICLE],
                    "Games": rates[relation][MomentsCategory.GAME],
                }
            )
    return ExperimentResult(
        experiment_id="fig3",
        title="Percentage of interacting pairs under different Moments categories",
        rows=rows,
    )
