"""Figure 10 — parameter study: community-size CDF and F1 as k varies."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.community_stats import community_size_cdf, median_community_size
from repro.experiments.common import ExperimentResult, evaluate_method, overall_f1
from repro.synthetic.workloads import ExperimentWorkload, make_workload


def run_size_cdf(
    workload: ExperimentWorkload | None = None, scale: str = "small", seed: int = 0
) -> ExperimentResult:
    """Figure 10(a): cumulative distribution of local community sizes."""
    workload = workload or make_workload(scale=scale, seed=seed)
    division = workload.division()
    points = [2, 4, 8, 16, 32, 64, 128, 256]
    cdf = community_size_cdf(division, points=points)
    rows = [
        {"Community size <=": point, "CDF": value} for point, value in zip(points, cdf)
    ]
    return ExperimentResult(
        experiment_id="fig10a",
        title="CDF of local community size",
        rows=rows,
        notes=f"median community size = {median_community_size(division):.0f}",
    )


def run_k_sweep(
    workload: ExperimentWorkload | None = None,
    scale: str = "small",
    seed: int = 0,
    k_values: Sequence[int] = (5, 10, 20, 30, 40),
    cnn_epochs: int = 30,
) -> ExperimentResult:
    """Figure 10(b): overall F1 of LoCEC-CNN as ``k`` varies.

    Expected shape: low F1 for very small ``k`` (not enough information),
    a peak near the typical community size, and a mild decline for large
    ``k`` (zero-padding noise).
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    rows = []
    for k in k_values:
        report = evaluate_method(
            "LoCEC-CNN", workload, k=k, cnn_epochs=cnn_epochs, seed=seed
        )
        rows.append({"k": k, "Overall F1-score": overall_f1(report)})
    return ExperimentResult(
        experiment_id="fig10b",
        title="LoCEC-CNN performance as k varies",
        rows=rows,
    )


def run(
    workload: ExperimentWorkload | None = None,
    scale: str = "small",
    seed: int = 0,
    k_values: Sequence[int] = (5, 10, 20, 30, 40),
    cnn_epochs: int = 30,
) -> ExperimentResult:
    """Both panels of Figure 10 merged into one result (rows carry a Panel column)."""
    workload = workload or make_workload(scale=scale, seed=seed)
    panel_a = run_size_cdf(workload)
    panel_b = run_k_sweep(workload, k_values=k_values, cnn_epochs=cnn_epochs, seed=seed)
    rows: list[dict[str, object]] = []
    for row in panel_a.rows:
        rows.append({"Panel": "a", **row})
    for row in panel_b.rows:
        rows.append({"Panel": "b", **row})
    return ExperimentResult(
        experiment_id="fig10",
        title="Parameter study (community sizes and k sweep)",
        rows=rows,
        notes=panel_a.notes,
    )
