"""Table II — group-name rule classification performance."""

from __future__ import annotations

from repro.baselines.group_name_rules import GroupNameRuleClassifier
from repro.experiments.common import ExperimentResult
from repro.synthetic.workloads import ExperimentWorkload, make_workload


def run(workload: ExperimentWorkload | None = None, scale: str = "small", seed: int = 0) -> ExperimentResult:
    """Regenerate Table II: rule-based inference from chat-group names.

    Expected shape: precision well above 0.7 for every type, recall close to
    zero (most groups have generic names; many pairs share no group at all).
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    dataset = workload.dataset
    classifier = GroupNameRuleClassifier(dataset.groups)
    results = classifier.evaluate(dataset.edge_types)
    rows = [
        {
            "Relationship Type": relation.display_name,
            "Precision": precision,
            "Recall": recall,
            "F1-score": f1,
        }
        for relation, (precision, recall, f1) in results.items()
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Group name classification performance",
        rows=rows,
        notes=f"{len(dataset.groups)} chat groups over {dataset.num_edges} edges",
    )
