"""Figure 13 — distribution of predicted community and relationship types."""

from __future__ import annotations

from repro.analysis.community_stats import mean_size_by_type, type_distributions
from repro.core import LoCEC, LoCECConfig
from repro.experiments.common import ExperimentResult
from repro.synthetic.workloads import ExperimentWorkload, make_workload
from repro.types import RelationType


def run(
    workload: ExperimentWorkload | None = None,
    scale: str = "small",
    seed: int = 0,
    cnn_epochs: int = 40,
) -> ExperimentResult:
    """Regenerate Figure 13 by applying LoCEC-CNN to the whole network.

    Expected shape: colleagues' share is larger among *edges* than among
    *communities* (and family's smaller), because family communities are much
    smaller than colleague communities.
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    dataset = workload.dataset
    config = LoCECConfig.locec_cnn(seed=seed)
    config.cnn.epochs = cnn_epochs
    pipeline = LoCEC(config)
    pipeline.fit(
        dataset.graph,
        dataset.features,
        dataset.interactions,
        workload.train_edges,
        division=workload.division(),
    )
    result = pipeline.classify_network()
    distributions = type_distributions(result)
    sizes = mean_size_by_type(result)

    rows: list[dict[str, object]] = []
    for level in ("community", "relationship"):
        for relation in RelationType.classification_targets():
            rows.append(
                {
                    "Level": level,
                    "Type": relation.display_name,
                    "Share": distributions[level].get(relation, 0.0),
                }
            )
    notes = "mean predicted community size: " + ", ".join(
        f"{relation.display_name}={size:.1f}" for relation, size in sizes.items()
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Distribution of predicted community and relationship types",
        rows=rows,
        notes=notes,
    )
