"""Table IV — relationship (edge) classification performance of all methods."""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    EDGE_METHODS,
    ExperimentResult,
    evaluate_all_methods,
    report_to_rows,
)
from repro.synthetic.workloads import ExperimentWorkload, make_workload


def run(
    workload: ExperimentWorkload | None = None,
    scale: str = "small",
    seed: int = 0,
    methods: Sequence[str] = EDGE_METHODS,
    cnn_epochs: int = 40,
) -> ExperimentResult:
    """Regenerate Table IV on a synthetic survey sub-graph (80/20 split).

    Expected shape: LoCEC-CNN best overall F1, LoCEC-XGB a close runner-up,
    ProbWP and Economix in the middle, plain XGBoost worst (sparsity hurts
    its recall most).
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    reports = evaluate_all_methods(
        workload, methods=methods, cnn_epochs=cnn_epochs, seed=seed
    )
    rows: list[dict[str, object]] = []
    for method in methods:
        rows.extend(report_to_rows(method, reports[method]))
    return ExperimentResult(
        experiment_id="table4",
        title="Relationship classification performance",
        rows=rows,
        notes=(
            f"{workload.dataset.num_users} users, {workload.dataset.num_edges} edges, "
            f"{len(workload.labeled_edges)} labeled edges "
            f"({workload.labeled_fraction:.0%} of edges), 80/20 train/test split"
        ),
    )
