"""Registry mapping experiment ids to their ``run`` callables."""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ExperimentError
from repro.experiments import (
    exp_fig2,
    exp_fig3,
    exp_fig4,
    exp_fig10,
    exp_fig11,
    exp_fig12,
    exp_fig13,
    exp_fig14,
    exp_table1,
    exp_table2,
    exp_table4,
    exp_table5,
    exp_table6,
)
from repro.experiments.common import ExperimentResult

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": exp_table1.run,
    "table2": exp_table2.run,
    "table4": exp_table4.run,
    "table5": exp_table5.run,
    "table6": exp_table6.run,
    "fig2": exp_fig2.run,
    "fig3": exp_fig3.run,
    "fig4": exp_fig4.run,
    "fig10": exp_fig10.run,
    "fig11": exp_fig11.run,
    "fig12": exp_fig12.run,
    "fig13": exp_fig13.run,
    "fig14": exp_fig14.run,
}


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment ``run`` function by id (e.g. ``"table4"``)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def list_experiments() -> list[str]:
    """All known experiment ids in a stable order."""
    return sorted(EXPERIMENTS)
