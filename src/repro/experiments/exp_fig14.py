"""Figure 14 — social-advertising performance of LoCEC-CNN vs Relation targeting."""

from __future__ import annotations

import random

from repro.ads import AdCategory, AdSimulator, Campaign
from repro.core import LoCEC, LoCECConfig
from repro.experiments.common import ExperimentResult
from repro.synthetic.workloads import ExperimentWorkload, make_workload
from repro.types import Edge, RelationType


def run(
    workload: ExperimentWorkload | None = None,
    scale: str = "small",
    seed: int = 0,
    num_seeds: int = 40,
    audience_size: int = 150,
    use_predicted_labels: bool = True,
    cnn_epochs: int = 40,
) -> ExperimentResult:
    """Regenerate Figure 14.

    Two campaigns (furniture and mobile game) are run with both targeting
    policies on the same network and the same CTR scorer.  Expected shape:
    LoCEC-CNN targeting beats Relation on click rate for both categories, and
    by a wider relative margin on interact rate.

    ``use_predicted_labels=False`` uses ground-truth edge types instead of
    LoCEC-CNN predictions (an upper bound that skips the expensive fit).
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    dataset = workload.dataset

    if use_predicted_labels:
        config = LoCECConfig.locec_cnn(seed=seed)
        config.cnn.epochs = cnn_epochs
        pipeline = LoCEC(config)
        pipeline.fit(
            dataset.graph,
            dataset.features,
            dataset.interactions,
            workload.train_edges,
            division=workload.division(),
        )
        edge_labels: dict[Edge, RelationType] = pipeline.classify_network().edge_label_map()
        label_source = "LoCEC-CNN predictions"
    else:
        edge_labels = dict(dataset.edge_types)
        label_source = "ground-truth labels (upper bound)"

    simulator = AdSimulator(dataset, edge_labels, seed=seed)
    rng = random.Random(seed)
    nodes = [node for node in dataset.graph.nodes() if dataset.graph.degree(node) >= 3]

    rows: list[dict[str, object]] = []
    for category in (AdCategory.FURNITURE, AdCategory.MOBILE_GAME):
        seeds = rng.sample(nodes, min(num_seeds, len(nodes)))
        campaign = Campaign(category=category, seeds=seeds, audience_size=audience_size)
        outcomes = simulator.compare_policies(campaign)
        for policy in ("LoCEC-CNN", "Relation"):
            outcome = outcomes[policy]
            rows.append(
                {
                    "Ad Category": category.value,
                    "Policy": policy,
                    "Click Rate (%)": outcome.click_rate * 100,
                    "Interact Rate (%)": outcome.interact_rate * 100,
                    "Audience": outcome.audience_size,
                }
            )
    return ExperimentResult(
        experiment_id="fig14",
        title="Performance in social advertising",
        rows=rows,
        notes=f"edge labels from {label_source}; {num_seeds} seeds per campaign",
    )
