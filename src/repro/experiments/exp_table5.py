"""Table V — local community classification performance (LoCEC-XGB vs LoCEC-CNN)."""

from __future__ import annotations

import numpy as np

from repro.core import (
    CNNCommunityClassifier,
    EdgeLabelIndex,
    FeatureMatrixBuilder,
    GBDTCommunityClassifier,
    LoCECConfig,
    labeled_communities,
)
from repro.experiments.common import ExperimentResult, report_to_rows
from repro.ml.metrics import classification_report
from repro.ml.preprocessing import train_test_split_indices
from repro.synthetic.workloads import ExperimentWorkload, make_workload


def run(
    workload: ExperimentWorkload | None = None,
    scale: str = "small",
    seed: int = 0,
    k: int = 20,
    cnn_epochs: int = 40,
) -> ExperimentResult:
    """Regenerate Table V: classify local communities directly.

    Ground-truth community labels come from the majority type of the ego's
    labeled friend edges (exactly the paper's protocol); the labeled
    communities are split 80/20.  Expected shape: LoCEC-CNN beats LoCEC-XGB
    by a few F1 points, and both are slightly above their edge-level scores.
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    dataset = workload.dataset
    division = workload.division()
    label_index = EdgeLabelIndex(workload.labeled_edges)
    communities, labels = labeled_communities(division, label_index)
    if len(communities) < 10:
        raise ValueError("not enough labeled communities for a meaningful split")
    labels_array = np.asarray(labels)
    train_idx, test_idx = train_test_split_indices(
        len(communities), test_fraction=0.2, seed=seed, stratify=labels_array
    )
    train_comm = [communities[i] for i in train_idx]
    test_comm = [communities[i] for i in test_idx]
    y_train = labels_array[train_idx]
    y_true = labels_array[test_idx]

    builder = FeatureMatrixBuilder(dataset.features, dataset.interactions, k=k)
    config = LoCECConfig(seed=seed)
    config.cnn.epochs = cnn_epochs

    rows: list[dict[str, object]] = []
    gbdt = GBDTCommunityClassifier(builder, config=config.gbdt)
    gbdt.fit(train_comm, y_train.tolist())
    report_xgb = classification_report(y_true, gbdt.predict(test_comm))
    rows.extend(report_to_rows("LoCEC-XGB", report_xgb))

    cnn = CNNCommunityClassifier(builder, config=config.cnn)
    cnn.fit(train_comm, y_train.tolist())
    report_cnn = classification_report(y_true, cnn.predict(test_comm))
    rows.extend(report_to_rows("LoCEC-CNN", report_cnn))

    return ExperimentResult(
        experiment_id="table5",
        title="Local community classification performance",
        rows=rows,
        notes=f"{len(communities)} labeled local communities, 80/20 split",
    )
