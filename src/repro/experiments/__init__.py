"""Experiment modules: one per table/figure of the paper's evaluation."""

from repro.experiments import (
    exp_fig2,
    exp_fig3,
    exp_fig4,
    exp_fig10,
    exp_fig11,
    exp_fig12,
    exp_fig13,
    exp_fig14,
    exp_table1,
    exp_table2,
    exp_table4,
    exp_table5,
    exp_table6,
)
from repro.experiments.common import (
    EDGE_METHODS,
    ExperimentResult,
    evaluate_all_methods,
    evaluate_method,
    overall_f1,
    per_class_f1,
    report_to_rows,
)

__all__ = [
    "ExperimentResult",
    "EDGE_METHODS",
    "evaluate_method",
    "evaluate_all_methods",
    "overall_f1",
    "per_class_f1",
    "report_to_rows",
    "exp_table1",
    "exp_table2",
    "exp_table4",
    "exp_table5",
    "exp_table6",
    "exp_fig2",
    "exp_fig3",
    "exp_fig4",
    "exp_fig10",
    "exp_fig11",
    "exp_fig12",
    "exp_fig13",
    "exp_fig14",
]
