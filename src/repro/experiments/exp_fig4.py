"""Figure 4 — CDF of the number of Moments interactions per relationship type."""

from __future__ import annotations

from repro.analysis.moments_stats import interaction_count_cdf, silent_pair_fraction
from repro.experiments.common import ExperimentResult
from repro.synthetic.workloads import ExperimentWorkload, make_workload
from repro.types import RelationType


def run(
    workload: ExperimentWorkload | None = None, scale: str = "small", seed: int = 0
) -> ExperimentResult:
    """Regenerate Figure 4.

    Expected shape: a large fraction of pairs (≈0.55–0.65) has zero
    interactions regardless of type — the sparsity that motivates LoCEC.
    """
    workload = workload or make_workload(scale=scale, seed=seed)
    dataset = workload.dataset
    points = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    cdfs = interaction_count_cdf(dataset.interactions, dataset.edge_types, points=points)
    silent = silent_pair_fraction(dataset.interactions, dataset.edge_types)
    rows = []
    for index, point in enumerate(points):
        rows.append(
            {
                "Interactions <=": point,
                "Family members": cdfs[RelationType.FAMILY][index],
                "Colleagues": cdfs[RelationType.COLLEAGUE][index],
                "Schoolmates": cdfs[RelationType.SCHOOLMATE][index],
            }
        )
    return ExperimentResult(
        experiment_id="fig4",
        title="CDF of Moments interactions per relationship type",
        rows=rows,
        notes=(
            "silent-pair fraction: "
            + ", ".join(
                f"{relation.display_name}={value:.2f}" for relation, value in silent.items()
            )
        ),
    )
