"""Table VI — projected running time (hours) of LoCEC-CNN at WeChat scale."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.runtime.cost_model import CostCalibration
from repro.runtime.scalability import ScalabilityStudy, measure_phases
from repro.synthetic.workloads import ExperimentWorkload


def run(
    workload: ExperimentWorkload | None = None,
    calibration: CostCalibration | None = None,
    calibrate_from_measurement: bool = False,
    max_egos: int = 100,
) -> ExperimentResult:
    """Regenerate Table VI from the cost model.

    By default the calibration is back-solved from the paper's own Table VI,
    so the projection reproduces the paper's numbers exactly (this validates
    the decomposition, not the constants).  Pass
    ``calibrate_from_measurement=True`` with a workload to instead calibrate
    the per-item costs from a real measured run of the local implementation —
    the per-phase *proportions* (Phase I dominating) are the meaningful
    comparison there.
    """
    notes = "calibration back-solved from the paper's Table VI"
    if calibration is None and calibrate_from_measurement:
        if workload is None:
            raise ValueError("a workload is required to calibrate from measurements")
        measured = measure_phases(workload.dataset, max_egos=max_egos)
        calibration = measured.to_calibration()
        notes = (
            f"calibration measured locally on {measured.num_nodes} egos / "
            f"{measured.num_communities} communities / {measured.num_edges} edges"
        )
    study = ScalabilityStudy(calibration or CostCalibration())
    estimate = study.table6()
    row: dict[str, object] = {"Method": "LoCEC-CNN"}
    row.update(estimate.as_row())
    return ExperimentResult(
        experiment_id="table6",
        title="Running time (hours) of LoCEC-CNN on the full network, 100 servers",
        rows=[row],
        notes=notes,
    )
