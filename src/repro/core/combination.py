"""Phase III — Combination: edge feature construction and edge labeling.

For an edge ``⟨u, v⟩`` the paper looks up

* ``C_u`` — the local community of **v**'s ego network that contains ``u``,
* ``C_v`` — the local community of **u**'s ego network that contains ``v``,

and builds the edge feature vector (Equation 4)

``f_{⟨u,v⟩} = [tightness(u, C_u), tightness(v, C_v), r_{C_u}, r_{C_v}]``

which a multinomial logistic-regression model maps to the final edge label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.division import DivisionResult, LocalCommunity
from repro.exceptions import NotFittedError, PipelineError
from repro.ml.logistic import LogisticRegression
from repro.types import Edge, Node, RelationType, canonical_edge


CommunityKey = tuple[Node, int]
"""A community is identified by ``(ego, index-within-ego)``."""


def community_key(community: LocalCommunity) -> CommunityKey:
    return (community.ego, community.index)


@dataclass
class EdgeFeatureBuilder:
    """Builds Equation 4 feature vectors from Phase I/II outputs.

    Parameters
    ----------
    division:
        Phase I result (local communities per ego).
    result_vectors:
        Mapping from :func:`community_key` to the community's ``r_C`` vector.
    result_vector_length:
        Length of each ``r_C`` (needed to build zero vectors for missing
        communities, e.g. for friends of sharded-away egos).
    """

    division: DivisionResult
    result_vectors: dict[CommunityKey, np.ndarray]
    result_vector_length: int

    @property
    def feature_length(self) -> int:
        """Length of one edge feature vector: 2 tightness values + 2 · |r_C|."""
        return 2 + 2 * self.result_vector_length

    def edge_feature(self, u: Node, v: Node) -> np.ndarray:
        """Equation 4 feature vector for edge ``⟨u, v⟩``.

        Endpoints are canonicalised first so the same undirected edge always
        yields the same vector regardless of argument order.
        """
        out = np.empty(self.feature_length)
        self._fill_edge_feature(out, u, v)
        return out

    def edge_features(self, edges: Sequence[Edge]) -> np.ndarray:
        """Stack Equation 4 vectors for a batch of edges.

        The design matrix is preallocated and filled row by row — no per-edge
        intermediate arrays, no ``np.vstack`` of per-row allocations.
        """
        out = np.zeros((len(edges), self.feature_length))
        for row, (u, v) in enumerate(edges):
            self._fill_edge_feature(out[row], u, v)
        return out

    def _fill_edge_feature(self, out: np.ndarray, u: Node, v: Node) -> None:
        """Write the Equation 4 vector for ``⟨u, v⟩`` into ``out`` in place."""
        first, second = canonical_edge(u, v)
        community_of_first = self.division.community_containing(second, first)
        community_of_second = self.division.community_containing(first, second)
        length = self.result_vector_length
        out[0] = self._fill_community_terms(
            out[2 : 2 + length], community_of_first, first
        )
        out[1] = self._fill_community_terms(
            out[2 + length :], community_of_second, second
        )

    def _fill_community_terms(
        self, out: np.ndarray, community: LocalCommunity | None, node: Node
    ) -> float:
        """Write ``r_C`` into ``out`` and return the node's tightness in ``C``."""
        if community is None:
            out[:] = 0.0
            return 0.0
        vector = self.result_vectors.get(community_key(community))
        if vector is None:
            out[:] = 0.0
        else:
            out[:] = vector
        return community.tightness.get(node, 0.0)


class EdgeLabeler:
    """The Phase III logistic-regression edge classifier.

    Parameters
    ----------
    feature_builder:
        Equation 4 feature builder.
    num_classes:
        Number of relationship types.
    learning_rate / num_iterations / l2 / seed:
        Logistic-regression training schedule.
    """

    def __init__(
        self,
        feature_builder: EdgeFeatureBuilder,
        num_classes: int = len(RelationType.classification_targets()),
        learning_rate: float = 0.5,
        num_iterations: int = 400,
        l2: float = 1e-4,
        seed: int = 0,
    ) -> None:
        self.feature_builder = feature_builder
        self.num_classes = num_classes
        self._model = LogisticRegression(
            learning_rate=learning_rate,
            num_iterations=num_iterations,
            l2=l2,
            num_classes=num_classes,
            seed=seed,
        )
        self._fitted = False

    def fit(self, edges: Sequence[Edge], labels: Sequence[int]) -> "EdgeLabeler":
        """Train on labeled edges (class indices in ``labels``)."""
        if len(edges) != len(labels):
            raise PipelineError("edges and labels must have the same length")
        if not edges:
            raise PipelineError("cannot fit the edge labeler on zero edges")
        X = self.feature_builder.edge_features(edges)
        self._model.fit(X, np.asarray(labels, dtype=np.int64))
        self._fitted = True
        return self

    def predict_proba(self, edges: Sequence[Edge]) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError(self)
        if not edges:
            return np.zeros((0, self.num_classes))
        X = self.feature_builder.edge_features(edges)
        return self._model.predict_proba(X)

    def predict(self, edges: Sequence[Edge]) -> np.ndarray:
        """Predicted class index for each edge."""
        return np.argmax(self.predict_proba(edges), axis=1)

    def predict_types(self, edges: Sequence[Edge]) -> list[RelationType]:
        """Predicted :class:`RelationType` for each edge."""
        return [RelationType(int(index)) for index in self.predict(edges)]


class AgreementEdgeLabeler:
    """Ablation baseline for Phase III: no learned combination model.

    If both endpoint communities agree on a type the edge takes that type;
    otherwise the type with the higher community probability wins.  The paper
    motivates the logistic-regression combiner precisely because this naive
    rule cannot resolve disagreements well.
    """

    def __init__(self, feature_builder: EdgeFeatureBuilder, num_classes: int) -> None:
        self.feature_builder = feature_builder
        self.num_classes = num_classes

    def predict(self, edges: Sequence[Edge]) -> np.ndarray:
        predictions = np.zeros(len(edges), dtype=np.int64)
        for position, (u, v) in enumerate(edges):
            feature = self.feature_builder.edge_feature(u, v)
            r_u = feature[2 : 2 + self.num_classes]
            r_v = feature[
                2
                + self.feature_builder.result_vector_length : 2
                + self.feature_builder.result_vector_length
                + self.num_classes
            ]
            type_u = int(np.argmax(r_u)) if r_u.any() else -1
            type_v = int(np.argmax(r_v)) if r_v.any() else -1
            if type_u == type_v and type_u >= 0:
                predictions[position] = type_u
            elif type_u < 0 and type_v < 0:
                predictions[position] = 0
            else:
                predictions[position] = int(np.argmax(r_u + r_v))
        return predictions
