"""Phase II (part 2) — community classification models.

Two interchangeable classifiers label local communities with relationship
types and produce the classification-result vector ``r_C`` consumed by the
combination phase:

* :class:`CNNCommunityClassifier` (LoCEC-CNN) feeds Algorithm 1 feature
  matrices into CommCNN; ``r_C`` is the softmax vector
  ``[P(C, l) ∀ l ∈ L]``.
* :class:`GBDTCommunityClassifier` (LoCEC-XGB) feeds the mean/std statistic
  vectors into the gradient-boosted trees; ``r_C`` is derived from the leaf
  values of the generated trees, compressed to per-class scores (plus the
  softmax probabilities) so the Phase III feature width stays bounded.

Both classifiers gather their design tensors through the
:class:`FeatureMatrixBuilder` they are handed, so the builder's ``backend``
knob (``"dict"``/``"csr"``/``"auto"``) transparently selects the Phase II
aggregation kernels — outputs are bit-identical either way.  The GBDT model
additionally honours :attr:`GBDTConfig.backend`
(``"node"``/``"array"``/``"auto"``), selecting between pointer-based tree
walks and the stacked forest tensors of :mod:`repro.ml.forest`; fitted
models and leaf-value embeddings are likewise bit-identical.  The CNN model
honours :attr:`CommCNNConfig.nn_backend`
(``"loop"``/``"fused"``/``"auto"``), selecting between layer-by-layer
execution and the compiled tape engine of :mod:`repro.ml.nn.engine`; fitted
weights, loss histories and probabilities are bit-identical as well.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.aggregation import FeatureMatrixBuilder
from repro.core.commcnn import build_commcnn_classifier
from repro.core.config import CommCNNConfig, GBDTConfig
from repro.core.division import LocalCommunity
from repro.exceptions import NotFittedError, PipelineError
from repro.ml.base import softmax
from repro.ml.gbdt import GradientBoostedClassifier
from repro.types import RelationType


class CommunityClassifier:
    """Common interface of the Phase II community classifiers."""

    def fit(
        self, communities: Sequence[LocalCommunity], labels: Sequence[int]
    ) -> "CommunityClassifier":
        raise NotImplementedError

    def predict_proba(self, communities: Sequence[LocalCommunity]) -> np.ndarray:
        """``(n_communities, |L|)`` class-probability matrix."""
        raise NotImplementedError

    def predict(self, communities: Sequence[LocalCommunity]) -> np.ndarray:
        return np.argmax(self.predict_proba(communities), axis=1)

    def result_vectors(self, communities: Sequence[LocalCommunity]) -> np.ndarray:
        """The ``r_C`` vectors used by the combination phase.

        Defaults to the class-probability matrix; sub-classes may append
        model-specific embeddings.
        """
        return self.predict_proba(communities)

    @property
    def result_vector_length(self) -> int:
        """Length of one ``r_C`` vector."""
        raise NotImplementedError


class CNNCommunityClassifier(CommunityClassifier):
    """LoCEC-CNN community classifier built on CommCNN.

    Parameters
    ----------
    builder:
        Feature-matrix builder (defines ``k`` and the column layout).
    num_classes:
        Number of relationship types (3 for the paper's major types).
    config:
        CommCNN hyper-parameters.
    branch_toggles:
        Optional keyword toggles (``include_square_branch`` etc.) forwarded
        to :func:`repro.core.commcnn.build_commcnn_model` for ablations.
    """

    def __init__(
        self,
        builder: FeatureMatrixBuilder,
        num_classes: int = len(RelationType.classification_targets()),
        config: CommCNNConfig | None = None,
        **branch_toggles: bool,
    ) -> None:
        self.builder = builder
        self.num_classes = num_classes
        self.config = config or CommCNNConfig()
        self._branch_toggles = branch_toggles
        self._classifier = None
        self._column_scale: np.ndarray | None = None

    def fit(
        self, communities: Sequence[LocalCommunity], labels: Sequence[int]
    ) -> "CNNCommunityClassifier":
        if len(communities) != len(labels):
            raise PipelineError("communities and labels must have the same length")
        if not communities:
            raise PipelineError("cannot fit the community classifier on zero communities")
        tensor = self.builder.matrices_as_tensor(communities)
        # Column-wise scaling: interaction shares live in [0, 1] but individual
        # features (age buckets, tenure years, ...) do not; without scaling the
        # convolutions are dominated by whichever column has the largest range.
        self._column_scale = np.abs(tensor).max(axis=(0, 1, 2))
        self._column_scale[self._column_scale == 0.0] = 1.0
        self._classifier = build_commcnn_classifier(
            k=self.builder.k,
            num_columns=self.builder.num_columns,
            num_classes=self.num_classes,
            config=self.config,
            **self._branch_toggles,
        )
        self._classifier.fit(tensor / self._column_scale, np.asarray(labels, dtype=np.int64))
        return self

    def predict_proba(self, communities: Sequence[LocalCommunity]) -> np.ndarray:
        if self._classifier is None:
            raise NotFittedError(self)
        if not communities:
            return np.zeros((0, self.num_classes))
        tensor = self.builder.matrices_as_tensor(communities)
        assert self._column_scale is not None
        return self._classifier.predict_proba(tensor / self._column_scale)

    @property
    def result_vector_length(self) -> int:
        return self.num_classes


class GBDTCommunityClassifier(CommunityClassifier):
    """LoCEC-XGB community classifier built on gradient-boosted trees.

    ``r_C`` concatenates the softmax class probabilities with per-class sums
    of the ensemble's leaf values — the "values of the leaf nodes of the
    generated trees" that the paper uses as the community embedding, reduced
    per class so the embedding length does not grow with the round count.
    """

    def __init__(
        self,
        builder: FeatureMatrixBuilder,
        num_classes: int = len(RelationType.classification_targets()),
        config: GBDTConfig | None = None,
    ) -> None:
        self.builder = builder
        self.num_classes = num_classes
        self.config = config or GBDTConfig()
        self._model: GradientBoostedClassifier | None = None

    def fit(
        self, communities: Sequence[LocalCommunity], labels: Sequence[int]
    ) -> "GBDTCommunityClassifier":
        if len(communities) != len(labels):
            raise PipelineError("communities and labels must have the same length")
        if not communities:
            raise PipelineError("cannot fit the community classifier on zero communities")
        design = self.builder.statistic_vectors(communities)
        self._model = GradientBoostedClassifier(
            num_rounds=self.config.num_rounds,
            learning_rate=self.config.learning_rate,
            max_depth=self.config.max_depth,
            min_samples_leaf=self.config.min_samples_leaf,
            subsample=self.config.subsample,
            num_classes=self.num_classes,
            seed=self.config.seed,
            backend=self.config.backend,
            max_bins=self.config.max_bins,
        )
        self._model.fit(design, np.asarray(labels, dtype=np.int64))
        return self

    def predict_proba(self, communities: Sequence[LocalCommunity]) -> np.ndarray:
        if self._model is None:
            raise NotFittedError(self)
        if not communities:
            return np.zeros((0, self.num_classes))
        design = self.builder.statistic_vectors(communities)
        return self._model.predict_proba(design)

    def result_vectors(self, communities: Sequence[LocalCommunity]) -> np.ndarray:
        """Probabilities concatenated with per-class leaf-value scores."""
        if self._model is None:
            raise NotFittedError(self)
        if not communities:
            return np.zeros((0, self.result_vector_length))
        design = self.builder.statistic_vectors(communities)
        probabilities = self._model.predict_proba(design)
        leaf_values = self._model.leaf_values(design)
        # Leaf columns cycle through classes within each round: reduce them to
        # one summed score per class, then squash with a softmax so the scale
        # matches the probability block.
        per_class = np.zeros((design.shape[0], self.num_classes))
        for column in range(leaf_values.shape[1]):
            per_class[:, column % self.num_classes] += leaf_values[:, column]
        return np.hstack([probabilities, softmax(per_class)])

    @property
    def result_vector_length(self) -> int:
        return 2 * self.num_classes
