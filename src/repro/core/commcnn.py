"""CommCNN: the convolutional community classifier of Figure 8.

The model takes the ``k × (|I|+|f|)`` community feature matrix as a single-
channel image and processes it with three kinds of convolution kernels:

* **square** 3×3 kernels followed by two *Square Convolution Modules*
  (3×3 convolution + max pooling) that abstract features to a deeper level,
* a **wide** ``1 × (|I|+|f|)`` kernel that looks at all features of one node
  at a time, followed by a 1×1 convolution and global max pooling, and
* a **long** ``k × 1`` kernel that compares all nodes within one feature
  dimension, also followed by a 1×1 convolution and global max pooling.

The three branch outputs are flattened, concatenated and fed to two fully
connected layers with a softmax output over the relationship types.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CommCNNConfig
from repro.exceptions import ModelConfigError
from repro.ml.nn import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalMaxPool2D,
    MaxPool2D,
    NeuralNetworkClassifier,
    ParallelConcat,
    ReLU,
    Sequential,
)


def build_commcnn_model(
    k: int,
    num_columns: int,
    num_classes: int,
    config: CommCNNConfig | None = None,
    include_square_branch: bool = True,
    include_wide_branch: bool = True,
    include_long_branch: bool = True,
) -> Sequential:
    """Assemble the CommCNN network of Figure 8.

    Parameters
    ----------
    k:
        Number of rows of the input feature matrix.
    num_columns:
        Number of columns (``|I| + |f|``).
    num_classes:
        Size of the softmax output (``|L|``).
    config:
        CommCNN hyper-parameters.
    include_square_branch / include_wide_branch / include_long_branch:
        Branch toggles used by the kernel-ablation benchmark; the paper's
        model enables all three.
    """
    config = config or CommCNNConfig()
    config.validate()
    if k < 1 or num_columns < 1:
        raise ModelConfigError("k and num_columns must be positive")
    if num_classes < 2:
        raise ModelConfigError("num_classes must be >= 2")

    filters = config.num_filters
    seed = config.seed
    branches: list[Sequential] = []

    if include_square_branch:
        square_layers: list = [
            Conv2D(1, filters, (min(3, k), min(3, num_columns)), seed=seed),
            ReLU(),
        ]
        # Two "Square Convolution Modules": 3x3 convolution + max pooling,
        # degrading gracefully when the feature map becomes too small.
        height = k - min(3, k) + 1
        width = num_columns - min(3, num_columns) + 1
        for module_index in range(2):
            kernel_h = min(3, height)
            kernel_w = min(3, width)
            if kernel_h < 1 or kernel_w < 1 or height < 1 or width < 1:
                break
            square_layers.extend(
                [
                    Conv2D(filters, filters, (kernel_h, kernel_w), seed=seed + module_index + 1),
                    ReLU(),
                    MaxPool2D((2, 2)),
                ]
            )
            height = max(1, (height - kernel_h + 1) // 2)
            width = max(1, (width - kernel_w + 1) // 2)
        square_layers.append(Flatten())
        branches.append(Sequential(square_layers))

    if include_wide_branch:
        branches.append(
            Sequential(
                [
                    Conv2D(1, filters, (1, num_columns), seed=seed + 10),
                    ReLU(),
                    Conv2D(filters, filters, (1, 1), seed=seed + 11),
                    ReLU(),
                    GlobalMaxPool2D(),
                ]
            )
        )

    if include_long_branch:
        branches.append(
            Sequential(
                [
                    Conv2D(1, filters, (k, 1), seed=seed + 20),
                    ReLU(),
                    Conv2D(filters, filters, (1, 1), seed=seed + 21),
                    ReLU(),
                    GlobalMaxPool2D(),
                ]
            )
        )

    if not branches:
        raise ModelConfigError("at least one CommCNN branch must be enabled")

    convolution_module = ParallelConcat(branches)
    # Probe the branch output width with a dummy forward pass so the dense
    # head can be sized without hand-computing feature-map arithmetic.
    probe = convolution_module.forward(
        np.zeros((1, 1, k, num_columns), dtype=np.float64), training=False
    )
    concat_width = probe.shape[1]

    head: list = [
        convolution_module,
        Dense(concat_width, config.dense_units, seed=seed + 30),
        ReLU(),
    ]
    if config.dropout > 0.0:
        head.append(Dropout(config.dropout, seed=seed + 31))
    head.extend(
        [
            Dense(config.dense_units, max(config.dense_units // 2, num_classes), seed=seed + 32),
            ReLU(),
            Dense(max(config.dense_units // 2, num_classes), num_classes, seed=seed + 33),
        ]
    )
    return Sequential(head)


def build_commcnn_classifier(
    k: int,
    num_columns: int,
    num_classes: int,
    config: CommCNNConfig | None = None,
    **branch_toggles: bool,
) -> NeuralNetworkClassifier:
    """Build a trainable CommCNN classifier (model + loss + Adam trainer).

    ``config.nn_backend`` selects the execution backend (``"loop"`` layer
    walks, ``"fused"`` compiled tape, or ``"auto"``); outputs are
    bit-identical either way.
    """
    config = config or CommCNNConfig()
    model = build_commcnn_model(
        k=k,
        num_columns=num_columns,
        num_classes=num_classes,
        config=config,
        **branch_toggles,
    )
    return NeuralNetworkClassifier(
        model,
        num_classes=num_classes,
        epochs=config.epochs,
        batch_size=config.batch_size,
        learning_rate=config.learning_rate,
        seed=config.seed,
        backend=config.nn_backend,
    )
