"""Result containers returned by the LoCEC pipeline."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.types import Edge, Node, RelationType


@dataclass
class CommunityClassification:
    """Predicted type of one local community."""

    ego: Node
    index: int
    size: int
    label: RelationType
    probabilities: tuple[float, ...]


@dataclass
class EdgeClassification:
    """Predicted type of one edge."""

    edge: Edge
    label: RelationType
    probabilities: tuple[float, ...]


@dataclass
class LoCECResult:
    """Full output of a LoCEC run (Algorithm 2 over a whole network).

    Provides the type distributions the paper reports in Figure 13 and the
    raw per-community / per-edge assignments downstream applications (e.g.
    :mod:`repro.ads`) consume.
    """

    community_classifications: list[CommunityClassification] = field(default_factory=list)
    edge_classifications: list[EdgeClassification] = field(default_factory=list)

    @property
    def num_communities(self) -> int:
        return len(self.community_classifications)

    @property
    def num_edges(self) -> int:
        return len(self.edge_classifications)

    def community_type_distribution(self) -> dict[RelationType, float]:
        """Fraction of communities assigned to each type (Figure 13a)."""
        return _distribution(
            [item.label for item in self.community_classifications]
        )

    def edge_type_distribution(self) -> dict[RelationType, float]:
        """Fraction of edges assigned to each type (Figure 13b)."""
        return _distribution([item.label for item in self.edge_classifications])

    def edge_label_map(self) -> dict[Edge, RelationType]:
        """Mapping from canonical edge to its predicted type."""
        return {item.edge: item.label for item in self.edge_classifications}

    def mean_community_size(self, label: RelationType) -> float:
        """Mean size of communities predicted as ``label`` (0 when none)."""
        sizes = [
            item.size
            for item in self.community_classifications
            if item.label == label
        ]
        return sum(sizes) / len(sizes) if sizes else 0.0


def _distribution(labels: list[RelationType]) -> dict[RelationType, float]:
    counts = Counter(labels)
    total = sum(counts.values())
    if total == 0:
        return {label: 0.0 for label in RelationType.classification_targets()}
    return {
        label: counts.get(label, 0) / total
        for label in RelationType.classification_targets()
    }
