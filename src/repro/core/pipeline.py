"""The LoCEC pipeline (Algorithm 2): division → aggregation → combination.

:class:`LoCEC` orchestrates the three phases end to end:

1. **Division** — ego networks + local community detection for every ego.
2. **Aggregation** — community feature construction (Algorithm 1) and
   community classification (CommCNN or GBDT), yielding ``r_C`` per community.
3. **Combination** — Equation 4 edge features + logistic-regression edge
   labeling.

Typical usage::

    pipeline = LoCEC(LoCECConfig.locec_cnn())
    pipeline.fit(graph, features, interactions, train_edges)
    report = pipeline.evaluate(test_edges)
    result = pipeline.classify_network()          # Figure 13-style output

A fitted pipeline also serves *online*: :meth:`LoCEC.apply_updates` folds a
batch of graph/store deltas into the fitted state incrementally (re-dividing
only the egos whose ego networks changed and re-scoring only the dirty
communities), and :class:`repro.serve.ServingSession` wraps the pipeline in a
request layer with batched prediction, caching and latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.clock import Clock, SystemClock
from repro.core.aggregation import FeatureMatrixBuilder
from repro.core.combination import (
    AgreementEdgeLabeler,
    CommunityKey,
    EdgeFeatureBuilder,
    EdgeLabeler,
    community_key,
)
from repro.core.community_classifier import (
    CNNCommunityClassifier,
    CommunityClassifier,
    GBDTCommunityClassifier,
)
from repro.core.config import LoCECConfig, ResilienceConfig
from repro.core.division import DivisionResult, LocalCommunity, divide
from repro.core.labels import EdgeLabelIndex, labeled_communities
from repro.core.results import (
    CommunityClassification,
    EdgeClassification,
    LoCECResult,
)
from repro.exceptions import NotFittedError, PipelineError
from repro.graph.features import NodeFeatureStore
from repro.graph.graph import Graph
from repro.graph.interactions import InteractionStore
from repro.ml.metrics import classification_report
from repro.types import ClassificationReport, Edge, LabeledEdge, Node, RelationType

if TYPE_CHECKING:  # pragma: no cover - typing-only import (lazy at runtime)
    from repro.runtime.faultinject import FaultPlan


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each LoCEC phase during :meth:`LoCEC.fit`."""

    division: float = 0.0
    aggregation: float = 0.0
    combination: float = 0.0
    training: float = 0.0

    @property
    def total(self) -> float:
        return self.division + self.aggregation + self.combination + self.training

    def as_dict(self) -> dict[str, float]:
        return {
            "training": self.training,
            "phase1_division": self.division,
            "phase2_aggregation": self.aggregation,
            "phase3_combination": self.combination,
            "total": self.total,
        }


@dataclass
class FitSummary:
    """Bookkeeping produced by :meth:`LoCEC.fit` (sizes and timings)."""

    num_egos: int = 0
    num_communities: int = 0
    num_labeled_communities: int = 0
    num_training_edges: int = 0
    timings: PhaseTimings = field(default_factory=PhaseTimings)


@dataclass
class UpdateReport:
    """Bookkeeping produced by :meth:`LoCEC.apply_updates`.

    ``stale_egos`` lists egos whose supervised re-division failed this
    update (``on_shard_failure="skip"`` degradation): their previous
    communities stay served until a later update or refit succeeds.
    ``kernel_patched`` is ``True`` when every store delta was folded into
    the compiled Phase II kernel in place (delta compilation) — ``False``
    means a structural delta forced a full recompile on next use.
    """

    num_added_edges: int = 0
    num_removed_edges: int = 0
    num_interaction_deltas: int = 0
    num_feature_updates: int = 0
    num_dirty_egos: int = 0
    num_redivided_egos: int = 0
    stale_egos: tuple[Node, ...] = ()
    num_rescored_communities: int = 0
    classifier_refit: bool = False
    kernel_patched: bool = True
    timings: PhaseTimings = field(default_factory=PhaseTimings)

    @property
    def degraded(self) -> bool:
        """``True`` when at least one ego is being served stale communities."""
        return bool(self.stale_egos)


class LoCEC:
    """Local Community-based Edge Classification pipeline.

    Parameters
    ----------
    config:
        Pipeline configuration; :meth:`LoCECConfig.locec_cnn` and
        :meth:`LoCECConfig.locec_xgb` build the two published variants.
    """

    def __init__(
        self, config: LoCECConfig | None = None, clock: Clock | None = None
    ) -> None:
        self.config = config or LoCECConfig()
        self.config.validate()
        # Phase timings route through the injectable clock so the zero-sleep
        # test tier can drive fit() under virtual time (FakeClock).
        self._clock = clock or SystemClock()
        self.division_: DivisionResult | None = None
        self.community_classifier_: CommunityClassifier | None = None
        self.edge_labeler_: EdgeLabeler | None = None
        self.feature_builder_: FeatureMatrixBuilder | None = None
        self.edge_feature_builder_: EdgeFeatureBuilder | None = None
        self.fit_summary_: FitSummary | None = None
        self._graph: Graph | None = None
        self._num_classes = len(RelationType.classification_targets())
        # Fitted-state snapshot consumed by apply_updates (incremental path).
        self._features: NodeFeatureStore | None = None
        self._interactions: InteractionStore | None = None
        self._labeled_edges: list[LabeledEdge] = []
        self._train_communities: list[LocalCommunity] = []
        self._train_labels: list[int] = []
        self._stale_egos: set[Node] = set()
        self._update_epoch = 0

    # ---------------------------------------------------------------- training
    def fit(
        self,
        graph: Graph,
        features: NodeFeatureStore,
        interactions: InteractionStore,
        labeled_edges: Sequence[LabeledEdge],
        egos: Iterable[Node] | None = None,
        division: DivisionResult | None = None,
    ) -> "LoCEC":
        """Run Algorithm 2's training side.

        Parameters
        ----------
        graph, features, interactions:
            The network ``G``, user feature matrix ``F`` and interaction
            matrices ``I``.
        labeled_edges:
            The survey ground truth ``E_labeled`` used to train the community
            classifier and the edge labeler.
        egos:
            Optional subset of nodes to process in Phase I (default: all).
        division:
            Optional pre-computed Phase I result.  Passing one lets
            experiments that sweep Phase II/III parameters reuse the expensive
            community detection; it must cover every ego needed downstream.
        """
        if not labeled_edges:
            raise PipelineError("LoCEC.fit requires at least one labeled edge")
        self._graph = graph
        self._features = features
        self._interactions = interactions
        self._labeled_edges = list(labeled_edges)
        self._stale_egos = set()
        summary = FitSummary()

        # Phase I: division.
        start = self._clock.perf_counter()
        if division is None:
            division = divide(
                graph,
                egos=egos,
                detector=self.config.community_detector,
                backend=self.config.backend,
            )
        self.division_ = division
        summary.timings.division = self._clock.perf_counter() - start
        summary.num_egos = division.num_egos
        summary.num_communities = division.num_communities

        # Phase II: aggregation + community classification.
        start = self._clock.perf_counter()
        if self.feature_builder_ is not None:
            # Refit: release the previous builder's sharded-path resources
            # (process pool + published shared-memory lease) before replacing.
            self.feature_builder_.close()
        self.feature_builder_ = FeatureMatrixBuilder(
            features=features,
            interactions=interactions,
            k=self.config.k,
            options=self.config.runtime_options,
        )
        label_index = EdgeLabelIndex(labeled_edges)
        train_communities, community_labels = labeled_communities(
            division, label_index, min_labeled_members=1
        )
        if not train_communities:
            raise PipelineError(
                "no local community has a derivable ground-truth label; "
                "check that labeled edges overlap the processed egos"
            )
        summary.num_labeled_communities = len(train_communities)
        self._train_communities = list(train_communities)
        self._train_labels = [int(label) for label in community_labels]
        self.community_classifier_ = self._build_community_classifier()
        self.community_classifier_.fit(train_communities, community_labels)

        all_communities = list(division.all_communities())
        result_vectors = self._compute_result_vectors(all_communities)
        summary.timings.aggregation = self._clock.perf_counter() - start

        # Phase III: combination.
        start = self._clock.perf_counter()
        self.edge_feature_builder_ = EdgeFeatureBuilder(
            division=division,
            result_vectors=result_vectors,
            result_vector_length=self.community_classifier_.result_vector_length,
        )
        train_edges = [item.edge for item in labeled_edges]
        train_labels = [int(item.label) for item in labeled_edges]
        summary.num_training_edges = len(train_edges)
        self.edge_labeler_ = EdgeLabeler(
            self.edge_feature_builder_,
            num_classes=self._num_classes,
            learning_rate=self.config.edge_lr_learning_rate,
            num_iterations=self.config.edge_lr_iterations,
            l2=self.config.edge_lr_l2,
            seed=self.config.seed,
        )
        self.edge_labeler_.fit(train_edges, train_labels)
        summary.timings.combination = self._clock.perf_counter() - start

        self.fit_summary_ = summary
        return self

    def _build_community_classifier(self) -> CommunityClassifier:
        assert self.feature_builder_ is not None
        if self.config.community_model == "cnn":
            # The pipeline-level nn_backend knob governs the CommCNN execution
            # engine; a CommCNNConfig.nn_backend set directly still wins when
            # the pipeline knob is left on "auto".
            cnn_config = self.config.cnn
            if self.config.nn_backend != "auto":
                cnn_config = replace(cnn_config, nn_backend=self.config.nn_backend)
            return CNNCommunityClassifier(
                self.feature_builder_,
                num_classes=self._num_classes,
                config=cnn_config,
            )
        # The pipeline-level ml_backend knob governs the model layer; a
        # GBDTConfig.backend set directly still wins when the pipeline knob
        # is left on "auto".
        gbdt_config = self.config.gbdt
        if self.config.ml_backend != "auto":
            gbdt_config = replace(gbdt_config, backend=self.config.ml_backend)
        return GBDTCommunityClassifier(
            self.feature_builder_,
            num_classes=self._num_classes,
            config=gbdt_config,
        )

    def _compute_result_vectors(
        self, communities: Sequence
    ) -> dict[CommunityKey, np.ndarray]:
        assert self.community_classifier_ is not None
        if not communities:
            return {}
        vectors = self.community_classifier_.result_vectors(communities)
        return {
            community_key(community): vectors[index]
            for index, community in enumerate(communities)
        }

    # ----------------------------------------------------- incremental serving
    @property
    def graph(self) -> Graph | None:
        """The fitted friendship graph (mutated in place by updates)."""
        return self._graph

    @property
    def update_epoch(self) -> int:
        """Number of :meth:`apply_updates` calls folded into the fitted state."""
        return self._update_epoch

    @property
    def stale_egos(self) -> frozenset[Node]:
        """Egos currently served stale communities after failed re-division."""
        return frozenset(self._stale_egos)

    def apply_updates(
        self,
        added_edges: Sequence[Edge] = (),
        removed_edges: Sequence[Edge] = (),
        interaction_deltas: Sequence[tuple[Node, Node, Sequence[float]]] = (),
        feature_updates: Sequence[tuple[Node, Sequence[float]]] = (),
        fault_plan: "FaultPlan | None" = None,
    ) -> UpdateReport:
        """Fold a batch of graph/store deltas into the fitted state.

        The incremental counterpart of :meth:`fit`: instead of re-running
        Algorithm 2 from scratch, only the state actually touched by the
        deltas is recomputed, and the result is **bit-identical** to a
        from-scratch ``fit`` on the updated inputs (absent injected faults).

        1. ``added_edges`` / ``removed_edges`` mutate the friendship graph.
           A changed edge ``(a, b)`` dirties exactly the egos whose ego
           network contains it: ``{a, b} ∪ (N(a) ∩ N(b))``.  Only those are
           re-divided, through the supervised
           :class:`~repro.runtime.executor.ShardedDivisionExecutor` with
           ``on_shard_failure="skip"`` — a crashed re-division leaves the
           ego's *previous* communities served (stale-but-consistent, see
           :attr:`UpdateReport.stale_egos`) instead of failing the update.
        2. ``interaction_deltas`` — ``(u, v, delta)`` triples added onto the
           stored interaction vector — and ``feature_updates`` —
           ``(node, values)`` replacements — are written to the live stores
           and *delta-compiled* into the Phase II kernel in place where
           possible (:meth:`FeatureMatrixBuilder.patch_kernel`).
        3. Fitted models stay warm: the community classifier is refit only
           when a delta touched its training set, and only dirty communities
           are re-scored (CommCNN re-scores every community in one batch so
           inference batching matches a from-scratch fit bit for bit).  The
           Phase III edge labeler is always refit — it is seeded, cheap and
           deterministic.

        Returns an :class:`UpdateReport`; ``fault_plan`` injects
        deterministic re-division faults (chaos tests).
        """
        self._require_fitted()
        assert self._graph is not None and self.division_ is not None
        assert self.feature_builder_ is not None
        assert self._features is not None and self._interactions is not None
        assert self.edge_feature_builder_ is not None
        graph = self._graph
        division = self.division_
        report = UpdateReport(
            num_added_edges=len(added_edges),
            num_removed_edges=len(removed_edges),
            num_interaction_deltas=len(interaction_deltas),
            num_feature_updates=len(feature_updates),
        )

        # -- Phase I: graph deltas, dirty marking, supervised re-division.
        start = self._clock.perf_counter()
        known_nodes = set(graph.nodes()) if added_edges else set()
        for u, v in added_edges:
            graph.add_edge(u, v)
        for u, v in removed_edges:
            graph.remove_edge(u, v)
        dirty_egos: set[Node] = set()
        for u, v in tuple(added_edges) + tuple(removed_edges):
            dirty_egos.add(u)
            dirty_egos.add(v)
            dirty_egos.update(graph.neighbors(u) & graph.neighbors(v))
        # Egos outside the fitted division (subset fits) stay un-divided;
        # nodes introduced by this update always become egos.
        eligible = {
            ego
            for ego in dirty_egos
            if ego in division.communities_by_ego
            or (bool(added_edges) and ego not in known_nodes)
        }
        dirty_list = [ego for ego in graph.nodes() if ego in eligible]
        report.num_dirty_egos = len(dirty_list)
        redivided: dict[Node, list[LocalCommunity]] = {}
        if dirty_list:
            from repro.runtime.executor import ShardedDivisionExecutor

            resilience = replace(
                self.config.resilience or ResilienceConfig(),
                on_shard_failure="skip",
            )
            with ShardedDivisionExecutor(
                num_shards=min(4, len(dirty_list)),
                num_workers=1,
                detector=self.config.community_detector,
                backend=self.config.backend,
                resilience=resilience,
                fault_plan=fault_plan,
                clock=self._clock,
            ) as executor:
                redivided = dict(
                    executor.run(graph, egos=dirty_list).division.communities_by_ego
                )
        rescore_keys: set[CommunityKey] = set()
        changed_egos: set[Node] = set()
        for ego in dirty_list:
            if ego in redivided:
                self._stale_egos.discard(ego)
                report.num_redivided_egos += 1
                if redivided[ego] == division.communities_by_ego.get(ego):
                    # Re-division reproduced the previous communities bit for
                    # bit (e.g. an idempotent edge re-add): keep the old
                    # objects and their stored scores — rescoring identical
                    # inputs would only write back identical values.
                    continue
                division.communities_by_ego[ego] = redivided[ego]
                changed_egos.add(ego)
                for community in redivided[ego]:
                    rescore_keys.add(community_key(community))
            else:
                # Skip-mode degradation: keep serving the previous communities
                # (an ego new to this update has none and serves empty).
                self._stale_egos.add(ego)
                division.communities_by_ego.setdefault(ego, [])
        division.invalidate_index()
        report.stale_egos = tuple(ego for ego in dirty_list if ego not in redivided)
        report.timings.division = self._clock.perf_counter() - start

        # -- Phase II: store deltas, delta compilation, dirty re-scoring.
        start = self._clock.perf_counter()
        touched_edges: list[tuple[Node, Node]] = []
        for u, v, delta in interaction_deltas:
            vector = self._interactions.vector(u, v) + np.asarray(
                delta, dtype=np.float64
            )
            self._interactions.set_vector(u, v, vector)
            touched_edges.append((u, v))
        touched_nodes: list[Node] = []
        for node, values in feature_updates:
            self._features.set(node, values)
            touched_nodes.append(node)
        report.kernel_patched = self.feature_builder_.patch_kernel(
            feature_nodes=touched_nodes, interaction_edges=touched_edges
        )
        # A community's matrix depends only on its members' pairwise
        # interactions and per-member features (the ego is not a member), so
        # an interaction delta on (u, v) dirties exactly the communities of
        # egos in N(u) ∩ N(v) containing both endpoints, and a feature update
        # on n dirties the communities of N(n) containing n.
        for u, v in touched_edges:
            if u not in graph or v not in graph:
                continue
            for ego in graph.neighbors(u) & graph.neighbors(v):
                for community in division.communities_of(ego):
                    if u in community and v in community:
                        rescore_keys.add(community_key(community))
        for node in touched_nodes:
            if node not in graph:
                continue
            for ego in graph.neighbors(node):
                for community in division.communities_of(ego):
                    if node in community:
                        rescore_keys.add(community_key(community))

        label_index = EdgeLabelIndex(self._labeled_edges)
        train_communities, community_labels = labeled_communities(
            division, label_index, min_labeled_members=1
        )
        if not train_communities:
            raise PipelineError(
                "update removed every labeled community; refit from scratch"
            )
        train_labels = [int(label) for label in community_labels]
        report.classifier_refit = (
            train_communities != self._train_communities
            or train_labels != self._train_labels
            or any(community_key(c) in rescore_keys for c in train_communities)
        )
        self._train_communities = list(train_communities)
        self._train_labels = train_labels
        if report.classifier_refit:
            self.community_classifier_ = self._build_community_classifier()
            self.community_classifier_.fit(train_communities, community_labels)
        assert self.community_classifier_ is not None

        result_vectors = self.edge_feature_builder_.result_vectors
        all_communities = list(division.all_communities())
        # CommCNN inference is re-run over the full community list in one
        # batch whenever anything is dirty: scoring a subset would change the
        # inference batch shape relative to a from-scratch fit, and GEMM-based
        # convolution is only guaranteed bit-stable for identical batches.
        # GBDT scoring is per-row and batch-invariant, so it scores subsets.
        rescore_all = report.classifier_refit or (
            self.config.community_model == "cnn" and bool(rescore_keys)
        )
        if rescore_all:
            fresh = self._compute_result_vectors(all_communities)
            result_vectors.clear()
            result_vectors.update(fresh)
            report.num_rescored_communities = len(fresh)
        else:
            for key in [k for k in result_vectors if k[0] in changed_egos]:
                del result_vectors[key]
            dirty_communities = [
                c for c in all_communities if community_key(c) in rescore_keys
            ]
            result_vectors.update(self._compute_result_vectors(dirty_communities))
            report.num_rescored_communities = len(dirty_communities)
        report.timings.aggregation = self._clock.perf_counter() - start

        # -- Phase III: the edge labeler is always refit (seeded, cheap,
        # deterministic) over the stored labeled edges and the updated
        # result vectors.
        start = self._clock.perf_counter()
        self.edge_labeler_ = EdgeLabeler(
            self.edge_feature_builder_,
            num_classes=self._num_classes,
            learning_rate=self.config.edge_lr_learning_rate,
            num_iterations=self.config.edge_lr_iterations,
            l2=self.config.edge_lr_l2,
            seed=self.config.seed,
        )
        self.edge_labeler_.fit(
            [item.edge for item in self._labeled_edges],
            [int(item.label) for item in self._labeled_edges],
        )
        report.timings.combination = self._clock.perf_counter() - start

        self._update_epoch += 1
        return report

    # --------------------------------------------------------------- inference
    def predict_edges(self, edges: Sequence[Edge]) -> list[RelationType]:
        """Predicted :class:`RelationType` for each edge, in input order.

        The whole batch is featurized (Equation 4) and scored through the
        Phase III logistic regression in one pass, on whichever aggregation
        backend the pipeline was configured with.  Edges whose endpoints
        share no classified community fall back to the zero feature vector
        rather than failing.  For a long-lived serving loop — caching,
        latency accounting, incremental updates between batches — wrap the
        pipeline in :class:`repro.serve.ServingSession` and fold graph
        changes in with :meth:`apply_updates`.
        """
        self._require_fitted()
        assert self.edge_labeler_ is not None
        return self.edge_labeler_.predict_types(list(edges))

    def predict_edge_proba(self, edges: Sequence[Edge]) -> np.ndarray:
        """Class-probability matrix for a batch of edges.

        Row ``i`` holds the per-class probabilities of ``edges[i]`` (columns
        follow ``RelationType.classification_targets()`` order); an empty
        batch yields a ``(0, num_classes)`` matrix.  Same backend and
        fallback semantics as :meth:`predict_edges`.
        """
        self._require_fitted()
        assert self.edge_labeler_ is not None
        return self.edge_labeler_.predict_proba(list(edges))

    def predict_edge(self, u: Node, v: Node) -> RelationType:
        """Predicted relationship type of a single edge."""
        return self.predict_edges([(u, v)])[0]

    def evaluate(self, labeled_edges: Sequence[LabeledEdge]) -> ClassificationReport:
        """Per-class precision/recall/F1 report on held-out labeled edges."""
        self._require_fitted()
        edges = [item.edge for item in labeled_edges]
        y_true = np.array([int(item.label) for item in labeled_edges])
        y_pred = np.array([int(label) for label in self.predict_edges(edges)])
        return classification_report(y_true, y_pred)

    # ----------------------------------------------------- network-level output
    def classify_communities(self) -> list[CommunityClassification]:
        """Predicted type of every local community found in Phase I."""
        self._require_fitted()
        assert self.division_ is not None and self.community_classifier_ is not None
        communities = list(self.division_.all_communities())
        if not communities:
            return []
        probabilities = self.community_classifier_.predict_proba(communities)
        classifications: list[CommunityClassification] = []
        for index, community in enumerate(communities):
            row = probabilities[index]
            classifications.append(
                CommunityClassification(
                    ego=community.ego,
                    index=community.index,
                    size=community.size,
                    label=RelationType(int(np.argmax(row))),
                    probabilities=tuple(float(x) for x in row),
                )
            )
        return classifications

    def classify_network(self, edges: Iterable[Edge] | None = None) -> LoCECResult:
        """Classify every community and every edge of the fitted graph.

        This is the "apply to the whole WeChat network" step whose output
        distribution the paper reports in Figure 13.
        """
        self._require_fitted()
        assert self._graph is not None
        edge_list = list(edges) if edges is not None else list(self._graph.edges())
        probabilities = self.predict_edge_proba(edge_list)
        edge_classifications = [
            EdgeClassification(
                edge=edge,
                label=RelationType(int(np.argmax(probabilities[index]))),
                probabilities=tuple(float(x) for x in probabilities[index]),
            )
            for index, edge in enumerate(edge_list)
        ]
        return LoCECResult(
            community_classifications=self.classify_communities(),
            edge_classifications=edge_classifications,
        )

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release Phase II resources (pool + shm lease).  Idempotent.

        The pipeline stays usable — the builder re-acquires its sharded-path
        resources lazily on the next aggregation call.
        """
        if self.feature_builder_ is not None:
            self.feature_builder_.close()

    def __enter__(self) -> "LoCEC":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ---------------------------------------------------------------- ablations
    def agreement_rule_predictions(self, edges: Sequence[Edge]) -> np.ndarray:
        """Predictions of the naive "agree-else-argmax" Phase III ablation."""
        self._require_fitted()
        assert self.edge_feature_builder_ is not None
        labeler = AgreementEdgeLabeler(self.edge_feature_builder_, self._num_classes)
        return labeler.predict(list(edges))

    def _require_fitted(self) -> None:
        if self.edge_labeler_ is None:
            raise NotFittedError(self)
