"""The LoCEC pipeline (Algorithm 2): division → aggregation → combination.

:class:`LoCEC` orchestrates the three phases end to end:

1. **Division** — ego networks + local community detection for every ego.
2. **Aggregation** — community feature construction (Algorithm 1) and
   community classification (CommCNN or GBDT), yielding ``r_C`` per community.
3. **Combination** — Equation 4 edge features + logistic-regression edge
   labeling.

Typical usage::

    pipeline = LoCEC(LoCECConfig.locec_cnn())
    pipeline.fit(graph, features, interactions, train_edges)
    report = pipeline.evaluate(test_edges)
    result = pipeline.classify_network()          # Figure 13-style output
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from repro.clock import Clock, SystemClock
from repro.core.aggregation import FeatureMatrixBuilder
from repro.core.combination import (
    AgreementEdgeLabeler,
    CommunityKey,
    EdgeFeatureBuilder,
    EdgeLabeler,
    community_key,
)
from repro.core.community_classifier import (
    CNNCommunityClassifier,
    CommunityClassifier,
    GBDTCommunityClassifier,
)
from repro.core.config import LoCECConfig
from repro.core.division import DivisionResult, divide
from repro.core.labels import EdgeLabelIndex, labeled_communities
from repro.core.results import (
    CommunityClassification,
    EdgeClassification,
    LoCECResult,
)
from repro.exceptions import NotFittedError, PipelineError
from repro.graph.features import NodeFeatureStore
from repro.graph.graph import Graph
from repro.graph.interactions import InteractionStore
from repro.ml.metrics import classification_report
from repro.types import ClassificationReport, Edge, LabeledEdge, Node, RelationType


@dataclass
class PhaseTimings:
    """Wall-clock seconds spent in each LoCEC phase during :meth:`LoCEC.fit`."""

    division: float = 0.0
    aggregation: float = 0.0
    combination: float = 0.0
    training: float = 0.0

    @property
    def total(self) -> float:
        return self.division + self.aggregation + self.combination + self.training

    def as_dict(self) -> dict[str, float]:
        return {
            "training": self.training,
            "phase1_division": self.division,
            "phase2_aggregation": self.aggregation,
            "phase3_combination": self.combination,
            "total": self.total,
        }


@dataclass
class FitSummary:
    """Bookkeeping produced by :meth:`LoCEC.fit` (sizes and timings)."""

    num_egos: int = 0
    num_communities: int = 0
    num_labeled_communities: int = 0
    num_training_edges: int = 0
    timings: PhaseTimings = field(default_factory=PhaseTimings)


class LoCEC:
    """Local Community-based Edge Classification pipeline.

    Parameters
    ----------
    config:
        Pipeline configuration; :meth:`LoCECConfig.locec_cnn` and
        :meth:`LoCECConfig.locec_xgb` build the two published variants.
    """

    def __init__(
        self, config: LoCECConfig | None = None, clock: Clock | None = None
    ) -> None:
        self.config = config or LoCECConfig()
        self.config.validate()
        # Phase timings route through the injectable clock so the zero-sleep
        # test tier can drive fit() under virtual time (FakeClock).
        self._clock = clock or SystemClock()
        self.division_: DivisionResult | None = None
        self.community_classifier_: CommunityClassifier | None = None
        self.edge_labeler_: EdgeLabeler | None = None
        self.feature_builder_: FeatureMatrixBuilder | None = None
        self.edge_feature_builder_: EdgeFeatureBuilder | None = None
        self.fit_summary_: FitSummary | None = None
        self._graph: Graph | None = None
        self._num_classes = len(RelationType.classification_targets())

    # ---------------------------------------------------------------- training
    def fit(
        self,
        graph: Graph,
        features: NodeFeatureStore,
        interactions: InteractionStore,
        labeled_edges: Sequence[LabeledEdge],
        egos: Iterable[Node] | None = None,
        division: DivisionResult | None = None,
    ) -> "LoCEC":
        """Run Algorithm 2's training side.

        Parameters
        ----------
        graph, features, interactions:
            The network ``G``, user feature matrix ``F`` and interaction
            matrices ``I``.
        labeled_edges:
            The survey ground truth ``E_labeled`` used to train the community
            classifier and the edge labeler.
        egos:
            Optional subset of nodes to process in Phase I (default: all).
        division:
            Optional pre-computed Phase I result.  Passing one lets
            experiments that sweep Phase II/III parameters reuse the expensive
            community detection; it must cover every ego needed downstream.
        """
        if not labeled_edges:
            raise PipelineError("LoCEC.fit requires at least one labeled edge")
        self._graph = graph
        summary = FitSummary()

        # Phase I: division.
        start = self._clock.perf_counter()
        if division is None:
            division = divide(
                graph,
                egos=egos,
                detector=self.config.community_detector,
                backend=self.config.backend,
            )
        self.division_ = division
        summary.timings.division = self._clock.perf_counter() - start
        summary.num_egos = division.num_egos
        summary.num_communities = division.num_communities

        # Phase II: aggregation + community classification.
        start = self._clock.perf_counter()
        if self.feature_builder_ is not None:
            # Refit: release the previous builder's sharded-path resources
            # (process pool + published shared-memory lease) before replacing.
            self.feature_builder_.close()
        self.feature_builder_ = FeatureMatrixBuilder(
            features=features,
            interactions=interactions,
            k=self.config.k,
            backend=self.config.backend,
            phase2_workers=self.config.phase2_workers,
            resilience=self.config.resilience,
        )
        label_index = EdgeLabelIndex(labeled_edges)
        train_communities, community_labels = labeled_communities(
            division, label_index, min_labeled_members=1
        )
        if not train_communities:
            raise PipelineError(
                "no local community has a derivable ground-truth label; "
                "check that labeled edges overlap the processed egos"
            )
        summary.num_labeled_communities = len(train_communities)
        self.community_classifier_ = self._build_community_classifier()
        self.community_classifier_.fit(train_communities, community_labels)

        all_communities = list(division.all_communities())
        result_vectors = self._compute_result_vectors(all_communities)
        summary.timings.aggregation = self._clock.perf_counter() - start

        # Phase III: combination.
        start = self._clock.perf_counter()
        self.edge_feature_builder_ = EdgeFeatureBuilder(
            division=division,
            result_vectors=result_vectors,
            result_vector_length=self.community_classifier_.result_vector_length,
        )
        train_edges = [item.edge for item in labeled_edges]
        train_labels = [int(item.label) for item in labeled_edges]
        summary.num_training_edges = len(train_edges)
        self.edge_labeler_ = EdgeLabeler(
            self.edge_feature_builder_,
            num_classes=self._num_classes,
            learning_rate=self.config.edge_lr_learning_rate,
            num_iterations=self.config.edge_lr_iterations,
            l2=self.config.edge_lr_l2,
            seed=self.config.seed,
        )
        self.edge_labeler_.fit(train_edges, train_labels)
        summary.timings.combination = self._clock.perf_counter() - start

        self.fit_summary_ = summary
        return self

    def _build_community_classifier(self) -> CommunityClassifier:
        assert self.feature_builder_ is not None
        if self.config.community_model == "cnn":
            # The pipeline-level nn_backend knob governs the CommCNN execution
            # engine; a CommCNNConfig.nn_backend set directly still wins when
            # the pipeline knob is left on "auto".
            cnn_config = self.config.cnn
            if self.config.nn_backend != "auto":
                cnn_config = replace(cnn_config, nn_backend=self.config.nn_backend)
            return CNNCommunityClassifier(
                self.feature_builder_,
                num_classes=self._num_classes,
                config=cnn_config,
            )
        # The pipeline-level ml_backend knob governs the model layer; a
        # GBDTConfig.backend set directly still wins when the pipeline knob
        # is left on "auto".
        gbdt_config = self.config.gbdt
        if self.config.ml_backend != "auto":
            gbdt_config = replace(gbdt_config, backend=self.config.ml_backend)
        return GBDTCommunityClassifier(
            self.feature_builder_,
            num_classes=self._num_classes,
            config=gbdt_config,
        )

    def _compute_result_vectors(
        self, communities: Sequence
    ) -> dict[CommunityKey, np.ndarray]:
        assert self.community_classifier_ is not None
        if not communities:
            return {}
        vectors = self.community_classifier_.result_vectors(communities)
        return {
            community_key(community): vectors[index]
            for index, community in enumerate(communities)
        }

    # --------------------------------------------------------------- inference
    def predict_edges(self, edges: Sequence[Edge]) -> list[RelationType]:
        """Predicted relationship type for each edge."""
        self._require_fitted()
        assert self.edge_labeler_ is not None
        return self.edge_labeler_.predict_types(list(edges))

    def predict_edge_proba(self, edges: Sequence[Edge]) -> np.ndarray:
        """Class-probability matrix for a batch of edges."""
        self._require_fitted()
        assert self.edge_labeler_ is not None
        return self.edge_labeler_.predict_proba(list(edges))

    def predict_edge(self, u: Node, v: Node) -> RelationType:
        """Predicted relationship type of a single edge."""
        return self.predict_edges([(u, v)])[0]

    def evaluate(self, labeled_edges: Sequence[LabeledEdge]) -> ClassificationReport:
        """Per-class precision/recall/F1 report on held-out labeled edges."""
        self._require_fitted()
        edges = [item.edge for item in labeled_edges]
        y_true = np.array([int(item.label) for item in labeled_edges])
        y_pred = np.array([int(label) for label in self.predict_edges(edges)])
        return classification_report(y_true, y_pred)

    # ----------------------------------------------------- network-level output
    def classify_communities(self) -> list[CommunityClassification]:
        """Predicted type of every local community found in Phase I."""
        self._require_fitted()
        assert self.division_ is not None and self.community_classifier_ is not None
        communities = list(self.division_.all_communities())
        if not communities:
            return []
        probabilities = self.community_classifier_.predict_proba(communities)
        classifications: list[CommunityClassification] = []
        for index, community in enumerate(communities):
            row = probabilities[index]
            classifications.append(
                CommunityClassification(
                    ego=community.ego,
                    index=community.index,
                    size=community.size,
                    label=RelationType(int(np.argmax(row))),
                    probabilities=tuple(float(x) for x in row),
                )
            )
        return classifications

    def classify_network(self, edges: Iterable[Edge] | None = None) -> LoCECResult:
        """Classify every community and every edge of the fitted graph.

        This is the "apply to the whole WeChat network" step whose output
        distribution the paper reports in Figure 13.
        """
        self._require_fitted()
        assert self._graph is not None
        edge_list = list(edges) if edges is not None else list(self._graph.edges())
        probabilities = self.predict_edge_proba(edge_list)
        edge_classifications = [
            EdgeClassification(
                edge=edge,
                label=RelationType(int(np.argmax(probabilities[index]))),
                probabilities=tuple(float(x) for x in probabilities[index]),
            )
            for index, edge in enumerate(edge_list)
        ]
        return LoCECResult(
            community_classifications=self.classify_communities(),
            edge_classifications=edge_classifications,
        )

    # ---------------------------------------------------------------- ablations
    def agreement_rule_predictions(self, edges: Sequence[Edge]) -> np.ndarray:
        """Predictions of the naive "agree-else-argmax" Phase III ablation."""
        self._require_fitted()
        assert self.edge_feature_builder_ is not None
        labeler = AgreementEdgeLabeler(self.edge_feature_builder_, self._num_classes)
        return labeler.predict(list(edges))

    def _require_fitted(self) -> None:
        if self.edge_labeler_ is None:
            raise NotFittedError(self)
