"""LoCEC core: the paper's three-phase edge-classification framework."""

from repro.core.aggregation import (
    CommunityFeatureMatrix,
    FeatureMatrixBuilder,
    interact,
    interaction_feature_vector,
)
from repro.core.combination import (
    AgreementEdgeLabeler,
    EdgeFeatureBuilder,
    EdgeLabeler,
    community_key,
)
from repro.core.commcnn import build_commcnn_classifier, build_commcnn_model
from repro.core.community_classifier import (
    CNNCommunityClassifier,
    CommunityClassifier,
    GBDTCommunityClassifier,
)
from repro.core.config import CommCNNConfig, GBDTConfig, LoCECConfig
from repro.core.division import (
    BACKENDS,
    DivisionResult,
    LocalCommunity,
    divide,
    divide_ego,
    get_detector,
    resolve_backend,
)
from repro.core.labels import (
    EdgeLabelIndex,
    community_ground_truth,
    labeled_communities,
    majority_label,
    split_labeled_edges,
)
from repro.core.pipeline import FitSummary, LoCEC, PhaseTimings
from repro.core.results import (
    CommunityClassification,
    EdgeClassification,
    LoCECResult,
)
from repro.core.tightness import community_tightness, tightness

__all__ = [
    "LoCEC",
    "LoCECConfig",
    "CommCNNConfig",
    "GBDTConfig",
    "FitSummary",
    "PhaseTimings",
    "divide",
    "divide_ego",
    "get_detector",
    "resolve_backend",
    "BACKENDS",
    "DivisionResult",
    "LocalCommunity",
    "tightness",
    "community_tightness",
    "interact",
    "interaction_feature_vector",
    "FeatureMatrixBuilder",
    "CommunityFeatureMatrix",
    "build_commcnn_model",
    "build_commcnn_classifier",
    "CommunityClassifier",
    "CNNCommunityClassifier",
    "GBDTCommunityClassifier",
    "EdgeFeatureBuilder",
    "EdgeLabeler",
    "AgreementEdgeLabeler",
    "community_key",
    "EdgeLabelIndex",
    "community_ground_truth",
    "labeled_communities",
    "majority_label",
    "split_labeled_edges",
    "LoCECResult",
    "CommunityClassification",
    "EdgeClassification",
]
