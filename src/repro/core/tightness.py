"""Tightness between a node and its local community (Equation 3).

For an ego node ``v``, a friend ``u`` inside local community ``C`` of ``v``'s
ego network ``G_v``:

* ``tightness(u, C) = 1`` when ``|C| = 1`` (singleton community), otherwise
* ``tightness(u, C) = (|friend(u, C)| / |friend(u, G_v)|) × (|friend(u, C)| / (|C| - 1))``

where ``friend(u, C)`` counts ``u``'s friends inside ``C`` and
``friend(u, G_v)`` counts ``u``'s friends in the whole ego network (the ego
itself is excluded from the ego network by construction, so it never counts).

Intuition: a member that connects to everyone in its community and to nobody
outside of it gets tightness 1; members that straddle several circles score
lower and are therefore placed further down the community feature matrix.
"""

from __future__ import annotations

from typing import Collection

from repro.graph.graph import Graph
from repro.types import Node


def friend_count_in(ego_net: Graph, node: Node, members: Collection[Node]) -> int:
    """Number of ``node``'s friends (within the ego network) that lie in ``members``."""
    neighbors = ego_net.neighbors(node)
    member_set = members if isinstance(members, (set, frozenset)) else set(members)
    return sum(1 for other in neighbors if other in member_set)


def tightness(ego_net: Graph, node: Node, community: Collection[Node]) -> float:
    """Equation 3: tightness of ``node`` with respect to ``community``.

    Parameters
    ----------
    ego_net:
        The ego network ``G_v`` the community was detected in.
    node:
        A member of ``community``.
    community:
        The local community ``C`` (must contain ``node``).

    Returns
    -------
    float
        A value in ``[0, 1]``; 1 for singleton communities.
    """
    member_set = set(community)
    if node not in member_set:
        raise ValueError(f"node {node!r} is not a member of the community")
    size = len(member_set)
    if size == 1:
        return 1.0

    friends_in_community = friend_count_in(ego_net, node, member_set)
    friends_in_ego = ego_net.degree(node)
    if friends_in_ego == 0:
        # A completely isolated member of a multi-node community can only
        # happen when the community was supplied externally (not by GN);
        # it plays no representative role, so its tightness is 0.
        return 0.0
    return (friends_in_community / friends_in_ego) * (
        friends_in_community / (size - 1)
    )


def community_tightness(
    ego_net: Graph, community: Collection[Node]
) -> dict[Node, float]:
    """Tightness of every member of ``community`` (Equation 3 applied per node).

    The member set is materialised once and membership validation is implied
    (every node iterated *is* a member), so this runs in O(sum of member
    degrees) instead of the O(|C|^2) behaviour of calling :func:`tightness`
    per member with a fresh set each time.
    """
    member_set = community if isinstance(community, (set, frozenset)) else set(community)
    size = len(member_set)
    if size == 1:
        return {node: 1.0 for node in member_set}
    values: dict[Node, float] = {}
    for node in member_set:
        friends_in_community = friend_count_in(ego_net, node, member_set)
        friends_in_ego = ego_net.degree(node)
        if friends_in_ego == 0:
            values[node] = 0.0
        else:
            values[node] = (friends_in_community / friends_in_ego) * (
                friends_in_community / (size - 1)
            )
    return values
