"""Ground-truth label handling for communities and edges.

The user survey labels *edges* (ego ↔ friend relationships).  Phase II needs
*community* labels for supervised training, which the paper derives by
majority vote: "the ground-truth label of a community is determined by the
majority type of friends with ground-truth relationship classes"
(Section V-C).  This module implements that derivation plus small helpers for
working with labeled-edge collections.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.core.division import DivisionResult, LocalCommunity
from repro.types import Edge, LabeledEdge, Node, RelationType, canonical_edge


class EdgeLabelIndex:
    """Fast lookup from a canonical edge to its ground-truth label."""

    def __init__(self, labeled_edges: Iterable[LabeledEdge] = ()) -> None:
        self._labels: dict[Edge, RelationType] = {}
        for item in labeled_edges:
            self.add(item)

    def add(self, labeled_edge: LabeledEdge) -> None:
        self._labels[labeled_edge.edge] = labeled_edge.label

    def get(self, u: Node, v: Node) -> RelationType | None:
        return self._labels.get(canonical_edge(u, v))

    def __contains__(self, edge: Edge) -> bool:
        return canonical_edge(*edge) in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def edges(self) -> list[Edge]:
        return list(self._labels)

    def items(self) -> list[tuple[Edge, RelationType]]:
        return list(self._labels.items())


def majority_label(
    labels: Sequence[RelationType],
    targets: Sequence[RelationType] = RelationType.classification_targets(),
) -> RelationType | None:
    """Most frequent target label; ``None`` when no target label is present.

    Ties are broken deterministically by class index (family < colleague <
    schoolmate) so repeated runs derive identical community training sets.
    """
    counts = Counter(label for label in labels if label in targets)
    if not counts:
        return None
    best_count = max(counts.values())
    return min(
        (label for label, count in counts.items() if count == best_count),
        key=int,
    )


def community_ground_truth(
    community: LocalCommunity,
    label_index: EdgeLabelIndex,
    min_labeled_members: int = 1,
) -> RelationType | None:
    """Majority-vote ground-truth label of a local community.

    The vote is over the labels of the *ego ↔ member* edges (those are the
    relationships the survey asks about).  Returns ``None`` when fewer than
    ``min_labeled_members`` member edges are labeled.
    """
    member_labels = [
        label
        for member in community.members
        if (label := label_index.get(community.ego, member)) is not None
    ]
    if len(member_labels) < min_labeled_members:
        return None
    return majority_label(member_labels)


def labeled_communities(
    division: DivisionResult,
    label_index: EdgeLabelIndex,
    min_labeled_members: int = 1,
) -> tuple[list[LocalCommunity], list[int]]:
    """Collect all communities with a derivable ground-truth label.

    Returns a parallel pair ``(communities, class_indices)`` ready for
    :class:`repro.core.community_classifier.CommunityClassifier.fit`.
    """
    communities: list[LocalCommunity] = []
    labels: list[int] = []
    for community in division.all_communities():
        label = community_ground_truth(community, label_index, min_labeled_members)
        if label is not None:
            communities.append(community)
            labels.append(int(label))
    return communities, labels


def split_labeled_edges(
    labeled_edges: Sequence[LabeledEdge],
    train_fraction: float = 0.8,
    seed: int = 0,
) -> tuple[list[LabeledEdge], list[LabeledEdge]]:
    """Stratified train/test split of labeled edges (the paper's 80/20 split)."""
    import numpy as np

    from repro.ml.preprocessing import train_test_split_indices

    if not labeled_edges:
        return [], []
    stratify = np.array([int(item.label) for item in labeled_edges])
    train_idx, test_idx = train_test_split_indices(
        len(labeled_edges),
        test_fraction=1.0 - train_fraction,
        seed=seed,
        stratify=stratify,
    )
    train = [labeled_edges[index] for index in train_idx]
    test = [labeled_edges[index] for index in test_idx]
    return train, test
