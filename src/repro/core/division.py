"""Phase I — Division: ego-network extraction and local community detection.

For every ego node ``v`` the global graph is reduced to the ego network
``G_v`` (``v`` and its incident edges excluded) and a community-detection
algorithm — Girvan–Newman in the paper, label propagation / Louvain as
ablations — partitions the ego's friends into *local communities*.

The output of this phase is a :class:`DivisionResult`: for every processed
ego, the list of its :class:`LocalCommunity` objects carrying the member set
and the per-member tightness values needed by Phases II and III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.community.girvan_newman import girvan_newman
from repro.community.label_propagation import label_propagation_communities
from repro.community.louvain import louvain_communities
from repro.core.tightness import community_tightness
from repro.exceptions import PipelineError
from repro.graph.ego import ego_network
from repro.graph.graph import Graph
from repro.types import Node


@dataclass(frozen=True)
class LocalCommunity:
    """A local community detected inside one ego's ego network.

    Attributes
    ----------
    ego:
        The ego node whose ego network this community lives in.
    members:
        The friends forming the community (the ego itself is never a member).
    tightness:
        Per-member tightness values (Equation 3) within this community.
    index:
        Position of the community within the ego's community list.
    """

    ego: Node
    members: frozenset[Node]
    tightness: dict[Node, float] = field(hash=False)
    index: int = 0

    @property
    def size(self) -> int:
        return len(self.members)

    def members_by_tightness(self) -> list[Node]:
        """Members sorted by decreasing tightness (ties broken by repr for determinism)."""
        return sorted(self.members, key=lambda node: (-self.tightness[node], repr(node)))

    def __contains__(self, node: Node) -> bool:
        return node in self.members


@dataclass
class DivisionResult:
    """Phase I output: local communities for every processed ego."""

    communities_by_ego: dict[Node, list[LocalCommunity]] = field(default_factory=dict)

    def communities_of(self, ego: Node) -> list[LocalCommunity]:
        """All local communities in ``ego``'s ego network."""
        return self.communities_by_ego.get(ego, [])

    def community_containing(self, ego: Node, friend: Node) -> LocalCommunity | None:
        """The local community of ``ego``'s ego network that contains ``friend``.

        Returns ``None`` when ``ego`` was not processed or ``friend`` is not a
        friend of ``ego`` (which can happen on sharded / partial runs).
        """
        for community in self.communities_by_ego.get(ego, []):
            if friend in community.members:
                return community
        return None

    def all_communities(self) -> Iterator[LocalCommunity]:
        """Iterate over every local community from every ego network."""
        for communities in self.communities_by_ego.values():
            yield from communities

    @property
    def num_egos(self) -> int:
        return len(self.communities_by_ego)

    @property
    def num_communities(self) -> int:
        return sum(len(blocks) for blocks in self.communities_by_ego.values())

    def community_sizes(self) -> list[int]:
        """Sizes of all local communities (used for the Figure 10a CDF)."""
        return [community.size for community in self.all_communities()]

    def merge(self, other: "DivisionResult") -> "DivisionResult":
        """Merge the per-ego results of two shards into a new result."""
        merged = DivisionResult(dict(self.communities_by_ego))
        for ego, communities in other.communities_by_ego.items():
            if ego in merged.communities_by_ego:
                raise PipelineError(f"ego {ego!r} present in both shards")
            merged.communities_by_ego[ego] = communities
        return merged


DetectorFn = Callable[[Graph], Sequence[frozenset[Node]]]


def _girvan_newman_detector(graph: Graph) -> Sequence[frozenset[Node]]:
    return girvan_newman(graph).communities


def _label_propagation_detector(graph: Graph) -> Sequence[frozenset[Node]]:
    return label_propagation_communities(graph)


def _louvain_detector(graph: Graph) -> Sequence[frozenset[Node]]:
    return louvain_communities(graph)


_DETECTORS: dict[str, DetectorFn] = {
    "girvan_newman": _girvan_newman_detector,
    "label_propagation": _label_propagation_detector,
    "louvain": _louvain_detector,
}


def get_detector(name: str) -> DetectorFn:
    """Look up a community detector by name."""
    try:
        return _DETECTORS[name]
    except KeyError:
        raise PipelineError(
            f"unknown community detector {name!r}; available: {sorted(_DETECTORS)}"
        ) from None


def divide_ego(
    graph: Graph, ego: Node, detector: DetectorFn | str = "girvan_newman"
) -> list[LocalCommunity]:
    """Run Phase I for a single ego node.

    Returns the ego's local communities with per-member tightness values.
    An ego with no friends yields an empty list.
    """
    if isinstance(detector, str):
        detector = get_detector(detector)
    ego_net = ego_network(graph, ego)
    if ego_net.num_nodes == 0:
        return []
    blocks = detector(ego_net)
    communities: list[LocalCommunity] = []
    for index, block in enumerate(blocks):
        members = frozenset(block)
        if not members:
            continue
        communities.append(
            LocalCommunity(
                ego=ego,
                members=members,
                tightness=community_tightness(ego_net, members),
                index=index,
            )
        )
    return communities


def divide(
    graph: Graph,
    egos: Iterable[Node] | None = None,
    detector: DetectorFn | str = "girvan_newman",
) -> DivisionResult:
    """Run Phase I for every ego in ``egos`` (default: every node of the graph).

    The per-ego work is embarrassingly parallel; :mod:`repro.runtime` shards
    this same function across workers for the scalability experiments.
    """
    if isinstance(detector, str):
        detector = get_detector(detector)
    if egos is None:
        egos = list(graph.nodes())
    result = DivisionResult()
    for ego in egos:
        result.communities_by_ego[ego] = divide_ego(graph, ego, detector)
    return result
