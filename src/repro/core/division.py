"""Phase I — Division: ego-network extraction and local community detection.

For every ego node ``v`` the global graph is reduced to the ego network
``G_v`` (``v`` and its incident edges excluded) and a community-detection
algorithm — Girvan–Newman in the paper, label propagation / Louvain as
ablations — partitions the ego's friends into *local communities*.

The output of this phase is a :class:`DivisionResult`: for every processed
ego, the list of its :class:`LocalCommunity` objects carrying the member set
and the per-member tightness values needed by Phases II and III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

try:  # The dict backend must keep working without NumPy installed.
    import numpy as _np
except ImportError:  # pragma: no cover - NumPy is a hard dep in practice
    _np = None

from repro.community.girvan_newman import girvan_newman
from repro.community.label_propagation import label_propagation_communities
from repro.community.louvain import louvain_communities
from repro.core.tightness import community_tightness
from repro.exceptions import PipelineError
from repro.graph.ego import ego_network
from repro.graph.graph import Graph
from repro.types import Node

BACKENDS = ("auto", "dict", "csr")
"""Valid Phase I graph backends: pure-Python dict-of-sets, NumPy CSR kernels,
or ``auto`` (CSR when NumPy is importable, dict otherwise)."""


def resolve_backend(backend: str) -> str:
    """Resolve a backend name to the concrete implementation to run.

    ``auto`` picks the CSR kernel layer when NumPy is available and falls
    back to the dict-of-sets reference implementation otherwise, so callers
    (``core.division``, ``runtime.executor``, the experiments) never need to
    care which one is installed.
    """
    if backend not in BACKENDS:
        raise PipelineError(
            f"unknown graph backend {backend!r}; available: {sorted(BACKENDS)}"
        )
    if backend != "auto":
        return backend
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - NumPy is a hard dep in practice
        return "dict"
    return "csr"


@dataclass(frozen=True)
class LocalCommunity:
    """A local community detected inside one ego's ego network.

    Attributes
    ----------
    ego:
        The ego node whose ego network this community lives in.
    members:
        The friends forming the community (the ego itself is never a member).
    tightness:
        Per-member tightness values (Equation 3) within this community.
    index:
        Position of the community within the ego's community list.
    """

    ego: Node
    members: frozenset[Node]
    tightness: dict[Node, float] = field(hash=False)
    index: int = 0

    @property
    def size(self) -> int:
        return len(self.members)

    _LEXSORT_MIN_SIZE = 256
    """Member count above which ``np.lexsort`` over the tightness vector
    beats ``sorted`` with a tuple key; below it the Python sort's lower
    fixed cost wins (WeChat-like communities are a few dozen members)."""

    def members_by_tightness(self) -> list[Node]:
        """Members sorted by decreasing tightness (ties broken by repr for determinism).

        The ordering is computed once — a cached argsort over the
        community's tightness vector — so the repeated Phase II calls
        (feature matrices, statistic vectors, CNN tensors) pay one sort
        total instead of one sort each.  Size-aware like the tightness
        kernels: ``np.lexsort`` only above :data:`_LEXSORT_MIN_SIZE`
        members, a plain key sort below; both orderings are identical.
        """
        cached = self.__dict__.get("_ordered_members")
        if cached is None:
            if _np is not None and len(self.members) >= self._LEXSORT_MIN_SIZE:
                members = list(self.members)
                negated = _np.fromiter(
                    (-self.tightness[node] for node in members),
                    dtype=_np.float64,
                    count=len(members),
                )
                reprs = _np.array([repr(node) for node in members])
                order = _np.lexsort((reprs, negated))
                cached = [members[position] for position in order.tolist()]
            else:
                cached = sorted(
                    self.members, key=lambda node: (-self.tightness[node], repr(node))
                )
            object.__setattr__(self, "_ordered_members", cached)
        return list(cached)

    def __contains__(self, node: Node) -> bool:
        return node in self.members


@dataclass
class DivisionResult:
    """Phase I output: local communities for every processed ego."""

    communities_by_ego: dict[Node, list[LocalCommunity]] = field(default_factory=dict)
    _member_index: dict[
        Node, tuple[list[LocalCommunity] | None, int, dict[Node, LocalCommunity]]
    ] = field(default_factory=dict, repr=False, compare=False)

    def communities_of(self, ego: Node) -> list[LocalCommunity]:
        """All local communities in ``ego``'s ego network."""
        return self.communities_by_ego.get(ego, [])

    def community_containing(self, ego: Node, friend: Node) -> LocalCommunity | None:
        """The local community of ``ego``'s ego network that contains ``friend``.

        Returns ``None`` when ``ego`` was not processed or ``friend`` is not a
        friend of ``ego`` (which can happen on sharded / partial runs).

        Backed by a lazily-built per-ego ``member -> community`` index, so
        Phase III's two lookups per edge are O(1) dict probes instead of a
        scan over the ego's community list.  If a member appears in two
        communities the first community in list order wins, matching the
        original scan.  The cache entry is keyed on the identity and length
        of the ego's community list, so reassigning the list or changing its
        length invalidates it automatically; any length-preserving in-place
        mutation (replacing an element, pop-then-append) is invisible to the
        key and requires an explicit :meth:`invalidate_index`.
        """
        communities = self.communities_by_ego.get(ego)
        length = len(communities) if communities is not None else 0
        cached = self._member_index.get(ego)
        if cached is not None and cached[0] is communities and cached[1] == length:
            return cached[2].get(friend)
        index: dict[Node, LocalCommunity] = {}
        for community in communities or ():
            for member in community.members:
                if member not in index:
                    index[member] = community
        self._member_index[ego] = (communities, length, index)
        return index.get(friend)

    def invalidate_index(self) -> None:
        """Drop the lazy member index (only needed after a length-preserving
        in-place mutation of a community list; reassignments and length
        changes are detected automatically)."""
        self._member_index.clear()

    def all_communities(self) -> Iterator[LocalCommunity]:
        """Iterate over every local community from every ego network."""
        for communities in self.communities_by_ego.values():
            yield from communities

    @property
    def num_egos(self) -> int:
        return len(self.communities_by_ego)

    @property
    def num_communities(self) -> int:
        return sum(len(blocks) for blocks in self.communities_by_ego.values())

    def community_sizes(self) -> list[int]:
        """Sizes of all local communities (used for the Figure 10a CDF)."""
        return [community.size for community in self.all_communities()]

    def merge(self, other: "DivisionResult") -> "DivisionResult":
        """Merge the per-ego results of two shards into a new result."""
        merged = DivisionResult(dict(self.communities_by_ego))
        for ego, communities in other.communities_by_ego.items():
            if ego in merged.communities_by_ego:
                raise PipelineError(f"ego {ego!r} present in both shards")
            merged.communities_by_ego[ego] = communities
        return merged


DetectorFn = Callable[[Graph], Sequence[frozenset[Node]]]


def _girvan_newman_detector(graph: Graph) -> Sequence[frozenset[Node]]:
    return girvan_newman(graph).communities


def _label_propagation_detector(graph: Graph) -> Sequence[frozenset[Node]]:
    return label_propagation_communities(graph)


def _louvain_detector(graph: Graph) -> Sequence[frozenset[Node]]:
    return louvain_communities(graph)


_DETECTORS: dict[str, DetectorFn] = {
    "girvan_newman": _girvan_newman_detector,
    "label_propagation": _label_propagation_detector,
    "louvain": _louvain_detector,
}


def get_detector(name: str) -> DetectorFn:
    """Look up a community detector by name."""
    try:
        return _DETECTORS[name]
    except KeyError:
        raise PipelineError(
            f"unknown community detector {name!r}; available: {sorted(_DETECTORS)}"
        ) from None


def divide_ego(
    graph: Graph,
    ego: Node,
    detector: DetectorFn | str = "girvan_newman",
    backend: str = "dict",
) -> list[LocalCommunity]:
    """Run Phase I for a single ego node.

    Returns the ego's local communities with per-member tightness values.
    An ego with no friends yields an empty list.  ``backend="csr"`` routes
    through the vectorized kernels; for repeated calls prefer :func:`divide`,
    which builds the CSR snapshot once for all egos.
    """
    if resolve_backend(backend) == "csr":
        from repro.graph.csr import CSRGraph

        csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)
        return _divide_ego_csr(csr, ego, detector)
    if isinstance(detector, str):
        detector = get_detector(detector)
    ego_net = ego_network(graph, ego)
    if ego_net.num_nodes == 0:
        return []
    blocks = detector(ego_net)
    communities: list[LocalCommunity] = []
    for index, block in enumerate(blocks):
        members = frozenset(block)
        if not members:
            continue
        communities.append(
            LocalCommunity(
                ego=ego,
                members=members,
                tightness=community_tightness(ego_net, members),
                index=index,
            )
        )
    return communities


def _divide_ego_csr(csr, ego: Node, detector: DetectorFn | str) -> list[LocalCommunity]:
    """Phase I for one ego on the CSR backend.

    Girvan-Newman (the paper's detector) runs entirely on the flat local
    arrays; other detectors and custom callables fall back to the
    dict-backend code path on an identically-constructed ego network, so
    every configuration produces results identical to ``backend="dict"``.
    """
    from repro.graph.csr import dense_ego_net, girvan_newman_dense

    if detector == "girvan_newman":
        net = dense_ego_net(csr, ego)
        if net.num_nodes == 0:
            return []
        blocks, _, _ = girvan_newman_dense(net)
        neighbors: list[list[int]] = [[] for _ in range(net.num_nodes)]
        for u, v in zip(net.eu.tolist(), net.ev.tolist()):
            neighbors[u].append(v)
            neighbors[v].append(u)
        communities = []
        for index, block in enumerate(blocks):
            if not block:
                continue
            communities.append(
                LocalCommunity(
                    ego=ego,
                    members=frozenset(net.labels[i] for i in block),
                    tightness=_block_tightness(net.labels, neighbors, block),
                    index=index,
                )
            )
        return communities

    # Non-GN detectors: extract the ego network exactly as the dict backend
    # does (preserving its node iteration order, which order-sensitive
    # detectors like Louvain observe), then detect.
    return _divide_ego_csr_fallback(csr, ego, detector)


def _block_tightness(
    labels: list[Node], neighbors: list[list[int]], block: list[int]
) -> dict[Node, float]:
    """Equation 3 for one local community, on int-indexed adjacency lists.

    Same integer counts and float operations as
    :func:`repro.core.tightness.tightness`, so the values match the dict
    backend bit-for-bit.
    """
    size = len(block)
    if size == 1:
        return {labels[block[0]]: 1.0}
    member_set = set(block)
    values: dict[Node, float] = {}
    for member in block:
        friends_in_ego = len(neighbors[member])
        if friends_in_ego == 0:
            values[labels[member]] = 0.0
            continue
        friends_in_community = 0
        for other in neighbors[member]:
            if other in member_set:
                friends_in_community += 1
        values[labels[member]] = (friends_in_community / friends_in_ego) * (
            friends_in_community / (size - 1)
        )
    return values


def _divide_ego_csr_fallback(csr, ego: Node, detector: DetectorFn | str):
    """Dict-backend detection path used by the CSR backend for non-GN detectors.

    Louvain note: :func:`repro.graph.csr.louvain_communities_csr` produces
    identical partitions, but its per-node ``unique``/``bincount`` only beats
    the dict loop at degrees well above WeChat-like ego networks — so this
    path intentionally runs the dict implementation and stays fast *and*
    identical either way.
    """
    if csr._source is not None:
        ego_net = ego_network(csr._source, ego)
    elif csr._neighbor_order is not None:
        # Detached graph (shared-memory attach, binary spill): replay the
        # dict backend's exact construction sequence so set-order dependent
        # detectors stay bit-identical to the clean serial run.
        from repro.graph.csr import ego_network_ordered

        ego_net = ego_network_ordered(csr, ego)
    else:
        ego_net = ego_network(csr.to_graph(), ego)
    if ego_net.num_nodes == 0:
        return []
    detector_fn = get_detector(detector) if isinstance(detector, str) else detector
    blocks = detector_fn(ego_net)
    communities: list[LocalCommunity] = []
    for index, block in enumerate(blocks):
        members = frozenset(block)
        if not members:
            continue
        communities.append(
            LocalCommunity(
                ego=ego,
                members=members,
                tightness=community_tightness(ego_net, members),
                index=index,
            )
        )
    return communities


def divide(
    graph: Graph,
    egos: Iterable[Node] | None = None,
    detector: DetectorFn | str = "girvan_newman",
    backend: str = "auto",
) -> DivisionResult:
    """Run Phase I for every ego in ``egos`` (default: every node of the graph).

    The per-ego work is embarrassingly parallel; :mod:`repro.runtime` shards
    this same function across workers for the scalability experiments.

    Parameters
    ----------
    backend:
        ``"dict"`` for the pure-Python reference, ``"csr"`` for the NumPy
        kernel layer (:mod:`repro.graph.csr`), ``"auto"`` (default) to pick
        CSR when NumPy is available.  Both backends produce identical
        communities and tightness values.
    """
    resolved = resolve_backend(backend)
    if resolved == "csr":
        from repro.graph.csr import CSRGraph

        csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)
        if egos is None:
            egos = list(csr.nodes())
        result = DivisionResult()
        for ego in egos:
            result.communities_by_ego[ego] = _divide_ego_csr(csr, ego, detector)
        return result
    if not isinstance(graph, Graph):  # CSRGraph handed to the dict backend
        graph = graph._source if graph._source is not None else graph.to_graph()
    if isinstance(detector, str):
        detector = get_detector(detector)
    if egos is None:
        egos = list(graph.nodes())
    result = DivisionResult()
    for ego in egos:
        result.communities_by_ego[ego] = divide_ego(graph, ego, detector)
    return result
