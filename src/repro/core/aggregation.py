"""Phase II (part 1) — feature aggregation for local communities.

Implements Equation 1 (per-member interaction shares), Equation 2 (the
interaction feature vector ``I^C_u``) and Algorithm 1 (the ``k × (|I|+|f|)``
community feature matrix ordered by tightness), plus the mean/std statistic
aggregation used by LoCEC-XGB.

The key property the paper relies on is densification: even when a single
edge ``⟨ego, u⟩`` has no interaction at all, ``u`` usually interacts with
*somebody* in its circle, so the aggregated community features are far less
sparse than raw edge features.

Two aggregation backends mirror the Phase I graph backends:

* ``dict`` — the readable reference: per-pair store lookups, one community
  at a time.
* ``csr`` — the :mod:`repro.graph.phase2` kernel layer: the stores are
  compiled once into an :class:`~repro.graph.phase2.InteractionMatrix` /
  :class:`~repro.graph.phase2.NodeFeatureMatrix` pair and each community's
  pair totals are computed once (``O(|C|^2)`` instead of ``O(k * |C|^2)``)
  with batched NumPy gathers.

Both produce bit-identical matrices whenever interaction counts are
integer-valued (which every generated workload guarantees); the parity suite
in ``tests/test_phase2_csr.py`` arbitrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.division import LocalCommunity, resolve_backend
from repro.exceptions import FeatureError, PipelineError
from repro.graph.features import NodeFeatureStore
from repro.graph.interactions import InteractionStore
from repro.types import Node


def interact(
    node: Node,
    community: frozenset[Node] | set[Node],
    dim: int,
    interactions: InteractionStore,
) -> float:
    """Equation 1: ``node``'s share of the community's interactions on ``dim``.

    ``interact(u, C, j) = (Σ_{v ∈ C\\{u}} I^j_{uv}) / (Σ_{v,w ∈ C} I^j_{vw})``

    The denominator sums over all unordered member pairs.  When the community
    has no interaction at all on dimension ``j`` the share is defined as 0.

    Delegates to the Equation-2 kernel (:func:`interaction_feature_vector`)
    so the scalar and vector paths share one zero-handling and summation
    implementation and cannot drift apart.  Equation 1 is defined for
    ``node ∈ C``; like the vector path, a node outside the community gets
    share 0 (only member-member pairs enter the numerator).
    """
    dim = int(dim)
    if not 0 <= dim < interactions.num_dims:
        raise FeatureError(
            f"interaction dimension {dim} out of range [0, {interactions.num_dims})"
        )
    return float(interaction_feature_vector(node, community, interactions)[dim])


def interaction_feature_vector(
    node: Node,
    community: frozenset[Node] | set[Node],
    interactions: InteractionStore,
) -> np.ndarray:
    """Equation 2: the vector ``I^C_u`` of interaction shares over all dimensions.

    A single pass accumulates, for every dimension, the member-pair totals and
    ``node``'s row totals, which avoids the quadratic re-scan per dimension
    that a naive application of Equation 1 would incur.  Silent pairs are
    skipped via the no-copy :meth:`InteractionStore.vector_view` accessor, so
    the scan allocates nothing per pair.
    """
    members = list(community)
    num_dims = interactions.num_dims
    node_totals = np.zeros(num_dims, dtype=np.float64)
    pair_totals = np.zeros(num_dims, dtype=np.float64)
    for index, left in enumerate(members):
        for right in members[index + 1 :]:
            vector = interactions.vector_view(left, right)
            if vector is None:
                continue
            pair_totals += vector
            if left == node or right == node:
                node_totals += vector
    shares = np.zeros(num_dims, dtype=np.float64)
    nonzero = pair_totals > 0
    shares[nonzero] = node_totals[nonzero] / pair_totals[nonzero]
    return shares


@dataclass(frozen=True)
class CommunityFeatureMatrix:
    """The Algorithm 1 output for one local community.

    Attributes
    ----------
    community:
        The community the matrix describes.
    matrix:
        ``k × (|I| + |f|)`` float matrix; rows are members ordered by
        decreasing tightness, zero-padded when the community has fewer than
        ``k`` members.
    member_order:
        The members contributing the non-padding rows, in row order.
    """

    community: LocalCommunity
    matrix: np.ndarray
    member_order: tuple[Node, ...]

    @property
    def num_real_rows(self) -> int:
        return len(self.member_order)


class FeatureMatrixBuilder:
    """Builds community feature representations (Algorithm 1).

    Parameters
    ----------
    features:
        Per-node individual feature store (``F`` in the paper).
    interactions:
        Per-edge interaction store (``I`` in the paper).
    k:
        Number of rows of the feature matrix; communities larger than ``k``
        keep only the ``k`` tightest members, smaller ones are zero-padded.
    backend:
        ``"dict"`` for the per-pair reference path, ``"csr"`` for the
        compiled :class:`~repro.graph.phase2.Phase2Kernel` path, ``"auto"``
        (default) to pick CSR when NumPy is available.  Both backends emit
        bit-identical matrices for integer-valued interaction counts.

    Notes
    -----
    The CSR backend compiles the stores on first use and recompiles
    automatically when either store's write counter (``version``) changes,
    so mutating the stores between calls is as safe as on the dict backend.
    """

    def __init__(
        self,
        features: NodeFeatureStore,
        interactions: InteractionStore,
        k: int = 20,
        backend: str = "auto",
    ) -> None:
        if k < 1:
            raise PipelineError("k must be >= 1")
        self.features = features
        self.interactions = interactions
        self.k = k
        self.backend = backend
        self._resolved_backend = resolve_backend(backend)
        self._kernel = None
        self._kernel_versions: tuple[int, int] | None = None

    @property
    def num_columns(self) -> int:
        """``|I| + |f|``: width of every feature matrix."""
        return self.interactions.num_dims + self.features.num_features

    def _compiled_kernel(self):
        """The lazily-compiled Phase II kernel (CSR backend only).

        Recompiled whenever either store reports a write since the last
        compile, so the snapshot can never serve stale matrices.
        """
        versions = (self.features.version, self.interactions.version)
        if self._kernel is None or self._kernel_versions != versions:
            from repro.graph.phase2 import Phase2Kernel

            self._kernel = Phase2Kernel.compile(self.features, self.interactions)
            self._kernel_versions = versions
        return self._kernel

    def invalidate_kernel(self) -> None:
        """Drop the compiled store snapshot (forces a recompile on next use).

        Staleness from ordinary store writes is detected automatically via
        the stores' ``version`` counters; this hook exists for callers that
        mutate store internals out of band.
        """
        self._kernel = None
        self._kernel_versions = None

    # ------------------------------------------------------------- Algorithm 1
    def feature_matrix(self, community: LocalCommunity) -> CommunityFeatureMatrix:
        """Algorithm 1: the ``k × (|I|+|f|)`` matrix of a local community."""
        if self._resolved_backend == "csr":
            return self._feature_matrices_csr([community])[0]
        return self._feature_matrix_dict(community)

    def feature_matrices(
        self, communities: list[LocalCommunity]
    ) -> list[CommunityFeatureMatrix]:
        """Algorithm 1 applied to a batch of communities."""
        if self._resolved_backend == "csr":
            return self._feature_matrices_csr(communities)
        return [self._feature_matrix_dict(community) for community in communities]

    def matrices_as_tensor(self, communities: list[LocalCommunity]) -> np.ndarray:
        """Stack feature matrices into a ``(n, 1, k, |I|+|f|)`` CNN input tensor."""
        if self._resolved_backend == "csr" and communities:
            # Direct kernel->CNN tensor path: the batch rows are scattered
            # into the padded tensor inside the kernel — no intermediate
            # per-community matrices, no Python loop over communities.
            kernel = self._compiled_kernel()
            return kernel.community_tensor(
                self._truncated_selection(communities), k=self.k
            )
        tensor = np.zeros(
            (len(communities), 1, self.k, self.num_columns), dtype=np.float64
        )
        for index, community in enumerate(communities):
            tensor[index, 0] = self._feature_matrix_dict(community).matrix
        return tensor

    def _feature_matrix_dict(self, community: LocalCommunity) -> CommunityFeatureMatrix:
        """Reference (dict-backend) Algorithm 1 path."""
        ordered = community.members_by_tightness()[: self.k]
        matrix = np.zeros((self.k, self.num_columns), dtype=np.float64)
        for row, node in enumerate(ordered):
            interaction_part = interaction_feature_vector(
                node, community.members, self.interactions
            )
            matrix[row, : self.interactions.num_dims] = interaction_part
            matrix[row, self.interactions.num_dims :] = self.features.get_view(node)
        return CommunityFeatureMatrix(
            community=community, matrix=matrix, member_order=tuple(ordered)
        )

    def _truncated_selection(
        self, communities: list[LocalCommunity]
    ) -> list[tuple[frozenset[Node], list[Node]]]:
        """``(members, k-truncated tightness ordering)`` pairs — the
        :class:`~repro.graph.phase2.Phase2Kernel` batch-API contract, built
        in exactly one place so the tensor and matrix paths cannot drift."""
        return [
            (community.members, community.members_by_tightness()[: self.k])
            for community in communities
        ]

    def _batch_rows_csr(
        self, communities: list[LocalCommunity]
    ) -> tuple[list[list[Node]], np.ndarray, np.ndarray]:
        """Tightness-ordered (truncated) member lists + their batch rows."""
        kernel = self._compiled_kernel()
        pairs = self._truncated_selection(communities)
        rows, offsets = kernel.community_rows_batch(pairs)
        return [ordered for _, ordered in pairs], rows, offsets

    def _feature_matrices_csr(
        self, communities: list[LocalCommunity]
    ) -> list[CommunityFeatureMatrix]:
        """Vectorized Algorithm 1: one batched row computation, then fills."""
        ordered_lists, rows, offsets = self._batch_rows_csr(communities)
        results: list[CommunityFeatureMatrix] = []
        for index, (community, ordered) in enumerate(zip(communities, ordered_lists)):
            matrix = np.zeros((self.k, self.num_columns), dtype=np.float64)
            matrix[: len(ordered)] = rows[offsets[index] : offsets[index + 1]]
            results.append(
                CommunityFeatureMatrix(
                    community=community, matrix=matrix, member_order=tuple(ordered)
                )
            )
        return results

    # -------------------------------------------------- LoCEC-XGB aggregation
    def statistic_vector(self, community: LocalCommunity) -> np.ndarray:
        """Mean/std aggregation used by LoCEC-XGB.

        The paper: "we compute the mean and standard deviation of each feature
        dimension regarding all nodes in a local community to form the feature
        vector of a community".  The vector therefore has ``2 × (|I|+|f|)``
        entries, plus the community size appended as a final column (size is
        what separates small family circles from large colleague circles and
        is available to XGBoost "for free" in the paper's setting via the
        number of aggregated rows).
        """
        return self.statistic_vectors([community])[0]

    def statistic_vectors(self, communities: list[LocalCommunity]) -> np.ndarray:
        """Stack per-community statistic vectors into a 2-D design matrix."""
        out = np.zeros((len(communities), 2 * self.num_columns + 1), dtype=np.float64)
        if not communities:
            return out
        if self._resolved_backend == "csr":
            self._fill_statistic_vectors_csr(communities, out)
        else:
            for index, community in enumerate(communities):
                self._fill_statistic_vector_dict(community, out[index])
        return out

    def _fill_statistic_vector_dict(
        self, community: LocalCommunity, out: np.ndarray
    ) -> None:
        """Reference (dict-backend) statistic aggregation for one community."""
        members = community.members_by_tightness()
        num_dims = self.interactions.num_dims
        rows = np.zeros((len(members), self.num_columns), dtype=np.float64)
        for row, node in enumerate(members):
            rows[row, :num_dims] = interaction_feature_vector(
                node, community.members, self.interactions
            )
            rows[row, num_dims:] = self.features.get_view(node)
        columns = self.num_columns
        out[:columns] = rows.mean(axis=0)
        out[columns : 2 * columns] = rows.std(axis=0)
        out[-1] = float(len(members))

    def _fill_statistic_vectors_csr(
        self, communities: list[LocalCommunity], out: np.ndarray
    ) -> None:
        """Vectorized statistic aggregation: batched rows, segment mean/std.

        The segment reductions replay exactly the arithmetic of
        ``rows.mean(axis=0)`` / ``rows.std(axis=0)`` on each community's row
        block — sequential sums in row order, one divide, one sqrt — so the
        result is bit-identical to the dict path (the parity suite checks
        this property directly against NumPy's reductions).
        """
        kernel = self._compiled_kernel()
        columns = self.num_columns
        ordered_lists = [community.members_by_tightness() for community in communities]
        rows, offsets = kernel.community_rows_batch(
            [
                (community.members, ordered)
                for community, ordered in zip(communities, ordered_lists)
            ]
        )
        num_comms = len(communities)
        counts = np.diff(offsets)
        comm_of_row = np.repeat(np.arange(num_comms), counts)
        sums = np.empty((num_comms, columns))
        for column in range(columns):
            sums[:, column] = np.bincount(
                comm_of_row, weights=rows[:, column], minlength=num_comms
            )
        mean = sums / counts[:, None]
        deviations = rows - mean[comm_of_row]
        deviations *= deviations
        for column in range(columns):
            sums[:, column] = np.bincount(
                comm_of_row, weights=deviations[:, column], minlength=num_comms
            )
        out[:, :columns] = mean
        out[:, columns : 2 * columns] = np.sqrt(sums / counts[:, None])
        out[:, -1] = counts
