"""Phase II (part 1) — feature aggregation for local communities.

Implements Equation 1 (per-member interaction shares), Equation 2 (the
interaction feature vector ``I^C_u``) and Algorithm 1 (the ``k × (|I|+|f|)``
community feature matrix ordered by tightness), plus the mean/std statistic
aggregation used by LoCEC-XGB.

The key property the paper relies on is densification: even when a single
edge ``⟨ego, u⟩`` has no interaction at all, ``u`` usually interacts with
*somebody* in its circle, so the aggregated community features are far less
sparse than raw edge features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.division import LocalCommunity
from repro.exceptions import PipelineError
from repro.graph.features import NodeFeatureStore
from repro.graph.interactions import InteractionStore
from repro.types import Node


def interact(
    node: Node,
    community: frozenset[Node] | set[Node],
    dim: int,
    interactions: InteractionStore,
) -> float:
    """Equation 1: ``node``'s share of the community's interactions on ``dim``.

    ``interact(u, C, j) = (Σ_{v ∈ C\\{u}} I^j_{uv}) / (Σ_{v,w ∈ C} I^j_{vw})``

    The denominator sums over all unordered member pairs.  When the community
    has no interaction at all on dimension ``j`` the share is defined as 0.
    """
    members = list(community)
    numerator = sum(
        interactions.get(node, other, dim) for other in members if other != node
    )
    if numerator == 0.0:
        return 0.0
    denominator = 0.0
    for index, left in enumerate(members):
        for right in members[index + 1 :]:
            denominator += interactions.get(left, right, dim)
    if denominator == 0.0:
        return 0.0
    return numerator / denominator


def interaction_feature_vector(
    node: Node,
    community: frozenset[Node] | set[Node],
    interactions: InteractionStore,
) -> np.ndarray:
    """Equation 2: the vector ``I^C_u`` of interaction shares over all dimensions.

    A single pass accumulates, for every dimension, the member-pair totals and
    ``node``'s row totals, which avoids the quadratic re-scan per dimension
    that a naive application of Equation 1 would incur.
    """
    members = list(community)
    num_dims = interactions.num_dims
    node_totals = np.zeros(num_dims, dtype=np.float64)
    pair_totals = np.zeros(num_dims, dtype=np.float64)
    for index, left in enumerate(members):
        for right in members[index + 1 :]:
            vector = interactions.vector(left, right)
            pair_totals += vector
            if left == node or right == node:
                node_totals += vector
    shares = np.zeros(num_dims, dtype=np.float64)
    nonzero = pair_totals > 0
    shares[nonzero] = node_totals[nonzero] / pair_totals[nonzero]
    return shares


@dataclass(frozen=True)
class CommunityFeatureMatrix:
    """The Algorithm 1 output for one local community.

    Attributes
    ----------
    community:
        The community the matrix describes.
    matrix:
        ``k × (|I| + |f|)`` float matrix; rows are members ordered by
        decreasing tightness, zero-padded when the community has fewer than
        ``k`` members.
    member_order:
        The members contributing the non-padding rows, in row order.
    """

    community: LocalCommunity
    matrix: np.ndarray
    member_order: tuple[Node, ...]

    @property
    def num_real_rows(self) -> int:
        return len(self.member_order)


class FeatureMatrixBuilder:
    """Builds community feature representations (Algorithm 1).

    Parameters
    ----------
    features:
        Per-node individual feature store (``F`` in the paper).
    interactions:
        Per-edge interaction store (``I`` in the paper).
    k:
        Number of rows of the feature matrix; communities larger than ``k``
        keep only the ``k`` tightest members, smaller ones are zero-padded.
    """

    def __init__(
        self,
        features: NodeFeatureStore,
        interactions: InteractionStore,
        k: int = 20,
    ) -> None:
        if k < 1:
            raise PipelineError("k must be >= 1")
        self.features = features
        self.interactions = interactions
        self.k = k

    @property
    def num_columns(self) -> int:
        """``|I| + |f|``: width of every feature matrix."""
        return self.interactions.num_dims + self.features.num_features

    # ------------------------------------------------------------- Algorithm 1
    def feature_matrix(self, community: LocalCommunity) -> CommunityFeatureMatrix:
        """Algorithm 1: the ``k × (|I|+|f|)`` matrix of a local community."""
        ordered = community.members_by_tightness()[: self.k]
        matrix = np.zeros((self.k, self.num_columns), dtype=np.float64)
        for row, node in enumerate(ordered):
            interaction_part = interaction_feature_vector(
                node, community.members, self.interactions
            )
            individual_part = self.features.get_or_default(node)
            matrix[row, : self.interactions.num_dims] = interaction_part
            matrix[row, self.interactions.num_dims :] = individual_part
        return CommunityFeatureMatrix(
            community=community, matrix=matrix, member_order=tuple(ordered)
        )

    def feature_matrices(
        self, communities: list[LocalCommunity]
    ) -> list[CommunityFeatureMatrix]:
        """Algorithm 1 applied to a batch of communities."""
        return [self.feature_matrix(community) for community in communities]

    def matrices_as_tensor(self, communities: list[LocalCommunity]) -> np.ndarray:
        """Stack feature matrices into a ``(n, 1, k, |I|+|f|)`` CNN input tensor."""
        if not communities:
            return np.zeros((0, 1, self.k, self.num_columns), dtype=np.float64)
        stacked = np.stack(
            [self.feature_matrix(community).matrix for community in communities]
        )
        return stacked[:, None, :, :]

    # -------------------------------------------------- LoCEC-XGB aggregation
    def statistic_vector(self, community: LocalCommunity) -> np.ndarray:
        """Mean/std aggregation used by LoCEC-XGB.

        The paper: "we compute the mean and standard deviation of each feature
        dimension regarding all nodes in a local community to form the feature
        vector of a community".  The vector therefore has ``2 × (|I|+|f|)``
        entries, plus the community size appended as a final column (size is
        what separates small family circles from large colleague circles and
        is available to XGBoost "for free" in the paper's setting via the
        number of aggregated rows).
        """
        members = community.members_by_tightness()
        rows = np.zeros((len(members), self.num_columns), dtype=np.float64)
        for row, node in enumerate(members):
            rows[row, : self.interactions.num_dims] = interaction_feature_vector(
                node, community.members, self.interactions
            )
            rows[row, self.interactions.num_dims :] = self.features.get_or_default(node)
        mean = rows.mean(axis=0)
        std = rows.std(axis=0)
        return np.concatenate([mean, std, [float(len(members))]])

    def statistic_vectors(self, communities: list[LocalCommunity]) -> np.ndarray:
        """Stack :meth:`statistic_vector` outputs into a 2-D design matrix."""
        if not communities:
            return np.zeros((0, 2 * self.num_columns + 1), dtype=np.float64)
        return np.vstack(
            [self.statistic_vector(community) for community in communities]
        )
