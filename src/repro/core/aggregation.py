"""Phase II (part 1) — feature aggregation for local communities.

Implements Equation 1 (per-member interaction shares), Equation 2 (the
interaction feature vector ``I^C_u``) and Algorithm 1 (the ``k × (|I|+|f|)``
community feature matrix ordered by tightness), plus the mean/std statistic
aggregation used by LoCEC-XGB.

The key property the paper relies on is densification: even when a single
edge ``⟨ego, u⟩`` has no interaction at all, ``u`` usually interacts with
*somebody* in its circle, so the aggregated community features are far less
sparse than raw edge features.

Two aggregation backends mirror the Phase I graph backends:

* ``dict`` — the readable reference: per-pair store lookups, one community
  at a time.
* ``csr`` — the :mod:`repro.graph.phase2` kernel layer: the stores are
  compiled once into an :class:`~repro.graph.phase2.InteractionMatrix` /
  :class:`~repro.graph.phase2.NodeFeatureMatrix` pair and each community's
  pair totals are computed once (``O(|C|^2)`` instead of ``O(k * |C|^2)``)
  with batched NumPy gathers.

Both produce bit-identical matrices whenever interaction counts are
integer-valued (which every generated workload guarantees); the parity suite
in ``tests/test_phase2_csr.py`` arbitrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.config import (
    _UNSET,
    ResilienceConfig,
    RuntimeOptions,
    resolve_runtime_options,
)
from repro.core.division import LocalCommunity, resolve_backend
from repro.exceptions import FeatureError, PipelineError
from repro.graph.features import NodeFeatureStore
from repro.graph.interactions import InteractionStore
from repro.types import Node

if TYPE_CHECKING:  # pragma: no cover - typing-only import (lazy at runtime)
    from repro.runtime.phase2_exec import Phase2ExecutionReport, Phase2ShardedRunner


def interact(
    node: Node,
    community: frozenset[Node] | set[Node],
    dim: int,
    interactions: InteractionStore,
) -> float:
    """Equation 1: ``node``'s share of the community's interactions on ``dim``.

    ``interact(u, C, j) = (Σ_{v ∈ C\\{u}} I^j_{uv}) / (Σ_{v,w ∈ C} I^j_{vw})``

    The denominator sums over all unordered member pairs.  When the community
    has no interaction at all on dimension ``j`` the share is defined as 0.

    Delegates to the Equation-2 kernel (:func:`interaction_feature_vector`)
    so the scalar and vector paths share one zero-handling and summation
    implementation and cannot drift apart.  Equation 1 is defined for
    ``node ∈ C``; like the vector path, a node outside the community gets
    share 0 (only member-member pairs enter the numerator).
    """
    dim = int(dim)
    if not 0 <= dim < interactions.num_dims:
        raise FeatureError(
            f"interaction dimension {dim} out of range [0, {interactions.num_dims})"
        )
    return float(interaction_feature_vector(node, community, interactions)[dim])


def interaction_feature_vector(
    node: Node,
    community: frozenset[Node] | set[Node],
    interactions: InteractionStore,
) -> np.ndarray:
    """Equation 2: the vector ``I^C_u`` of interaction shares over all dimensions.

    A single pass accumulates, for every dimension, the member-pair totals and
    ``node``'s row totals, which avoids the quadratic re-scan per dimension
    that a naive application of Equation 1 would incur.  Silent pairs are
    skipped via the no-copy :meth:`InteractionStore.vector_view` accessor, so
    the scan allocates nothing per pair.
    """
    members = list(community)
    num_dims = interactions.num_dims
    node_totals = np.zeros(num_dims, dtype=np.float64)
    pair_totals = np.zeros(num_dims, dtype=np.float64)
    for index, left in enumerate(members):
        for right in members[index + 1 :]:
            vector = interactions.vector_view(left, right)
            if vector is None:
                continue
            pair_totals += vector
            if left == node or right == node:
                node_totals += vector
    shares = np.zeros(num_dims, dtype=np.float64)
    nonzero = pair_totals > 0
    shares[nonzero] = node_totals[nonzero] / pair_totals[nonzero]
    return shares


@dataclass(frozen=True)
class CommunityFeatureMatrix:
    """The Algorithm 1 output for one local community.

    Attributes
    ----------
    community:
        The community the matrix describes.
    matrix:
        ``k × (|I| + |f|)`` float matrix; rows are members ordered by
        decreasing tightness, zero-padded when the community has fewer than
        ``k`` members.
    member_order:
        The members contributing the non-padding rows, in row order.
    """

    community: LocalCommunity
    matrix: np.ndarray
    member_order: tuple[Node, ...]

    @property
    def num_real_rows(self) -> int:
        return len(self.member_order)


class FeatureMatrixBuilder:
    """Builds community feature representations (Algorithm 1).

    Parameters
    ----------
    features:
        Per-node individual feature store (``F`` in the paper).
    interactions:
        Per-edge interaction store (``I`` in the paper).
    k:
        Number of rows of the feature matrix; communities larger than ``k``
        keep only the ``k`` tightest members, smaller ones are zero-padded.
    options:
        The unified runtime-knob surface
        (:class:`~repro.core.config.RuntimeOptions`):

        * ``backend`` — ``"dict"`` for the per-pair reference path,
          ``"csr"`` for the compiled
          :class:`~repro.graph.phase2.Phase2Kernel` path, ``"auto"``
          (default) to pick CSR when NumPy is available.  Both backends
          emit bit-identical matrices for integer-valued interaction
          counts.
        * ``phase2_workers`` — 0 (default) keeps aggregation
          single-process.  >= 1 routes every batch entry point through the
          sharded Phase II runner
          (:class:`~repro.runtime.phase2_exec.Phase2ShardedRunner`): the
          compiled kernel is published to shared memory once and community
          shards fan out across a process pool of this size (1 =
          in-process shard + merge, useful for debugging the sharded path
          deterministically).  Requires the CSR backend; outputs stay
          bit-identical to the serial path.
        * ``phase2_shards`` — number of community shards per sharded call
          (default: ``phase2_workers``).
        * ``resilience`` / ``transport`` — fault-tolerance knobs for the
          sharded path (retries, per-shard timeouts, ``on_shard_failure``,
          pool-rebuild budget, kernel transport).
    backend / phase2_workers / phase2_shards / resilience:
        Deprecated flat aliases of the ``options`` fields above; explicit
        values still work for one release (a ``DeprecationWarning`` names
        the replacement) and override the corresponding ``options`` field.

    Notes
    -----
    The CSR backend compiles the stores on first use and recompiles
    automatically when either store's write counter (``version``) changes,
    so mutating the stores between calls is as safe as on the dict backend.
    The sharded runner inherits the same guard: store writes (or an explicit
    :meth:`invalidate_kernel`) tear down the published shared-memory
    snapshot and the pool serving it, so a stale snapshot can never serve a
    mutated store.
    """

    def __init__(
        self,
        features: NodeFeatureStore,
        interactions: InteractionStore,
        k: int = 20,
        backend: str = _UNSET,
        phase2_workers: int = _UNSET,
        phase2_shards: int | None = _UNSET,
        resilience: ResilienceConfig | None = _UNSET,
        options: RuntimeOptions | None = None,
    ) -> None:
        options = resolve_runtime_options(
            options,
            {
                "backend": backend,
                "phase2_workers": phase2_workers,
                "phase2_shards": phase2_shards,
                "resilience": resilience,
            },
            caller="FeatureMatrixBuilder",
        )
        if k < 1:
            raise PipelineError("k must be >= 1")
        if options.phase2_workers and resolve_backend(options.backend) != "csr":
            raise PipelineError(
                "phase2_workers requires the CSR aggregation backend "
                f"(got backend={options.backend!r})"
            )
        self.features = features
        self.interactions = interactions
        self.k = k
        self.options = options
        self.backend = options.backend
        self.phase2_workers = options.phase2_workers
        self.phase2_shards = options.phase2_shards
        self.resilience = options.resolved_resilience()
        self._resolved_backend = resolve_backend(options.backend)
        self._kernel = None
        self._kernel_versions: tuple[int, int] | None = None
        self._runner: "Phase2ShardedRunner | None" = None
        self._runner_versions: tuple[int, int] | None = None

    @property
    def num_columns(self) -> int:
        """``|I| + |f|``: width of every feature matrix."""
        return self.interactions.num_dims + self.features.num_features

    @property
    def phase2_report(self) -> "Phase2ExecutionReport | None":
        """Execution report of the most recent sharded Phase II call.

        ``None`` until a batched entry point has routed through the sharded
        runner (``phase2_workers >= 1``); carries shard timings, supervision
        counters and transport accounting.
        """
        if self._runner is None:
            return None
        return self._runner.last_report

    def _compiled_kernel(self):
        """The lazily-compiled Phase II kernel (CSR backend only).

        Recompiled whenever either store reports a write since the last
        compile, so the snapshot can never serve stale matrices.
        """
        versions = (self.features.version, self.interactions.version)
        if self._kernel is None or self._kernel_versions != versions:
            from repro.graph.phase2 import Phase2Kernel

            self._kernel = Phase2Kernel.compile(self.features, self.interactions)
            self._kernel_versions = versions
        return self._kernel

    def invalidate_kernel(self) -> None:
        """Drop the compiled store snapshot (forces a recompile on next use).

        Staleness from ordinary store writes is detected automatically via
        the stores' ``version`` counters; this hook exists for callers that
        mutate store internals out of band.  Invalidation also tears down
        the sharded runner — its published shared-memory lease and process
        pool — so a stale shm snapshot can never serve a mutated store.
        """
        self._kernel = None
        self._kernel_versions = None
        self._close_runner()

    def patch_kernel(
        self,
        feature_nodes: Sequence[Node] = (),
        interaction_edges: Sequence[tuple[Node, Node]] = (),
    ) -> bool:
        """Delta-compile store updates into the compiled kernel in place.

        ``feature_nodes`` and ``interaction_edges`` must together cover
        **every** store write since the kernel was last compiled (or
        patched) — the pipeline's update path tracks exactly that.  Values
        are re-read from the live stores, so callers list *what* changed,
        not the new values.

        Returns ``True`` when the kernel is now fresh: either every delta
        was expressible as an in-place CSR/dense write
        (:meth:`Phase2Kernel.patch_interaction` /
        :meth:`Phase2Kernel.patch_features`), or there was nothing compiled
        to patch (dict backend, or first use still pending).  Structural
        deltas — new nodes, new interaction edges — return ``False`` after
        invalidating the kernel, and the next use recompiles from scratch.

        A successful patch closes the sharded runner so the *published*
        shared-memory kernel is republished from the patched arrays on the
        next sharded call; a pure no-op (stores unchanged) leaves runner
        and lease untouched.
        """
        versions = (self.features.version, self.interactions.version)
        if self._kernel is None or self._kernel_versions == versions:
            return True
        kernel = self._kernel
        for node in feature_nodes:
            if not kernel.patch_features(node, self.features.get_view(node)):
                self.invalidate_kernel()
                return False
        for u, v in interaction_edges:
            if not kernel.patch_interaction(u, v, self.interactions.vector_view(u, v)):
                self.invalidate_kernel()
                return False
        self._kernel_versions = versions
        self._close_runner()
        return True

    def close(self) -> None:
        """Release sharded-path resources (pool + shm lease).  Idempotent."""
        self._close_runner()

    def __enter__(self) -> "FeatureMatrixBuilder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _close_runner(self) -> None:
        runner, self._runner = self._runner, None
        self._runner_versions = None
        if runner is not None:
            runner.close()

    def _sharded_runner(self) -> "Phase2ShardedRunner":
        """The cached sharded runner, rebuilt whenever the stores move on.

        The runner carries a version probe bound to the live stores: even if
        a caller holds onto a runner across an out-of-band mutation, every
        call re-checks the snapshot against the stores' write counters and
        raises :class:`~repro.exceptions.StalePhase2KernelError` rather than
        serving stale matrices.
        """
        kernel = self._compiled_kernel()  # refreshes self._kernel_versions
        if self._runner is not None and self._runner_versions == self._kernel_versions:
            return self._runner
        self._close_runner()
        from repro.runtime.phase2_exec import Phase2ShardedRunner

        self._runner = Phase2ShardedRunner(
            kernel,
            num_workers=self.phase2_workers,
            num_shards=self.phase2_shards,
            resilience=self.resilience,
            source_versions=self._kernel_versions,
            version_probe=lambda: (self.features.version, self.interactions.version),
        )
        self._runner_versions = self._kernel_versions
        return self._runner

    def _use_sharded(self, communities: Sequence[LocalCommunity]) -> bool:
        return (
            self.phase2_workers >= 1
            and self._resolved_backend == "csr"
            and len(communities) > 0
        )

    # ------------------------------------------------------------- Algorithm 1
    def feature_matrix(self, community: LocalCommunity) -> CommunityFeatureMatrix:
        """Algorithm 1: the ``k × (|I|+|f|)`` matrix of a local community."""
        if self._resolved_backend == "csr":
            return self._feature_matrices_csr([community])[0]
        return self._feature_matrix_dict(community)

    def feature_matrices(
        self, communities: Sequence[LocalCommunity]
    ) -> list[CommunityFeatureMatrix]:
        """Algorithm 1 applied to a batch of communities."""
        if self._resolved_backend == "csr":
            return self._feature_matrices_csr(communities)
        return [self._feature_matrix_dict(community) for community in communities]

    def matrices_as_tensor(self, communities: Sequence[LocalCommunity]) -> np.ndarray:
        """Stack feature matrices into a ``(n, 1, k, |I|+|f|)`` CNN input tensor."""
        if self._use_sharded(communities):
            return self._sharded_runner().tensor(
                self._truncated_selection(communities), k=self.k
            )
        if self._resolved_backend == "csr" and communities:
            # Direct kernel->CNN tensor path: the batch rows are scattered
            # into the padded tensor inside the kernel — no intermediate
            # per-community matrices, no Python loop over communities.
            kernel = self._compiled_kernel()
            return kernel.community_tensor(
                self._truncated_selection(communities), k=self.k
            )
        tensor = np.zeros(
            (len(communities), 1, self.k, self.num_columns), dtype=np.float64
        )
        for index, community in enumerate(communities):
            tensor[index, 0] = self._feature_matrix_dict(community).matrix
        return tensor

    def _feature_matrix_dict(self, community: LocalCommunity) -> CommunityFeatureMatrix:
        """Reference (dict-backend) Algorithm 1 path."""
        ordered = community.members_by_tightness()[: self.k]
        matrix = np.zeros((self.k, self.num_columns), dtype=np.float64)
        for row, node in enumerate(ordered):
            interaction_part = interaction_feature_vector(
                node, community.members, self.interactions
            )
            matrix[row, : self.interactions.num_dims] = interaction_part
            matrix[row, self.interactions.num_dims :] = self.features.get_view(node)
        return CommunityFeatureMatrix(
            community=community, matrix=matrix, member_order=tuple(ordered)
        )

    def _truncated_selection(
        self, communities: Sequence[LocalCommunity]
    ) -> list[tuple[frozenset[Node], list[Node]]]:
        """``(members, k-truncated tightness ordering)`` pairs — the
        :class:`~repro.graph.phase2.Phase2Kernel` batch-API contract, built
        in exactly one place so the tensor and matrix paths cannot drift."""
        return [
            (community.members, community.members_by_tightness()[: self.k])
            for community in communities
        ]

    def _batch_rows_csr(
        self, communities: Sequence[LocalCommunity]
    ) -> tuple[list[list[Node]], np.ndarray, np.ndarray]:
        """Tightness-ordered (truncated) member lists + their batch rows."""
        pairs = self._truncated_selection(communities)
        if self._use_sharded(communities):
            rows, offsets = self._sharded_runner().rows_batch(pairs)
        else:
            rows, offsets = self._compiled_kernel().community_rows_batch(pairs)
        return [ordered for _, ordered in pairs], rows, offsets

    def _feature_matrices_csr(
        self, communities: Sequence[LocalCommunity]
    ) -> list[CommunityFeatureMatrix]:
        """Vectorized Algorithm 1: one batched row computation, then fills."""
        ordered_lists, rows, offsets = self._batch_rows_csr(communities)
        results: list[CommunityFeatureMatrix] = []
        for index, (community, ordered) in enumerate(zip(communities, ordered_lists)):
            matrix = np.zeros((self.k, self.num_columns), dtype=np.float64)
            matrix[: len(ordered)] = rows[offsets[index] : offsets[index + 1]]
            results.append(
                CommunityFeatureMatrix(
                    community=community, matrix=matrix, member_order=tuple(ordered)
                )
            )
        return results

    # -------------------------------------------------- LoCEC-XGB aggregation
    def statistic_vector(self, community: LocalCommunity) -> np.ndarray:
        """Mean/std aggregation used by LoCEC-XGB.

        The paper: "we compute the mean and standard deviation of each feature
        dimension regarding all nodes in a local community to form the feature
        vector of a community".  The vector therefore has ``2 × (|I|+|f|)``
        entries, plus the community size appended as a final column (size is
        what separates small family circles from large colleague circles and
        is available to XGBoost "for free" in the paper's setting via the
        number of aggregated rows).
        """
        return self.statistic_vectors([community])[0]

    def statistic_vectors(self, communities: Sequence[LocalCommunity]) -> np.ndarray:
        """Stack per-community statistic vectors into a 2-D design matrix.

        The merge target is allocated exactly once here and threaded through
        every fill path in place — the serial kernel writes into it directly
        (:meth:`Phase2Kernel.community_statistics` with ``out=``) and the
        sharded runner scatters worker blocks into it positionally — so no
        path pays a second design-matrix allocation per call.
        """
        out = np.zeros((len(communities), 2 * self.num_columns + 1), dtype=np.float64)
        if not communities:
            return out
        if self._resolved_backend == "csr":
            pairs = [
                (community.members, community.members_by_tightness())
                for community in communities
            ]
            if self._use_sharded(communities):
                self._sharded_runner().statistics(pairs, out=out)
            else:
                self._compiled_kernel().community_statistics(pairs, out=out)
        else:
            for index, community in enumerate(communities):
                self._fill_statistic_vector_dict(community, out[index])
        return out

    def _fill_statistic_vector_dict(
        self, community: LocalCommunity, out: np.ndarray
    ) -> None:
        """Reference (dict-backend) statistic aggregation for one community."""
        members = community.members_by_tightness()
        num_dims = self.interactions.num_dims
        rows = np.zeros((len(members), self.num_columns), dtype=np.float64)
        for row, node in enumerate(members):
            rows[row, :num_dims] = interaction_feature_vector(
                node, community.members, self.interactions
            )
            rows[row, num_dims:] = self.features.get_view(node)
        columns = self.num_columns
        out[:columns] = rows.mean(axis=0)
        out[columns : 2 * columns] = rows.std(axis=0)
        out[-1] = float(len(members))
