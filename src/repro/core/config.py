"""Configuration for the LoCEC pipeline."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from repro.exceptions import ModelConfigError


@dataclass
class CommCNNConfig:
    """Hyper-parameters of the CommCNN community classifier (Figure 8)."""

    num_filters: int = 8
    """Number of filters in each convolution branch."""

    dense_units: int = 32
    """Width of the first fully connected layer."""

    epochs: int = 40
    batch_size: int = 32
    learning_rate: float = 2e-3
    dropout: float = 0.1
    seed: int = 0
    nn_backend: str = "auto"
    """NN execution backend: ``"loop"`` walks the layer object graph,
    ``"fused"`` runs the compiled tape engine (``repro.ml.nn.engine``), and
    ``"auto"`` picks fused whenever the model compiles.  Logits, fitted
    weights and loss histories are bit-identical across backends."""

    def validate(self) -> None:
        if self.num_filters < 1 or self.dense_units < 1:
            raise ModelConfigError("num_filters and dense_units must be positive")
        if self.epochs < 1 or self.batch_size < 1:
            raise ModelConfigError("epochs and batch_size must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise ModelConfigError("dropout must be in [0, 1)")
        if self.nn_backend not in {"auto", "loop", "fused"}:
            raise ModelConfigError(
                f"nn_backend must be 'auto', 'loop' or 'fused', got {self.nn_backend!r}"
            )


@dataclass
class GBDTConfig:
    """Hyper-parameters of the XGBoost-style community classifier."""

    num_rounds: int = 40
    learning_rate: float = 0.3
    max_depth: int = 3
    min_samples_leaf: int = 2
    subsample: float = 1.0
    seed: int = 0
    backend: str = "auto"
    """Model-layer backend: ``"node"`` walks, ``"array"`` forest tensors with
    the exact split search, ``"hist"`` histogram split search (quantized to
    ``max_bins`` bins once per fit), or ``"auto"`` (exact below the
    row-count crossover, hist above it).  ``node``/``array`` outputs are
    bit-identical; ``hist`` matches them exactly while every feature fits
    in the bin budget."""

    max_bins: int = 256
    """Histogram resolution of the ``"hist"`` backend (ignored otherwise)."""

    def validate(self) -> None:
        if self.num_rounds < 1:
            raise ModelConfigError("num_rounds must be positive")
        if self.backend not in {"auto", "node", "array", "hist"}:
            raise ModelConfigError(
                "backend must be 'auto', 'node', 'array' or 'hist', "
                f"got {self.backend!r}"
            )
        if self.max_bins < 2:
            raise ModelConfigError("max_bins must be >= 2")


@dataclass
class ResilienceConfig:
    """Fault-tolerance knobs of the sharded execution runtime.

    Consumed by :class:`repro.runtime.executor.ShardedDivisionExecutor`
    (``RetryPolicy.from_config`` derives the backoff schedule).  Defaults
    reproduce the paper deployment's posture: a few cheap retries with
    exponential backoff, fail loudly when a shard is truly broken.

    Attributes
    ----------
    max_attempts:
        Total tries per shard (1 = no retries).
    backoff_base / backoff_factor / backoff_max:
        Exponential backoff schedule: the delay before retry ``n`` is
        ``min(backoff_base * backoff_factor**(n-1), backoff_max)`` seconds.
    jitter:
        Extra delay fraction in ``[0, 1]``, drawn deterministically from
        ``(seed, shard_id, attempt)`` so schedules are reproducible.
    shard_timeout:
        Per-shard wall-clock budget in seconds (``None`` = unbounded).
        Enforced via ``future.result(timeout=...)`` under a process pool and
        via the injected clock under serial fault simulation.
    on_shard_failure:
        What happens once a shard's attempt budget is spent: ``"raise"``
        aborts the run, ``"skip"`` records the shard in
        ``ExecutionReport.failed_shards`` and keeps the partial result
        first-class, ``"serial_fallback"`` re-runs the shard in-process
        (bypassing pool/fault-injection flakiness) before giving up.
    checkpoint_dir:
        When set, every completed shard's ``DivisionResult`` spills to this
        directory; ``run(resume_from=...)`` skips fingerprint-matching
        checkpoints so a killed run resumes instead of recomputing.
    max_pool_rebuilds:
        How many times a broken process pool is rebuilt before the executor
        degrades to in-process serial execution for the remaining shards.
    seed:
        Seed of the deterministic backoff jitter.
    transport:
        How the graph travels to pool workers: ``"pickle"`` ships the whole
        graph once per worker (the historical behaviour), ``"shm"`` publishes
        the CSR arrays to POSIX shared memory once and ships an O(1) handle
        (:mod:`repro.graph.shm`), ``"auto"`` (default) picks shm whenever the
        graph resolves to the CSR backend and the platform supports it,
        falling back to pickle otherwise.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    shard_timeout: float | None = None
    on_shard_failure: str = "raise"
    checkpoint_dir: str | None = None
    max_pool_rebuilds: int = 1
    seed: int = 0
    transport: str = "auto"

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ModelConfigError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ModelConfigError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ModelConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ModelConfigError("jitter must be in [0, 1]")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ModelConfigError("shard_timeout must be positive or None")
        if self.on_shard_failure not in {"raise", "skip", "serial_fallback"}:
            raise ModelConfigError(
                "on_shard_failure must be 'raise', 'skip' or 'serial_fallback', "
                f"got {self.on_shard_failure!r}"
            )
        if self.max_pool_rebuilds < 0:
            raise ModelConfigError("max_pool_rebuilds must be >= 0")
        if self.transport not in {"auto", "pickle", "shm"}:
            raise ModelConfigError(
                f"transport must be 'auto', 'pickle' or 'shm', got {self.transport!r}"
            )


#: Sentinel distinguishing "kwarg not passed" from any real value in the
#: deprecated-knob shims (``None`` is a real value for several knobs).
_UNSET: Any = object()

#: Where each deprecated scattered kwarg lives on :class:`RuntimeOptions`.
#: The table is the single source of truth for the shims — every deprecated
#: kwarg accepted by ``FeatureMatrixBuilder`` / ``measure_phases`` /
#: ``ServingSession`` must map to a real ``RuntimeOptions`` field here, and
#: a lint-style test (``tests/test_runtime_options.py``) enforces exactly
#: that, so the mapping cannot drift from the shimmed signatures.
LEGACY_KNOB_TO_OPTION: dict[str, str] = {
    "backend": "backend",
    "ml_backend": "ml_backend",
    "nn_backend": "nn_backend",
    "phase2_workers": "phase2_workers",
    "phase2_shards": "phase2_shards",
    "resilience": "resilience",
    "transport": "transport",
}


@dataclass(frozen=True)
class RuntimeOptions:
    """The unified runtime-knob surface of the pipeline.

    One frozen value object replaces the kwargs that had accreted across
    ``LoCEC.fit`` / ``FeatureMatrixBuilder`` / ``measure_phases``
    (``backend``, ``ml_backend``, ``nn_backend``, ``phase2_workers``,
    ``phase2_shards``, ``resilience``, ``transport``).  Compose it into
    :class:`LoCECConfig` via the ``runtime`` field, or pass it directly as
    ``options=`` to the builders; the old kwargs keep working for one
    release behind a ``DeprecationWarning`` (see
    :data:`LEGACY_KNOB_TO_OPTION` and :func:`resolve_runtime_options`).

    ``transport`` is a convenience alias for ``resilience.transport``: a
    non-``"auto"`` value overrides the transport of the (possibly default)
    resilience config — see :meth:`resolved_resilience`.
    """

    backend: str = "auto"
    ml_backend: str = "auto"
    nn_backend: str = "auto"
    phase2_workers: int = 0
    phase2_shards: int | None = None
    transport: str = "auto"
    resilience: ResilienceConfig | None = None

    def validate(self) -> None:
        if self.backend not in {"auto", "dict", "csr"}:
            raise ModelConfigError(
                f"backend must be 'auto', 'dict' or 'csr', got {self.backend!r}"
            )
        if self.ml_backend not in {"auto", "node", "array", "hist"}:
            raise ModelConfigError(
                "ml_backend must be 'auto', 'node', 'array' or 'hist', "
                f"got {self.ml_backend!r}"
            )
        if self.nn_backend not in {"auto", "loop", "fused"}:
            raise ModelConfigError(
                f"nn_backend must be 'auto', 'loop' or 'fused', got {self.nn_backend!r}"
            )
        if self.phase2_workers < 0:
            raise ModelConfigError("phase2_workers must be >= 0")
        if self.phase2_shards is not None and self.phase2_shards < 1:
            raise ModelConfigError("phase2_shards must be >= 1 or None")
        if self.transport not in {"auto", "pickle", "shm"}:
            raise ModelConfigError(
                f"transport must be 'auto', 'pickle' or 'shm', got {self.transport!r}"
            )
        if self.resilience is not None:
            self.resilience.validate()

    def resolved_resilience(self) -> ResilienceConfig | None:
        """The resilience config with the ``transport`` alias folded in."""
        if self.transport == "auto":
            return self.resilience
        return replace(self.resilience or ResilienceConfig(), transport=self.transport)


def resolve_runtime_options(
    options: RuntimeOptions | None,
    legacy: dict[str, Any],
    caller: str,
) -> RuntimeOptions:
    """Fold explicitly-passed deprecated kwargs into one ``RuntimeOptions``.

    ``legacy`` maps knob name -> passed value, untouched knobs holding the
    :data:`_UNSET` sentinel.  Every explicit legacy value emits a
    ``DeprecationWarning`` naming its :class:`RuntimeOptions` replacement
    (per :data:`LEGACY_KNOB_TO_OPTION`) and overrides the corresponding
    field of ``options`` — so call sites predating the unified surface keep
    working for one release.  The resolved options are validated.
    """
    resolved = options if options is not None else RuntimeOptions()
    overrides: dict[str, Any] = {}
    for name, value in legacy.items():
        if value is _UNSET:
            continue
        target = LEGACY_KNOB_TO_OPTION[name]
        warnings.warn(
            f"{caller}({name}=...) is deprecated; pass "
            f"options=RuntimeOptions({target}=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        overrides[target] = value
    if overrides:
        resolved = replace(resolved, **overrides)
    resolved.validate()
    return resolved


@dataclass
class LoCECConfig:
    """Top-level configuration of the LoCEC pipeline (Algorithm 2).

    Attributes
    ----------
    k:
        Number of feature-matrix rows per community.  The paper's parameter
        study (Figure 10b) selects ``k = 20``.
    community_model:
        ``"cnn"`` for LoCEC-CNN (CommCNN) or ``"xgb"`` for LoCEC-XGB.
    community_detector:
        Phase I algorithm: ``"girvan_newman"`` (paper default),
        ``"label_propagation"`` or ``"louvain"`` (ablations).
    backend:
        Graph/aggregation kernel backend for Phases I and II: ``"auto"``
        (default; NumPy CSR kernels when NumPy is available), ``"csr"``, or
        ``"dict"`` (pure-Python reference).  Both produce identical
        communities, tightness values and Phase II feature matrices.
    ml_backend:
        Model-layer backend for the Phase II/III tree models: ``"auto"``
        (default; the exact flattened forest tensors, switching to the
        histogram split search above a row-count crossover), ``"array"``,
        ``"hist"`` (histogram split search, ``gbdt.max_bins`` bins per
        feature), or ``"node"`` (pointer-based reference walks).  Fitted
        models, probabilities and leaf-value embeddings are bit-identical
        between ``node`` and ``array``; ``hist`` chooses identical splits
        while every feature fits in the bin budget.
    nn_backend:
        Execution backend for the CommCNN neural network: ``"auto"``
        (default; the compiled tape engine of :mod:`repro.ml.nn.engine`),
        ``"fused"``, or ``"loop"`` (layer-by-layer reference).  Logits,
        fitted weights and loss histories are bit-identical either way.
        A non-``"auto"`` value overrides ``cnn.nn_backend``.
    phase2_workers:
        0 (default) runs Phase II aggregation single-process.  >= 1 routes
        the batched aggregation entry points through the sharded Phase II
        runner (:class:`repro.runtime.phase2_exec.Phase2ShardedRunner`): the
        compiled kernel is published to shared memory once and community
        shards fan out across a process pool of this size.  Requires the
        CSR backend (``backend="auto"`` resolves to it whenever NumPy is
        available); outputs are bit-identical to the serial path.
    min_community_size:
        Communities smaller than this are still classified (the paper keeps
        singletons with tightness 1); the knob exists for ablations only.
    edge_lr_iterations / edge_lr_learning_rate / edge_lr_l2:
        Training schedule of the Phase III logistic-regression edge labeler.
    seed:
        Master seed propagated to all stochastic components.
    """

    k: int = 20
    community_model: str = "cnn"
    community_detector: str = "girvan_newman"
    backend: str = "auto"
    ml_backend: str = "auto"
    nn_backend: str = "auto"
    phase2_workers: int = 0
    phase2_shards: int | None = None
    """Number of community shards per sharded Phase II call (default:
    ``phase2_workers``)."""
    min_community_size: int = 1
    edge_lr_iterations: int = 400
    edge_lr_learning_rate: float = 0.5
    edge_lr_l2: float = 1e-4
    seed: int = 0
    cnn: CommCNNConfig = field(default_factory=CommCNNConfig)
    gbdt: GBDTConfig = field(default_factory=GBDTConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    """Fault-tolerance knobs consumed by the sharded execution runtime
    (retries, timeouts, failure mode, checkpointing); see
    :class:`ResilienceConfig`."""

    runtime: RuntimeOptions | None = None
    """The unified runtime-knob surface.  When set, ``validate()`` syncs its
    fields into the flat legacy knobs above (``backend``, ``ml_backend``,
    ``nn_backend``, ``phase2_workers``, ``phase2_shards``, ``resilience``) —
    the ``runtime`` value wins over any flat field set alongside it."""

    def validate(self) -> None:
        if self.runtime is not None:
            self.runtime.validate()
            self.backend = self.runtime.backend
            self.ml_backend = self.runtime.ml_backend
            self.nn_backend = self.runtime.nn_backend
            self.phase2_workers = self.runtime.phase2_workers
            self.phase2_shards = self.runtime.phase2_shards
            resilience = self.runtime.resolved_resilience()
            if resilience is not None:
                self.resilience = resilience
        if self.k < 1:
            raise ModelConfigError("k must be >= 1")
        if self.community_model not in {"cnn", "xgb"}:
            raise ModelConfigError(
                f"community_model must be 'cnn' or 'xgb', got {self.community_model!r}"
            )
        if self.community_detector not in {
            "girvan_newman",
            "label_propagation",
            "louvain",
        }:
            raise ModelConfigError(
                "community_detector must be one of 'girvan_newman', "
                f"'label_propagation', 'louvain', got {self.community_detector!r}"
            )
        if self.backend not in {"auto", "dict", "csr"}:
            raise ModelConfigError(
                f"backend must be 'auto', 'dict' or 'csr', got {self.backend!r}"
            )
        if self.ml_backend not in {"auto", "node", "array", "hist"}:
            raise ModelConfigError(
                "ml_backend must be 'auto', 'node', 'array' or 'hist', "
                f"got {self.ml_backend!r}"
            )
        if self.nn_backend not in {"auto", "loop", "fused"}:
            raise ModelConfigError(
                f"nn_backend must be 'auto', 'loop' or 'fused', got {self.nn_backend!r}"
            )
        if self.phase2_workers < 0:
            raise ModelConfigError("phase2_workers must be >= 0")
        if self.phase2_shards is not None and self.phase2_shards < 1:
            raise ModelConfigError("phase2_shards must be >= 1 or None")
        if self.phase2_workers and self.backend == "dict":
            raise ModelConfigError(
                "phase2_workers requires the CSR aggregation backend; "
                "set backend='auto' or 'csr'"
            )
        if self.min_community_size < 1:
            raise ModelConfigError("min_community_size must be >= 1")
        if self.edge_lr_iterations < 1:
            raise ModelConfigError("edge_lr_iterations must be positive")
        self.cnn.validate()
        self.gbdt.validate()
        self.resilience.validate()

    @property
    def runtime_options(self) -> RuntimeOptions:
        """The effective runtime knobs as one :class:`RuntimeOptions` value.

        Built from the flat fields (which ``validate()`` keeps in sync with
        an explicit ``runtime`` value), so it reflects whichever surface the
        caller used.
        """
        return RuntimeOptions(
            backend=self.backend,
            ml_backend=self.ml_backend,
            nn_backend=self.nn_backend,
            phase2_workers=self.phase2_workers,
            phase2_shards=self.phase2_shards,
            resilience=self.resilience,
        )

    @classmethod
    def locec_cnn(cls, **overrides: object) -> "LoCECConfig":
        """Convenience constructor for the LoCEC-CNN variant."""
        config = cls(community_model="cnn")
        for key, value in overrides.items():
            setattr(config, key, value)
        config.validate()
        return config

    @classmethod
    def locec_xgb(cls, **overrides: object) -> "LoCECConfig":
        """Convenience constructor for the LoCEC-XGB variant."""
        config = cls(community_model="xgb")
        for key, value in overrides.items():
            setattr(config, key, value)
        config.validate()
        return config
