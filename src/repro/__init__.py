"""LoCEC reproduction: Local Community-based Edge Classification.

This package reproduces *LoCEC: Local Community-based Edge Classification in
Large Online Social Networks* (Song et al., ICDE 2020) as a self-contained
Python library:

* :mod:`repro.graph` — graph / feature / interaction substrate,
* :mod:`repro.community` — Girvan–Newman and alternative detectors,
* :mod:`repro.ml` — from-scratch GBDT, logistic regression and CNN stack,
* :mod:`repro.core` — the three-phase LoCEC pipeline (the paper's contribution),
* :mod:`repro.baselines` — ProbWP, Economix, plain XGBoost, group-name rules,
* :mod:`repro.synthetic` — WeChat-like synthetic data generation,
* :mod:`repro.runtime` — sharded execution and the WeChat-scale cost model,
* :mod:`repro.ads` — the social-advertising application,
* :mod:`repro.analysis` / :mod:`repro.experiments` — the paper's analyses,
  tables and figures.

Quickstart::

    from repro.synthetic import make_workload
    from repro.core import LoCEC, LoCECConfig

    workload = make_workload("small", seed=0)
    pipeline = LoCEC(LoCECConfig.locec_cnn())
    pipeline.fit(
        workload.dataset.graph,
        workload.dataset.features,
        workload.dataset.interactions,
        workload.train_edges,
    )
    print(pipeline.evaluate(workload.test_edges))
"""

from repro.core import LoCEC, LoCECConfig
from repro.types import InteractionDim, LabeledEdge, RelationType

__version__ = "1.0.0"

__all__ = [
    "LoCEC",
    "LoCECConfig",
    "RelationType",
    "InteractionDim",
    "LabeledEdge",
    "__version__",
]
