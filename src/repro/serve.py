"""Online serving layer for a fitted LoCEC pipeline.

The paper's production system classifies WeChat edges *continuously*; this
module is the request-side counterpart of :meth:`repro.core.LoCEC.fit`:

* :class:`ServingSession` — wraps a fitted pipeline in a long-lived session
  with batched :meth:`~ServingSession.predict_edges`, an LRU result cache
  keyed on the Phase II store versions (so any update — through the session
  or out of band — invalidates exactly the stale entries), and streaming
  latency accounting.
* :class:`StreamingMoments` — a Welford-style mean/variance accumulator used
  for latency percentiles without retaining per-request samples.
* :func:`replay_traffic` — a deterministic replay driver firing synthetic
  edge-update + query traffic (deltas drawn via
  :func:`repro.synthetic.sample_interaction_delta`) to measure sustained
  QPS, optionally under injected re-division faults.

All timing routes through the injectable :class:`repro.clock.Clock`, so the
zero-sleep test tier can drive a whole serving session under virtual time
and the determinism lint (``DET001``) stays clean.

Staleness semantics: a re-division fault during
:meth:`ServingSession.apply_updates` degrades (``on_shard_failure="skip"``)
to serving the affected egos' *previous* communities — stale but internally
consistent; :attr:`ServingSession.stale_egos` lists them until a later
update succeeds.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from random import Random
from statistics import NormalDist
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.clock import Clock, SystemClock
from repro.core.pipeline import LoCEC, UpdateReport
from repro.exceptions import NotFittedError, PipelineError
from repro.synthetic.interactions_gen import sample_interaction_delta
from repro.types import Edge, Node, RelationType

if TYPE_CHECKING:  # pragma: no cover - typing-only import (lazy at runtime)
    from repro.runtime.faultinject import FaultPlan

__all__ = [
    "ReplayReport",
    "ServingSession",
    "ServingStats",
    "StreamingMoments",
    "replay_traffic",
]


@dataclass
class StreamingMoments:
    """Welford's streaming mean/variance accumulator.

    Holds three scalars (count, mean, sum of squared deviations) no matter
    how many samples arrive, so a serving session can account for millions
    of request latencies without retaining them.  Percentiles come from a
    normal approximation (``mean + z_q * std``) — exact enough for latency
    dashboards, and the trade the paper's serving tier makes too.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self) -> float:
        """Sample variance (zero until two samples arrived)."""
        if self.count < 2:
            return 0.0
        return self.m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Normal-approximation percentile, ``q`` in (0, 1)."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if self.count == 0:
            return 0.0
        if self.variance == 0.0:
            return self.mean
        return self.mean + NormalDist().inv_cdf(q) * self.std

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "std": self.std,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


@dataclass
class ServingStats:
    """Running counters of a :class:`ServingSession`."""

    num_queries: int = 0
    num_batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    num_updates: int = 0
    num_degraded_updates: int = 0
    query_seconds: float = 0.0
    update_seconds: float = 0.0
    batch_latency: StreamingMoments = field(default_factory=StreamingMoments)
    update_latency: StreamingMoments = field(default_factory=StreamingMoments)

    @property
    def cache_hit_rate(self) -> float:
        looked_up = self.cache_hits + self.cache_misses
        return self.cache_hits / looked_up if looked_up else 0.0

    @property
    def sustained_qps(self) -> float:
        """Queries per second over *all* session time, updates included."""
        seconds = self.query_seconds + self.update_seconds
        return self.num_queries / seconds if seconds > 0 else 0.0


class ServingSession:
    """A long-lived serving wrapper around a fitted :class:`LoCEC` pipeline.

    Parameters
    ----------
    pipeline:
        A fitted pipeline.  The session serves from (and applies updates
        to) the pipeline's live state; it does not copy it.
    cache_size:
        Maximum number of cached per-edge probability rows (LRU eviction;
        ``0`` disables caching).  Entries are keyed on the edge *and* a
        version token ``(feature store version, interaction store version,
        update epoch)``, so any update invalidates exactly the entries
        whose inputs moved — including out-of-band store writes.
    clock:
        Injectable time source for latency accounting (tests pass
        :class:`repro.clock.FakeClock`).

    The session owns serving-side resources through the pipeline's Phase II
    builder (process pool + shared-memory lease) and follows the repo-wide
    lifecycle protocol: use as a context manager or call :meth:`close`
    (idempotent) when done.
    """

    def __init__(
        self,
        pipeline: LoCEC,
        cache_size: int = 4096,
        clock: Clock | None = None,
    ) -> None:
        if pipeline.edge_labeler_ is None:
            raise NotFittedError(pipeline)
        if cache_size < 0:
            raise PipelineError("cache_size must be >= 0")
        self.pipeline: LoCEC = pipeline
        self.cache_size = cache_size
        self._clock = clock if clock is not None else SystemClock()
        self._num_classes = len(RelationType.classification_targets())
        self._cache: OrderedDict[
            Edge, tuple[tuple[int, int, int], np.ndarray]
        ] = OrderedDict()
        self._closed = False
        self.stats = ServingStats()

    # ---------------------------------------------------------------- queries
    def predict_proba(self, edges: Sequence[Edge]) -> np.ndarray:
        """Class-probability matrix for a batch of edges, cache-assisted.

        Cache misses are featurized and scored in a single batched pass
        through :meth:`LoCEC.predict_edge_proba`; hits are served from the
        LRU cache when their version token still matches the live stores.
        """
        self._ensure_open()
        batch = list(edges)
        start = self._clock.perf_counter()
        token = self._version_token()
        rows: list[np.ndarray | None] = []
        miss_edges: list[Edge] = []
        miss_positions: list[int] = []
        for position, edge in enumerate(batch):
            cached = self._cache.get(edge)
            if cached is not None and cached[0] == token:
                self._cache.move_to_end(edge)
                self.stats.cache_hits += 1
                rows.append(cached[1])
            else:
                self.stats.cache_misses += 1
                rows.append(None)
                miss_edges.append(edge)
                miss_positions.append(position)
        if miss_edges:
            scored = self.pipeline.predict_edge_proba(miss_edges)
            for index, position in enumerate(miss_positions):
                row = scored[index]
                rows[position] = row
                self._cache_store(batch[position], token, row)
        elapsed = self._clock.perf_counter() - start
        self.stats.num_queries += len(batch)
        self.stats.num_batches += 1
        self.stats.query_seconds += elapsed
        self.stats.batch_latency.add(elapsed)
        if not batch:
            return np.zeros((0, self._num_classes))
        return np.vstack([row for row in rows if row is not None])

    def predict_edges(self, edges: Sequence[Edge]) -> list[RelationType]:
        """Predicted :class:`RelationType` per edge (argmax of the proba)."""
        proba = self.predict_proba(edges)
        return [RelationType(int(index)) for index in np.argmax(proba, axis=1)]

    # ---------------------------------------------------------------- updates
    def apply_updates(
        self,
        added_edges: Sequence[Edge] = (),
        removed_edges: Sequence[Edge] = (),
        interaction_deltas: Sequence[tuple[Node, Node, Sequence[float]]] = (),
        feature_updates: Sequence[tuple[Node, Sequence[float]]] = (),
        fault_plan: "FaultPlan | None" = None,
    ) -> UpdateReport:
        """Fold deltas into the served state (see :meth:`LoCEC.apply_updates`).

        Bumping the pipeline's update epoch shifts the cache version token,
        so every cached row is invalidated in O(1) without touching the
        cache structure itself.
        """
        self._ensure_open()
        start = self._clock.perf_counter()
        report = self.pipeline.apply_updates(
            added_edges=added_edges,
            removed_edges=removed_edges,
            interaction_deltas=interaction_deltas,
            feature_updates=feature_updates,
            fault_plan=fault_plan,
        )
        elapsed = self._clock.perf_counter() - start
        self.stats.num_updates += 1
        if report.degraded:
            self.stats.num_degraded_updates += 1
        self.stats.update_seconds += elapsed
        self.stats.update_latency.add(elapsed)
        return report

    @property
    def stale_egos(self) -> frozenset[Node]:
        """Egos currently served stale communities (degraded re-division)."""
        return self.pipeline.stale_egos

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release serving resources (pipeline pool + shm lease).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._cache.clear()
        builder = self.pipeline.feature_builder_
        if builder is not None:
            builder.close()

    def __enter__(self) -> "ServingSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- internals
    def _ensure_open(self) -> None:
        if self._closed:
            raise PipelineError("ServingSession is closed")

    def _version_token(self) -> tuple[int, int, int]:
        builder = self.pipeline.feature_builder_
        assert builder is not None
        return (
            builder.features.version,
            builder.interactions.version,
            self.pipeline.update_epoch,
        )

    def _cache_store(
        self, edge: Edge, token: tuple[int, int, int], row: np.ndarray
    ) -> None:
        if self.cache_size == 0:
            return
        self._cache[edge] = (token, row)
        self._cache.move_to_end(edge)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)


@dataclass
class ReplayReport:
    """Outcome of one :func:`replay_traffic` run."""

    num_batches: int = 0
    num_queries: int = 0
    num_updates: int = 0
    num_degraded_updates: int = 0
    num_structural_updates: int = 0
    seconds: float = 0.0
    cache_hit_rate: float = 0.0
    sustained_qps: float = 0.0
    query_latency: dict[str, float] = field(default_factory=dict)
    update_latency: dict[str, float] = field(default_factory=dict)
    stale_egos: tuple[Node, ...] = ()

    def as_dict(self) -> dict[str, float]:
        return {
            "num_batches": float(self.num_batches),
            "num_queries": float(self.num_queries),
            "num_updates": float(self.num_updates),
            "num_degraded_updates": float(self.num_degraded_updates),
            "num_structural_updates": float(self.num_structural_updates),
            "seconds": self.seconds,
            "cache_hit_rate": self.cache_hit_rate,
            "sustained_qps": self.sustained_qps,
            "num_stale_egos": float(len(self.stale_egos)),
        }


def replay_traffic(
    session: ServingSession,
    num_batches: int = 12,
    queries_per_batch: int = 32,
    updates_per_batch: int = 1,
    update_every: int = 3,
    structural_every: int = 4,
    seed: int = 0,
    fault_plan: "FaultPlan | None" = None,
) -> ReplayReport:
    """Fire deterministic synthetic update + query traffic at a session.

    Every batch issues ``queries_per_batch`` edge queries drawn from the
    served graph; every ``update_every``-th batch first applies
    ``updates_per_batch`` interaction deltas (drawn with the offline
    generator's Poisson sampler), and every ``structural_every``-th update
    round also toggles a friendship edge (add a non-adjacent pair, or
    remove one previously added).  ``fault_plan`` is forwarded to each
    update's supervised re-division, so a chaos run measures sustained QPS
    *while* re-divisions crash and egos degrade to stale service.
    """
    if num_batches < 1:
        raise PipelineError("num_batches must be >= 1")
    graph = session.pipeline.graph
    builder = session.pipeline.feature_builder_
    assert graph is not None and builder is not None
    rng = Random(seed)
    nodes = list(graph.nodes())
    num_dims = builder.interactions.num_dims
    report = ReplayReport()
    toggled: list[Edge] = []
    update_round = 0
    start = session._clock.perf_counter()
    for batch in range(num_batches):
        if update_every and batch % update_every == update_every - 1:
            update_round += 1
            edge_pool = list(graph.edges())
            deltas = []
            for _ in range(updates_per_batch):
                u, v = edge_pool[rng.randrange(len(edge_pool))]
                deltas.append((u, v, sample_interaction_delta(num_dims, rng)))
            added: list[Edge] = []
            removed: list[Edge] = []
            if structural_every and update_round % structural_every == 0:
                if toggled and rng.random() < 0.5:
                    removed.append(toggled.pop(rng.randrange(len(toggled))))
                else:
                    for _ in range(20):
                        u, v = rng.sample(nodes, 2)
                        if not graph.has_edge(u, v):
                            added.append((u, v))
                            toggled.append((u, v))
                            break
                if added or removed:
                    report.num_structural_updates += 1
            update = session.apply_updates(
                added_edges=added,
                removed_edges=removed,
                interaction_deltas=deltas,
                fault_plan=fault_plan,
            )
            report.num_updates += 1
            if update.degraded:
                report.num_degraded_updates += 1
        edge_pool = list(graph.edges())
        queries = [
            edge_pool[rng.randrange(len(edge_pool))] for _ in range(queries_per_batch)
        ]
        session.predict_edges(queries)
        report.num_batches += 1
        report.num_queries += len(queries)
    report.seconds = session._clock.perf_counter() - start
    report.cache_hit_rate = session.stats.cache_hit_rate
    report.sustained_qps = (
        report.num_queries / report.seconds if report.seconds > 0 else 0.0
    )
    report.query_latency = session.stats.batch_latency.summary()
    report.update_latency = session.stats.update_latency.summary()
    report.stale_egos = tuple(sorted(session.stale_egos, key=repr))
    return report
