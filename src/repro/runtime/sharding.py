"""Node sharding for distributed LoCEC processing.

LoCEC's key scalability property is that every phase is a per-node (or
per-edge) computation over the node's ego network, so the network can be
split into shards that are processed independently on different servers.
This module implements the shard assignment used by the executor and the
cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import PipelineError
from repro.graph.graph import Graph
from repro.types import Node


@dataclass(frozen=True)
class Shard:
    """A shard: a worker index plus the ego nodes assigned to it."""

    shard_id: int
    egos: tuple[Node, ...]

    @property
    def size(self) -> int:
        return len(self.egos)


def shard_nodes(
    nodes: Sequence[Node], num_shards: int, strategy: str = "round_robin"
) -> list[Shard]:
    """Assign nodes to ``num_shards`` shards.

    Strategies
    ----------
    ``round_robin``
        Node ``i`` goes to shard ``i mod num_shards`` (the paper's streaming
        scheme: each node is parsed separately, so any balanced assignment
        works).
    ``contiguous``
        The node list is split into contiguous blocks (useful when node ids
        correlate with storage locality).
    """
    if num_shards < 1:
        raise PipelineError("num_shards must be >= 1")
    nodes = _dedupe(nodes)
    if strategy == "round_robin":
        buckets: list[list[Node]] = [[] for _ in range(num_shards)]
        for index, node in enumerate(nodes):
            buckets[index % num_shards].append(node)
    elif strategy == "contiguous":
        buckets = [[] for _ in range(num_shards)]
        block = max(1, (len(nodes) + num_shards - 1) // num_shards)
        for index, node in enumerate(nodes):
            buckets[min(index // block, num_shards - 1)].append(node)
    else:
        raise PipelineError(f"unknown sharding strategy {strategy!r}")
    return [
        Shard(shard_id=shard_id, egos=tuple(bucket))
        for shard_id, bucket in enumerate(buckets)
    ]


def _dedupe(nodes: Sequence[Node]) -> list[Node]:
    """Drop duplicate nodes, preserving first-occurrence order.

    A node sharded twice would be processed twice and then poison the merge
    (``DivisionResult.merge`` rejects egos present in two shards), so the
    assignment layer removes duplicates up front.
    """
    seen: set[Node] = set()
    unique: list[Node] = []
    for node in nodes:
        if node not in seen:
            seen.add(node)
            unique.append(node)
    return unique


def validate_shards(shards: Sequence[Shard], drop_empty: bool = True) -> list[Shard]:
    """Integrity-check a shard list before submission to the executor.

    Raises :class:`~repro.exceptions.PipelineError` on duplicate shard ids or
    on an ego assigned to more than one shard — both would corrupt the merge
    silently (last-writer-wins report rows, double-processed egos).  With
    ``drop_empty`` (the default) shards with no egos are removed, so the
    executor never pays submission/checkpoint overhead for no-op tasks.
    """
    seen_ids: set[int] = set()
    seen_egos: set[Node] = set()
    valid: list[Shard] = []
    for shard in shards:
        if shard.shard_id in seen_ids:
            raise PipelineError(f"duplicate shard id {shard.shard_id}")
        seen_ids.add(shard.shard_id)
        for ego in shard.egos:
            if ego in seen_egos:
                raise PipelineError(
                    f"ego {ego!r} assigned to more than one shard "
                    f"(second occurrence in shard {shard.shard_id})"
                )
            seen_egos.add(ego)
        if shard.size == 0 and drop_empty:
            continue
        valid.append(shard)
    return valid


def shard_by_degree(graph: Graph, num_shards: int) -> list[Shard]:
    """Degree-balanced sharding (longest-processing-time greedy assignment).

    Ego-network cost grows with the ego's degree, so balancing the summed
    degree per shard gives a tighter makespan than round-robin when the
    degree distribution is heavy-tailed.
    """
    if num_shards < 1:
        raise PipelineError("num_shards must be >= 1")
    nodes = sorted(graph.nodes(), key=lambda node: -graph.degree(node))
    loads = [0] * num_shards
    buckets: list[list[Node]] = [[] for _ in range(num_shards)]
    for node in nodes:
        target = loads.index(min(loads))
        buckets[target].append(node)
        loads[target] += max(graph.degree(node), 1)
    return [
        Shard(shard_id=shard_id, egos=tuple(bucket))
        for shard_id, bucket in enumerate(buckets)
    ]
