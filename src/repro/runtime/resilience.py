"""Resilience primitives for the sharded execution runtime.

The paper's production deployment runs Phase I continuously across 50–200
servers, where transient worker failures, stragglers and hard crashes are
routine.  This module supplies the building blocks the supervised executor
(:mod:`repro.runtime.executor`) is built from:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  **deterministic** jitter (seeded per ``(shard, attempt)``, so two runs of
  the same schedule sleep identically), plus retryable-exception
  classification.
* :class:`Clock` / :class:`SystemClock` / :class:`FakeClock` — an injectable
  time source.  Production uses :class:`SystemClock`; the test suite injects
  :class:`FakeClock` so every backoff/timeout path runs with **zero real
  sleeps**.
* :class:`ShardCheckpointStore` — per-shard spill of completed
  :class:`~repro.core.division.DivisionResult` objects, fingerprinted by
  shard content so ``run(resume_from=...)`` only skips checkpoints that
  match the work being resumed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.clock import Clock as Clock
from repro.clock import FakeClock as FakeClock
from repro.clock import SystemClock as SystemClock
from repro.core.division import DivisionResult
from repro.exceptions import (
    CheckpointError,
    ModelConfigError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.runtime.sharding import Shard


# --------------------------------------------------------------------- clock
# Clock / SystemClock / FakeClock now live in the dependency-free
# :mod:`repro.clock` (so core/pipeline code and scripts can inject them
# without import cycles) and are re-exported above for compatibility.


# --------------------------------------------------------------- retry policy
#: Exception types retried by default.  ``TimeoutError`` covers
#: ``concurrent.futures.TimeoutError`` (an alias since Python 3.11) and the
#: builtin; ``OSError``/``ConnectionError`` model infra flakiness.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    ShardTimeoutError,
    WorkerCrashError,
    TimeoutError,
    ConnectionError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delay(attempt, key)`` for attempt ``n`` (1-based: the delay before the
    n-th retry) is ``min(base_delay * backoff_factor**(n-1), max_delay)``
    plus a jitter drawn from ``Random(f"{seed}:{key}:{attempt}")`` — a pure
    function of the policy seed and the (shard, attempt) pair, so schedules
    are reproducible across runs and processes.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff_factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retryable_exceptions: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ModelConfigError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ModelConfigError("delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ModelConfigError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ModelConfigError("jitter must be in [0, 1]")

    @classmethod
    def from_config(cls, config: "object") -> "RetryPolicy":
        """Build a policy from a :class:`repro.core.config.ResilienceConfig`."""
        return cls(
            max_attempts=config.max_attempts,
            base_delay=config.backoff_base,
            backoff_factor=config.backoff_factor,
            max_delay=config.backoff_max,
            jitter=config.jitter,
            seed=config.seed,
        )

    def is_retryable(self, error: BaseException) -> bool:
        """True when ``error`` is worth retrying.

        An exception is retryable when it is an instance of one of
        ``retryable_exceptions`` or carries a truthy ``transient`` attribute
        (the fault-injection harness marks its synthetic transient errors
        that way).
        """
        if getattr(error, "transient", False):
            return True
        return isinstance(error, self.retryable_exceptions)

    def delay(self, attempt: int, key: object = 0) -> float:
        """Backoff before retry ``attempt`` (1-based) of work item ``key``."""
        if attempt < 1:
            return 0.0
        base = min(
            self.base_delay * self.backoff_factor ** (attempt - 1), self.max_delay
        )
        if self.jitter <= 0.0 or base <= 0.0:
            return base
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return base + rng.uniform(0.0, self.jitter * base)


# ----------------------------------------------------------- checkpointing
def shard_fingerprint(
    shard: Shard, detector: str, graph_id: str | None = None
) -> str:
    """Content hash identifying a shard's work: id, ego list and detector.

    The graph backend is deliberately excluded — backends are bit-identical
    by contract, so a checkpoint written under ``csr`` is valid for a resume
    under ``dict`` and vice versa.  ``graph_id`` (the spill file identity
    ``path|size|sha256`` from :func:`repro.graph.io.csr_npz_fingerprint`)
    *is* included when known: once graphs stop travelling by pickle the
    checkpoint is only as trustworthy as the spill it was computed from, so
    a rewritten spill at the same path invalidates old checkpoints.
    """
    work: tuple[object, ...] = (shard.shard_id, shard.egos, detector)
    if graph_id is not None:
        work = work + (graph_id,)
    payload = repr(work).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass
class ShardCheckpoint:
    """One spilled shard result."""

    fingerprint: str
    shard_id: int
    division: DivisionResult
    seconds: float


class ShardCheckpointStore:
    """Directory of per-shard pickled :class:`ShardCheckpoint` files.

    Writes are atomic (temp file + ``os.replace``) so a kill mid-write never
    leaves a truncated checkpoint that a resume would trust.  Loads validate
    the content fingerprint: a checkpoint written for different egos or a
    different detector — or, when the store is bound to a spill file via
    ``graph_id``, a different graph spill — is ignored, not reused.
    """

    def __init__(self, directory: str | Path, graph_id: str | None = None) -> None:
        self.directory = Path(directory)
        self.graph_id = graph_id
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, shard_id: int) -> Path:
        return self.directory / f"shard-{shard_id:05d}.pkl"

    def save(self, shard: Shard, detector: str, division: DivisionResult,
             seconds: float) -> Path:
        checkpoint = ShardCheckpoint(
            fingerprint=shard_fingerprint(shard, detector, self.graph_id),
            shard_id=shard.shard_id,
            division=division,
            seconds=seconds,
        )
        path = self._path(shard.shard_id)
        tmp = path.with_suffix(".tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint for shard {shard.shard_id} at {path}: {exc}"
            ) from exc
        return path

    def load(self, shard: Shard, detector: str) -> ShardCheckpoint | None:
        """Return the checkpoint for ``shard`` if present and fingerprint-valid."""
        path = self._path(shard.shard_id)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                checkpoint: ShardCheckpoint = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint for shard {shard.shard_id} at {path}: {exc}"
            ) from exc
        if checkpoint.fingerprint != shard_fingerprint(shard, detector, self.graph_id):
            return None  # stale: written for different work
        return checkpoint


# ------------------------------------------------------------- run summary
@dataclass
class ShardFailure:
    """Record of a shard that ended in failure (``on_shard_failure="skip"``)."""

    shard_id: int
    attempts: int
    error: str

    @classmethod
    def from_error(cls, shard_id: int, attempts: int,
                   error: BaseException) -> "ShardFailure":
        return cls(shard_id=shard_id, attempts=attempts, error=repr(error))


@dataclass
class RetryState:
    """Per-shard bookkeeping the supervisor threads through attempts."""

    shard: Shard
    attempt: int = 0  # attempts already made
    timeouts: int = 0
    last_error: BaseException | None = None
    errors: list[str] = field(default_factory=list)

    def record_failure(self, error: BaseException) -> None:
        self.attempt += 1
        self.last_error = error
        self.errors.append(repr(error))
        if isinstance(error, ShardTimeoutError):
            self.timeouts += 1
