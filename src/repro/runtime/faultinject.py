"""Deterministic fault injection for the sharded execution runtime.

A :class:`FaultPlan` maps ``(shard_id, attempt)`` pairs to faults and is
applied at the entry of every shard task, so a test (or the CLI chaos knob)
can script exactly which attempts fail and how:

* ``transient`` — raises :class:`TransientInjectedError` (retryable: the
  error carries ``transient=True``, which :class:`~repro.runtime.resilience.
  RetryPolicy` honours).
* ``permanent`` — raises :class:`PermanentInjectedError` (never retried).
* ``hang`` — the task stalls past the per-shard timeout.  In a worker
  process this is a real ``time.sleep`` (the supervisor's
  ``future.result(timeout=...)`` fires); under serial execution the stall is
  simulated on the injected clock and surfaces as the same
  :class:`~repro.exceptions.ShardTimeoutError` the supervisor would raise —
  zero real sleeps in the fast test tier.
* ``kill`` — hard worker death.  In a worker process ``os._exit`` drops the
  process without cleanup (the parent observes ``BrokenProcessPool``); under
  serial execution it is simulated as :class:`~repro.exceptions.
  WorkerCrashError` so the parent process is never actually killed.

Plans are plain picklable data: they travel to worker processes through the
pool initializer exactly like the graph does.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from random import Random
from typing import Iterable, Iterator, Sequence

from repro.exceptions import (
    PipelineError,
    ReproError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.runtime.resilience import Clock

FAULT_KINDS = ("transient", "permanent", "hang", "kill")


class InjectedFaultError(ReproError):
    """Base class for errors raised by the fault-injection harness."""

    transient = False

    def __init__(self, shard_id: int, attempt: int) -> None:
        super().__init__(
            f"injected {type(self).__name__} on shard {shard_id} attempt {attempt}"
        )
        self.shard_id = shard_id
        self.attempt = attempt

    def __reduce__(
        self,
    ) -> "tuple[type[InjectedFaultError], tuple[int, int]]":
        # Survive the trip back from worker processes.
        return (type(self), (self.shard_id, self.attempt))


class TransientInjectedError(InjectedFaultError):
    """A synthetic transient failure; retry policies classify it retryable."""

    transient = True


class PermanentInjectedError(InjectedFaultError):
    """A synthetic permanent failure; never retried."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: what happens on ``(shard_id, attempt)``."""

    shard_id: int
    attempt: int
    kind: str
    duration: float = 0.5
    """``hang`` only: real seconds a worker-process task stalls.  Serial
    (simulated) hangs advance the injected clock past the timeout instead."""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise PipelineError(
                f"unknown fault kind {self.kind!r}; available: {sorted(FAULT_KINDS)}"
            )


class FaultPlan:
    """A deterministic schedule of faults keyed by ``(shard_id, attempt)``."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._faults: dict[tuple[int, int], Fault] = {}
        for fault in faults:
            key = (fault.shard_id, fault.attempt)
            if key in self._faults:
                raise PipelineError(
                    f"duplicate fault for shard {fault.shard_id} "
                    f"attempt {fault.attempt}"
                )
            self._faults[key] = fault

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> "Iterator[Fault]":
        return iter(sorted(self._faults.values(),
                           key=lambda f: (f.shard_id, f.attempt)))

    def fault_for(self, shard_id: int, attempt: int) -> Fault | None:
        return self._faults.get((shard_id, attempt))

    @classmethod
    def random(
        cls,
        shard_ids: Sequence[int],
        seed: int = 0,
        fault_rate: float = 0.25,
        max_attempts: int = 3,
        kinds: Sequence[str] = ("transient", "hang", "kill"),
        hang_duration: float = 0.5,
    ) -> "FaultPlan":
        """Seeded chaos: each shard draws faults on its early attempts.

        Faults are only ever injected on attempts ``< max_attempts - 1``, so
        a run under a policy with that attempt budget is guaranteed to
        eventually succeed — which is exactly the regime where the merged
        division must come out bit-identical to a clean run.
        """
        if not 0.0 <= fault_rate <= 1.0:
            raise PipelineError("fault_rate must be in [0, 1]")
        rng = Random(seed)
        faults: list[Fault] = []
        for shard_id in shard_ids:
            for attempt in range(max(0, max_attempts - 1)):
                if rng.random() >= fault_rate:
                    break  # this attempt succeeds; later ones never run
                kind = kinds[rng.randrange(len(kinds))]
                faults.append(
                    Fault(shard_id=shard_id, attempt=attempt, kind=kind,
                          duration=hang_duration)
                )
        return cls(faults)

    def apply(
        self,
        shard_id: int,
        attempt: int,
        *,
        in_worker: bool,
        clock: Clock | None = None,
        timeout: float | None = None,
    ) -> None:
        """Trigger the fault scheduled for ``(shard_id, attempt)``, if any.

        Called at the entry of every shard task.  ``in_worker`` selects the
        real behaviour (sleep / hard ``os._exit``) versus the serial
        simulation (clock advance / raised crash error) — the serial path
        must never stall or kill the parent process.
        """
        fault = self.fault_for(shard_id, attempt)
        if fault is None:
            return
        if fault.kind == "transient":
            raise TransientInjectedError(shard_id, attempt)
        if fault.kind == "permanent":
            raise PermanentInjectedError(shard_id, attempt)
        if fault.kind == "hang":
            if in_worker:
                # A *real* stall is the fault being injected: the parent's
                # future-timeout path only fires against genuine wall time.
                time.sleep(fault.duration)  # repro-lint: disable=DET001
                return  # the parent's future timeout decides the task's fate
            stall = fault.duration if timeout is None else max(
                fault.duration, timeout * 2
            )
            if clock is not None:
                clock.sleep(stall)
            raise ShardTimeoutError(shard_id, timeout if timeout else stall)
        if fault.kind == "kill":
            if in_worker:
                os._exit(1)  # hard death: no cleanup, parent sees BrokenProcessPool
            raise WorkerCrashError(shard_id, detail="injected kill (serial simulation)")
