"""Sharded Phase II execution: multi-core feature aggregation.

Phase I has run multi-core since PR 6; this module makes Phase II (community
feature aggregation, :mod:`repro.graph.phase2`) the second pipeline phase to
do so.  The shape is slice-and-merge:

* the compiled :class:`~repro.graph.phase2.Phase2Kernel` is published to
  POSIX shared memory **once** (:meth:`repro.graph.shm.SharedPhase2Kernel.
  publish`); every pool worker attaches the O(1)
  :class:`~repro.graph.shm.Phase2ShmHandle` and sees the interaction CSR and
  dense feature matrix zero-copy,
* the community batch is partitioned into deterministic shards bucketed by
  total member count (LPT greedy, ties broken by community position) so
  shard costs balance,
* each worker computes only its community slice — batch rows, statistic
  vectors or the CommCNN input tensor — and the parent merges the blocks
  positionally into the exact arrays the serial path produces.

Bit-identity is the contract, not an aspiration: every per-community
reduction in the kernel is independent of batch composition (community-
strided keys, per-community segment sums), so a shard's block equals the
corresponding slice of the full-batch result bit-for-bit, and the merged
output is byte-equal to the serial run — under any fault schedule that
eventually succeeds.  Supervision (retries, per-shard timeouts, broken-pool
rebuild with lease sweeps, ``on_shard_failure`` semantics, degrade-to-serial)
mirrors :class:`~repro.runtime.executor.ShardedDivisionExecutor`.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Collection, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing-only imports (lazy at runtime)
    from repro.graph.phase2 import Phase2Kernel
    from repro.graph.shm import Phase2ShmHandle, ShmLease

from repro.core.config import ResilienceConfig
from repro.exceptions import (
    ExecutorError,
    RetryExhaustedError,
    ShardFailedError,
    ShardTimeoutError,
    StalePhase2KernelError,
    WorkerCrashError,
)
from repro.runtime.executor import TransportStats, _peak_rss_bytes
from repro.runtime.faultinject import FaultPlan
from repro.runtime.resilience import (
    Clock,
    RetryPolicy,
    ShardFailure,
    SystemClock,
)
from repro.types import Node

__all__ = [
    "Phase2Shard",
    "Phase2ShardReport",
    "Phase2ExecutionReport",
    "Phase2ShardedRunner",
    "shard_communities",
]

#: One community's kernel work item: ``(members, selected-in-row-order)``.
CommunityPair = tuple[Collection[Node], Sequence[Node]]

#: A shard's computed block: ``(rows, offsets)`` in rows mode, a single
#: array in stats/tensor mode.
ShardResult = "np.ndarray | tuple[np.ndarray, np.ndarray]"

_MODES = ("rows", "stats", "tensor")


# ------------------------------------------------------------------ sharding
@dataclass(frozen=True)
class Phase2Shard:
    """One deterministic slice of a community batch.

    ``indices`` are ascending positions into the caller's batch, so merging
    a shard's block back is pure positional assignment.
    """

    shard_id: int
    indices: tuple[int, ...]
    total_members: int


def shard_communities(sizes: Sequence[int], num_shards: int) -> list[Phase2Shard]:
    """Partition communities into at most ``num_shards`` balanced shards.

    Longest-processing-time greedy over member counts: communities are
    visited largest-first (ties by batch position) and each lands in the
    currently lightest bucket (ties by bucket id) — deterministic, and the
    makespan is within 4/3 of optimal.  Member count is the balance proxy
    because the kernel's per-community cost is dominated by the member
    adjacency sweep.  Empty buckets are dropped; shard ids are re-numbered
    densely so fault plans address shards ``0..len-1``.
    """
    if num_shards < 1:
        raise ExecutorError("num_shards must be >= 1")
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    buckets: list[list[int]] = [[] for _ in range(num_shards)]
    loads = [0] * num_shards
    for index in order:
        target = loads.index(min(loads))
        buckets[target].append(index)
        # Even an empty community costs a task slot: floor the load at 1.
        loads[target] += max(1, sizes[index])
    shards: list[Phase2Shard] = []
    for bucket in buckets:
        if not bucket:
            continue
        members = sum(sizes[i] for i in bucket)
        shards.append(
            Phase2Shard(
                shard_id=len(shards),
                indices=tuple(sorted(bucket)),
                total_members=members,
            )
        )
    return shards


# ------------------------------------------------------------ worker process
_WORKER_KERNEL: "Phase2Kernel | None" = None
_WORKER_FAULT_PLAN: FaultPlan | None = None
_WORKER_TIMEOUT: float | None = None


def _reset_phase2_worker_state() -> None:
    """Explicit worker teardown: drop the cached kernel (closing shm borrows)."""
    global _WORKER_KERNEL, _WORKER_FAULT_PLAN, _WORKER_TIMEOUT
    kernel, _WORKER_KERNEL = _WORKER_KERNEL, None
    _WORKER_FAULT_PLAN = None
    _WORKER_TIMEOUT = None
    close = getattr(kernel, "close", None)
    if callable(close):
        close()


def _init_phase2_worker(
    payload: "Phase2Kernel | Phase2ShmHandle",
    fault_plan: FaultPlan | None = None,
    shard_timeout: float | None = None,
) -> None:
    """Process-pool initializer: receive the compiled kernel once per worker.

    Under shm transport the payload is an O(1)
    :class:`~repro.graph.shm.Phase2ShmHandle` and the worker attaches the
    published segments zero-copy; under pickle transport it is the kernel
    itself, deserialized once per worker instead of once per shard task.
    """
    global _WORKER_KERNEL, _WORKER_FAULT_PLAN, _WORKER_TIMEOUT
    _reset_phase2_worker_state()
    attach = getattr(payload, "attach", None)
    if callable(attach):  # Phase2ShmHandle
        _WORKER_KERNEL = attach()
    else:
        _WORKER_KERNEL = payload  # type: ignore[assignment]
    _WORKER_FAULT_PLAN = fault_plan
    _WORKER_TIMEOUT = shard_timeout


def _compute_shard(
    kernel: "Phase2Kernel", pairs: list[CommunityPair], mode: str, k: int
) -> ShardResult:
    """One shard's aggregation: dispatch on the entry-point mode."""
    if mode == "rows":
        return kernel.community_rows_batch(pairs)
    if mode == "stats":
        return kernel.community_statistics(pairs)
    if mode == "tensor":
        return kernel.community_tensor(pairs, k)
    raise ExecutorError(f"unknown Phase II mode {mode!r}; available: {_MODES}")


def _phase2_shard_in_worker(
    shard_id: int,
    pairs: list[CommunityPair],
    mode: str,
    k: int,
    attempt: int = 0,
) -> tuple[int, ShardResult, float, int]:
    assert _WORKER_KERNEL is not None, "worker initializer did not run"
    if _WORKER_FAULT_PLAN is not None:
        _WORKER_FAULT_PLAN.apply(
            shard_id, attempt, in_worker=True, timeout=_WORKER_TIMEOUT
        )
    # Worker-side duration measurement: the injectable Clock lives in the
    # supervisor process and deliberately does not travel to workers (a
    # FakeClock would report zero-length shards).  Measurement-only — the
    # aggregation result itself is time-independent.
    start = time.perf_counter()  # repro-lint: disable=DET001
    result = _compute_shard(_WORKER_KERNEL, pairs, mode, k)
    seconds = time.perf_counter() - start  # repro-lint: disable=DET001
    return shard_id, result, seconds, _peak_rss_bytes()


# ----------------------------------------------------------------- reporting
@dataclass
class Phase2ShardReport:
    """Timing, size and supervision information for one aggregation shard."""

    shard_id: int
    num_communities: int
    total_members: int
    seconds: float
    attempts: int = 1
    timeouts: int = 0

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class Phase2ExecutionReport:
    """Result accounting of one sharded Phase II call.

    Partial results are first-class: under ``on_shard_failure="skip"`` the
    merged arrays cover every shard that succeeded (failed shards leave
    their zero blocks) and ``failed_shards`` names the missing ones.
    """

    mode: str = ""
    num_communities: int = 0
    num_workers: int = 0
    shard_reports: list[Phase2ShardReport] = field(default_factory=list)
    failed_shards: list[ShardFailure] = field(default_factory=list)
    pool_rebuilds: int = 0
    degraded_to_serial: bool = False
    transport: TransportStats = field(default_factory=TransportStats)
    parent_seconds: float = 0.0
    """Parent-side overhead: partition + publish + submit + merge seconds."""

    @property
    def total_seconds(self) -> float:
        """Worker compute seconds summed over shards (the serial-equivalent)."""
        return sum(report.seconds for report in self.shard_reports)

    @property
    def makespan_seconds(self) -> float:
        """Projected parallel wall-clock on ``num_workers`` cores.

        LPT-packs the measured per-shard compute seconds onto the worker
        count and adds the parent-side overhead.  Like
        :func:`repro.runtime.scalability.measure_worker_scaling`, this is
        deliberately independent of how many cores the host actually has —
        it is the quantity the cost model calibrates against.
        """
        if not self.shard_reports:
            return self.parent_seconds
        workers = max(1, self.num_workers)
        loads = [0.0] * workers
        for seconds in sorted(
            (report.seconds for report in self.shard_reports), reverse=True
        ):
            loads[loads.index(min(loads))] += seconds
        return max(loads) + self.parent_seconds

    @property
    def total_retries(self) -> int:
        retried = sum(report.retries for report in self.shard_reports)
        return retried + sum(max(0, item.attempts - 1) for item in self.failed_shards)

    @property
    def total_timeouts(self) -> int:
        return sum(report.timeouts for report in self.shard_reports)


@dataclass
class _Phase2RetryState:
    """Per-shard bookkeeping threaded through attempts (local analogue of
    :class:`repro.runtime.resilience.RetryState`, which is typed to the
    Phase I :class:`~repro.runtime.sharding.Shard`)."""

    shard: Phase2Shard
    pairs: list[CommunityPair]
    attempt: int = 0
    timeouts: int = 0
    errors: list[str] = field(default_factory=list)

    def record_failure(self, error: BaseException) -> None:
        self.attempt += 1
        self.errors.append(repr(error))
        if isinstance(error, ShardTimeoutError):
            self.timeouts += 1


@dataclass
class _Phase2Outcome:
    """Internal: one shard's final block after supervision."""

    shard: Phase2Shard
    result: ShardResult
    seconds: float
    attempts: int
    timeouts: int


# -------------------------------------------------------------------- runner
class Phase2ShardedRunner:
    """Fan Phase II aggregation out across a supervised process pool.

    Parameters
    ----------
    kernel:
        The compiled :class:`~repro.graph.phase2.Phase2Kernel` to serve.
        Published to shared memory once, on first pooled call.
    num_workers:
        1 runs the sharded path in-process (deterministic shard + merge,
        no pool); >1 uses a process pool of that size.
    num_shards:
        Number of community shards per call; defaults to ``num_workers``.
    resilience:
        Fault-tolerance knobs (:class:`repro.core.config.ResilienceConfig`):
        retry budget/backoff, per-shard timeout, ``on_shard_failure`` mode,
        pool-rebuild budget, transport selection.
    retry_policy:
        Optional explicit policy; derived from ``resilience`` when omitted.
    fault_plan:
        Optional :class:`~repro.runtime.faultinject.FaultPlan` injecting
        deterministic faults into shard attempts (tests / chaos runs).
    clock:
        Injectable time source for backoff sleeps and simulated hangs.
    source_versions / version_probe:
        Staleness guard: when both are given, every call (and every publish)
        compares ``version_probe()`` against ``source_versions`` and raises
        :class:`~repro.exceptions.StalePhase2KernelError` on mismatch, so a
        published snapshot can never serve mutated stores.

    The runner keeps its pool and shared-memory lease alive across calls
    (publish once, aggregate many); :meth:`close` — or the context-manager
    form — releases both.
    """

    def __init__(
        self,
        kernel: "Phase2Kernel",
        num_workers: int = 2,
        num_shards: int | None = None,
        resilience: ResilienceConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        clock: Clock | None = None,
        source_versions: tuple[int, int] | None = None,
        version_probe: Callable[[], tuple[int, int]] | None = None,
    ) -> None:
        if num_workers < 1:
            raise ExecutorError("num_workers must be >= 1")
        if num_shards is not None and num_shards < 1:
            raise ExecutorError("num_shards must be >= 1")
        self.kernel = kernel
        self.num_workers = num_workers
        self.num_shards = num_shards if num_shards is not None else num_workers
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.resilience.validate()
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy.from_config(self.resilience)
        )
        self.retry_policy.validate()
        self.fault_plan = fault_plan
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.source_versions = source_versions
        self.version_probe = version_probe
        self.last_report: Phase2ExecutionReport | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._lease: "ShmLease | None" = None

    # ------------------------------------------------------------ entry points
    def rows_batch(
        self, pairs: Sequence[CommunityPair]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sharded :meth:`Phase2Kernel.community_rows_batch` (bit-identical)."""
        work = list(pairs)
        num_columns = self._num_columns()
        sel_sizes = np.fromiter(
            (len(selected) for _, selected in work), dtype=np.int64, count=len(work)
        )
        offsets = np.zeros(len(work) + 1, dtype=np.int64)
        np.cumsum(sel_sizes, out=offsets[1:])
        rows = np.zeros((int(offsets[-1]), num_columns))
        outcomes, report = self._execute(work, "rows", 0)
        merge_start = time.perf_counter()  # repro-lint: disable=DET001
        for outcome in outcomes.values():
            block, block_offsets = outcome.result  # type: ignore[misc]
            for local, index in enumerate(outcome.shard.indices):
                rows[offsets[index] : offsets[index + 1]] = block[
                    block_offsets[local] : block_offsets[local + 1]
                ]
        report.parent_seconds += time.perf_counter() - merge_start  # repro-lint: disable=DET001
        self.last_report = report
        return rows, offsets

    def statistics(
        self, pairs: Sequence[CommunityPair], out: np.ndarray | None = None
    ) -> np.ndarray:
        """Sharded :meth:`Phase2Kernel.community_statistics` (bit-identical)."""
        work = list(pairs)
        num_columns = self._num_columns()
        if out is None:
            out = np.zeros((len(work), 2 * num_columns + 1), dtype=np.float64)
        outcomes, report = self._execute(work, "stats", 0)
        merge_start = time.perf_counter()  # repro-lint: disable=DET001
        for outcome in outcomes.values():
            out[list(outcome.shard.indices)] = outcome.result
        report.parent_seconds += time.perf_counter() - merge_start  # repro-lint: disable=DET001
        self.last_report = report
        return out

    def tensor(self, pairs: Sequence[CommunityPair], k: int) -> np.ndarray:
        """Sharded :meth:`Phase2Kernel.community_tensor` (bit-identical)."""
        work = list(pairs)
        tensor = np.zeros(
            (len(work), 1, k, self._num_columns()), dtype=np.float64
        )
        outcomes, report = self._execute(work, "tensor", k)
        merge_start = time.perf_counter()  # repro-lint: disable=DET001
        for outcome in outcomes.values():
            tensor[list(outcome.shard.indices)] = outcome.result
        report.parent_seconds += time.perf_counter() - merge_start  # repro-lint: disable=DET001
        self.last_report = report
        return tensor

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the pool, the published lease and worker globals.

        Idempotent and safe at any point; the context-manager form calls it
        on exit, and :meth:`FeatureMatrixBuilder.invalidate_kernel` calls it
        so a stale snapshot can never outlive its stores' next write.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        self._sweep_lease(None)
        _reset_phase2_worker_state()

    def __enter__(self) -> "Phase2ShardedRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------- internals
    def _num_columns(self) -> int:
        return self.kernel.interactions.num_dims + self.kernel.features.num_features

    def _check_fresh(self) -> None:
        """Refuse to serve a snapshot whose source stores have moved on."""
        if self.version_probe is None or self.source_versions is None:
            return
        actual = self.version_probe()
        if actual != self.source_versions:
            raise StalePhase2KernelError(self.source_versions, actual)

    def _execute(
        self, pairs: list[CommunityPair], mode: str, k: int
    ) -> tuple[dict[int, _Phase2Outcome], Phase2ExecutionReport]:
        self._check_fresh()
        report = Phase2ExecutionReport(
            mode=mode, num_communities=len(pairs), num_workers=self.num_workers
        )
        report.transport.num_workers = self.num_workers
        start = time.perf_counter()  # repro-lint: disable=DET001
        shards = shard_communities(
            [len(members) for members, _ in pairs], self.num_shards
        )
        states = [
            _Phase2RetryState(
                shard=shard, pairs=[pairs[index] for index in shard.indices]
            )
            for shard in shards
        ]
        outcomes: dict[int, _Phase2Outcome] = {}
        if states:
            if self.num_workers <= 1:
                self._run_serial(states, mode, k, report, outcomes)
            else:
                self._run_pool(states, mode, k, report, outcomes)
        report.failed_shards.sort(key=lambda item: item.shard_id)
        for shard_id in sorted(outcomes):
            outcome = outcomes[shard_id]
            report.shard_reports.append(
                Phase2ShardReport(
                    shard_id=shard_id,
                    num_communities=len(outcome.shard.indices),
                    total_members=outcome.shard.total_members,
                    seconds=outcome.seconds,
                    attempts=max(outcome.attempts, 1),
                    timeouts=outcome.timeouts,
                )
            )
        elapsed = time.perf_counter() - start  # repro-lint: disable=DET001
        # Parent overhead excludes worker compute only on the serial path
        # approximately; for pooled runs the wall time is dominated by the
        # workers, so subtract their reported compute from the elapsed span.
        report.parent_seconds += max(0.0, elapsed - report.total_seconds)
        return outcomes, report

    def _run_serial(
        self,
        states: list[_Phase2RetryState],
        mode: str,
        k: int,
        report: Phase2ExecutionReport,
        outcomes: dict[int, _Phase2Outcome],
    ) -> None:
        """Supervised in-process execution (faults run in simulation mode)."""
        for state in states:
            shard = state.shard
            while True:
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.apply(
                            shard.shard_id,
                            state.attempt,
                            in_worker=False,
                            clock=self.clock,
                            timeout=self.resilience.shard_timeout,
                        )
                    compute_start = time.perf_counter()  # repro-lint: disable=DET001
                    result = _compute_shard(self.kernel, state.pairs, mode, k)
                    seconds = time.perf_counter() - compute_start  # repro-lint: disable=DET001
                except Exception as exc:  # noqa: BLE001 — supervision boundary
                    state.record_failure(exc)
                    if self._should_retry(state, exc):
                        self.clock.sleep(
                            self.retry_policy.delay(state.attempt, key=shard.shard_id)
                        )
                        continue
                    self._handle_exhausted(state, mode, k, exc, report, outcomes)
                    break
                outcomes[shard.shard_id] = _Phase2Outcome(
                    shard=shard,
                    result=result,
                    seconds=seconds,
                    attempts=state.attempt + 1,
                    timeouts=state.timeouts,
                )
                report.transport.peak_worker_rss_bytes = max(
                    report.transport.peak_worker_rss_bytes, _peak_rss_bytes()
                )
                break

    def _run_pool(
        self,
        states: list[_Phase2RetryState],
        mode: str,
        k: int,
        report: Phase2ExecutionReport,
        outcomes: dict[int, _Phase2Outcome],
    ) -> None:
        """Supervised process-pool execution with pool-rebuild recovery."""
        timeout = self.resilience.shard_timeout
        pool = self._ensure_pool(report)
        pending = list(states)
        while pending:
            futures: list[tuple[_Phase2RetryState, object | None]] = []
            broken = False
            for state in pending:
                if broken:
                    futures.append((state, None))
                    continue
                try:
                    futures.append(
                        (
                            state,
                            pool.submit(
                                _phase2_shard_in_worker,
                                state.shard.shard_id,
                                state.pairs,
                                mode,
                                k,
                                state.attempt,
                            ),
                        )
                    )
                except BrokenProcessPool:
                    broken = True
                    futures.append((state, None))

            retry_wave: list[_Phase2RetryState] = []
            for state, future in futures:
                shard = state.shard
                if future is None:
                    exc: Exception = WorkerCrashError(
                        shard.shard_id, detail="process pool broken"
                    )
                else:
                    try:
                        _, result, seconds, worker_rss = future.result(  # type: ignore[attr-defined]
                            timeout=timeout
                        )
                        outcomes[shard.shard_id] = _Phase2Outcome(
                            shard=shard,
                            result=result,
                            seconds=seconds,
                            attempts=state.attempt + 1,
                            timeouts=state.timeouts,
                        )
                        report.transport.peak_worker_rss_bytes = max(
                            report.transport.peak_worker_rss_bytes, worker_rss
                        )
                        continue
                    except FutureTimeoutError:
                        exc = ShardTimeoutError(shard.shard_id, timeout or 0.0)
                        future.cancel()  # type: ignore[attr-defined]
                    except BrokenProcessPool:
                        broken = True
                        exc = WorkerCrashError(
                            shard.shard_id, detail="worker process died"
                        )
                    except Exception as raw:  # noqa: BLE001 — supervision boundary
                        exc = raw
                state.record_failure(exc)
                if self._should_retry(state, exc):
                    retry_wave.append(state)
                else:
                    self._handle_exhausted(state, mode, k, exc, report, outcomes)

            if broken:
                pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
                # Unlink-on-rebuild sweep (MP003): a crashed worker cannot
                # close its attachments, so the parent unlinks the published
                # segments here and republishes for the next pool.
                self._sweep_lease(report)
                report.pool_rebuilds += 1
                if report.pool_rebuilds > self.resilience.max_pool_rebuilds:
                    # The pool keeps dying: degrade to in-process serial
                    # execution for everything still unfinished.
                    report.degraded_to_serial = True
                    self._run_serial(retry_wave, mode, k, report, outcomes)
                    return
                pool = self._ensure_pool(report)

            if retry_wave:
                # One backoff per wave: the longest of the per-shard delays
                # (per-shard sleeps would serialize the pool).
                self.clock.sleep(
                    max(
                        self.retry_policy.delay(s.attempt, key=s.shard.shard_id)
                        for s in retry_wave
                    )
                )
            pending = retry_wave

    def _resolve_transport(self) -> str:
        """``"auto"`` picks shm when the platform supports it; ``"shm"`` insists."""
        mode = self.resilience.transport
        if mode == "pickle":
            return "pickle"
        try:
            from repro.graph.shm import shm_supported

            supported = shm_supported()
        except ImportError:
            supported = False
        if mode == "shm":
            if not supported:
                raise ExecutorError(
                    "transport='shm' requires a platform with POSIX shared memory"
                )
            return "shm"
        return "shm" if supported else "pickle"

    def _worker_payload(
        self, report: Phase2ExecutionReport
    ) -> "Phase2Kernel | Phase2ShmHandle":
        """Publish the kernel (once) and build the per-worker payload."""
        self._check_fresh()
        if self._lease is not None:
            return self._lease.handle  # type: ignore[return-value]
        if self._resolve_transport() == "shm":
            from repro.graph.shm import SharedPhase2Kernel, handle_nbytes

            try:
                lease = SharedPhase2Kernel.publish(self.kernel)
            except Exception:  # noqa: BLE001 — fall back rather than fail startup
                if self.resilience.transport == "shm":
                    raise
            else:
                self._lease = lease
                report.transport.transport = "shm"
                report.transport.payload_bytes = handle_nbytes(lease.handle)
                report.transport.segment_bytes = lease.segment_nbytes
                return lease.handle  # type: ignore[return-value]
        report.transport.transport = "pickle"
        report.transport.payload_bytes = len(
            pickle.dumps(self.kernel, pickle.HIGHEST_PROTOCOL)
        )
        report.transport.segment_bytes = 0
        return self.kernel

    def _ensure_pool(self, report: Phase2ExecutionReport) -> ProcessPoolExecutor:
        if self._pool is None:
            payload = self._worker_payload(report)
            self._pool = ProcessPoolExecutor(
                max_workers=self.num_workers,
                initializer=_init_phase2_worker,
                initargs=(payload, self.fault_plan, self.resilience.shard_timeout),
            )
        elif self._lease is not None:
            # Pool reused across calls: re-report the standing transport.
            from repro.graph.shm import handle_nbytes

            report.transport.transport = "shm"
            report.transport.payload_bytes = handle_nbytes(self._lease.handle)
            report.transport.segment_bytes = self._lease.segment_nbytes
        else:
            report.transport.transport = "pickle"
        return self._pool

    def _sweep_lease(self, report: Phase2ExecutionReport | None) -> None:
        """Unlink the published lease (idempotent; rebuilds and finalizers)."""
        lease, self._lease = self._lease, None
        if lease is None:
            return
        swept = 0 if lease.released else len(lease.segment_names)
        lease.close()
        if report is not None:
            report.transport.swept_segments += swept

    def _should_retry(self, state: _Phase2RetryState, exc: Exception) -> bool:
        return (
            self.retry_policy.is_retryable(exc)
            and state.attempt < self.retry_policy.max_attempts
        )

    def _handle_exhausted(
        self,
        state: _Phase2RetryState,
        mode: str,
        k: int,
        exc: Exception,
        report: Phase2ExecutionReport,
        outcomes: dict[int, _Phase2Outcome],
    ) -> None:
        """Apply ``on_shard_failure`` once a shard's attempt budget is spent."""
        shard = state.shard
        failure_mode = self.resilience.on_shard_failure
        if failure_mode == "serial_fallback":
            # Last resort: run the shard in-process, bypassing the pool and
            # the fault-injection layer (both model infrastructure faults,
            # and the in-process path has neither workers nor injectors).
            try:
                compute_start = time.perf_counter()  # repro-lint: disable=DET001
                result = _compute_shard(self.kernel, state.pairs, mode, k)
                seconds = time.perf_counter() - compute_start  # repro-lint: disable=DET001
            except Exception as fallback_exc:  # noqa: BLE001 — supervision boundary
                raise ShardFailedError(
                    shard.shard_id, state.attempt + 1, fallback_exc
                ) from fallback_exc
            outcomes[shard.shard_id] = _Phase2Outcome(
                shard=shard,
                result=result,
                seconds=seconds,
                attempts=state.attempt + 1,
                timeouts=state.timeouts,
            )
            return
        if failure_mode == "skip":
            report.failed_shards.append(
                ShardFailure.from_error(shard.shard_id, state.attempt, exc)
            )
            return
        if self.retry_policy.is_retryable(exc):
            raise RetryExhaustedError(shard.shard_id, state.attempt, exc) from exc
        raise ShardFailedError(shard.shard_id, state.attempt, exc) from exc
