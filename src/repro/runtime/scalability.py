"""Scalability experiment driver (Table VI, Figure 12).

Combines the two halves of the scalability story:

1. **Measured** — run the real pipeline phases on synthetic networks of
   increasing size (or with increasing worker counts) and record wall-clock
   times, demonstrating the linear-in-nodes / inverse-in-workers behaviour on
   hardware we actually have.
2. **Projected** — feed per-item costs (either measured or back-solved from
   the paper) into :class:`repro.runtime.cost_model.CostModel` to regenerate
   the WeChat-scale numbers of Table VI and Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Clock, SystemClock
from repro.core.aggregation import FeatureMatrixBuilder
from repro.core.config import (
    _UNSET,
    ResilienceConfig,
    RuntimeOptions,
    resolve_runtime_options,
)
from repro.core.division import divide
from repro.runtime.cost_model import (
    ClusterSpec,
    CostCalibration,
    CostModel,
    Phase2ScalingCalibration,
    RuntimeEstimate,
    TransportCalibration,
    WorkloadSpec,
)
from repro.runtime.executor import ShardedDivisionExecutor, TransportStats
from repro.synthetic.network import SocialNetworkDataset


@dataclass
class MeasuredPhaseTimes:
    """Wall-clock seconds of a real (local) run of the three phases.

    The model-kernel timings (GBDT fit, batched forest inference, CNN tensor
    emission, CommCNN fit/predict) are zero unless :func:`measure_phases`
    ran with ``include_model_kernels=True``; they time the Phase II/III
    model layer on the selected ``ml_backend`` / ``nn_backend`` and are
    excluded from :attr:`total_seconds`, which keeps the cost-model
    calibration a pure per-item phase cost as before.
    """

    num_nodes: int
    num_edges: int
    num_communities: int
    phase1_seconds: float
    phase2_seconds: float
    phase3_seconds: float
    gbdt_fit_seconds: float = 0.0
    forest_predict_seconds: float = 0.0
    commcnn_tensor_seconds: float = 0.0
    commcnn_fit_seconds: float = 0.0
    commcnn_predict_seconds: float = 0.0
    transport_stats: TransportStats | None = None
    """Graph-shipping accounting of the Phase I run (resolved transport,
    payload vs segment bytes, peak worker RSS).  ``None`` unless
    :func:`measure_phases` ran Phase I through the shard executor
    (``num_workers > 1``)."""
    phase2_transport_stats: TransportStats | None = None
    """Kernel-shipping accounting of the Phase II run.  ``None`` unless
    :func:`measure_phases` ran Phase II through the sharded runner
    (``phase2_workers >= 1``)."""
    phase2_makespan_seconds: float = 0.0
    """Projected sharded Phase II makespan (LPT shard packing onto
    ``phase2_workers`` + parent overhead); 0 on the serial path."""

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.phase2_seconds + self.phase3_seconds

    def to_calibration(self, training_hours: float = 4.5) -> CostCalibration:
        """Turn the measurements into a cost-model calibration."""
        return CostCalibration.from_measurements(
            phase1_seconds=self.phase1_seconds,
            num_nodes=self.num_nodes,
            phase2_seconds=self.phase2_seconds,
            num_communities=self.num_communities,
            phase3_seconds=self.phase3_seconds,
            num_edges=self.num_edges,
            training_hours=training_hours,
        )


def measure_phases(
    dataset: SocialNetworkDataset,
    k: int = 20,
    detector: str = "girvan_newman",
    max_egos: int | None = None,
    backend: str = _UNSET,
    ml_backend: str = _UNSET,
    nn_backend: str = _UNSET,
    include_model_kernels: bool = False,
    gbdt_rounds: int = 10,
    cnn_epochs: int = 2,
    num_workers: int = 1,
    num_shards: int = 4,
    transport: str = _UNSET,
    phase2_workers: int = _UNSET,
    options: RuntimeOptions | None = None,
    clock: Clock | None = None,
) -> MeasuredPhaseTimes:
    """Time the three LoCEC phases on a real (synthetic) dataset.

    ``max_egos`` limits Phase I to a node sample so the measurement fits in a
    benchmark budget; per-item costs are unaffected because all phases are
    per-item computations.  ``options`` (a
    :class:`~repro.core.config.RuntimeOptions`) selects the runtime surface:
    ``options.backend`` the kernel layer for Phases I and II
    (``"auto"``/``"csr"``/``"dict"``), ``options.ml_backend`` the tree-model
    layer (``"auto"``/``"array"``/``"hist"``/``"node"``),
    ``options.nn_backend`` the CommCNN execution engine
    (``"auto"``/``"fused"``/``"loop"``), ``options.transport`` the graph
    shipping (``"auto"``/``"pickle"``/``"shm"``) and
    ``options.phase2_workers`` the sharded Phase II pool, mirroring
    ``LoCECConfig``.  The flat ``backend`` / ``ml_backend`` / ``nn_backend``
    / ``transport`` / ``phase2_workers`` kwargs are deprecated aliases of
    those fields; explicit values still work for one release (with a
    ``DeprecationWarning``) and override the corresponding ``options`` field.
    With ``include_model_kernels=True`` the model-layer
    kernels are timed too: ``gbdt_fit`` (a ``gbdt_rounds``-round boosted fit
    on the statistic vectors), ``forest_predict`` (probabilities + the
    leaf-value embedding), ``commcnn_tensor`` (CNN input tensor emission),
    ``commcnn_fit`` (a ``cnn_epochs``-epoch CommCNN fit on that tensor) and
    ``commcnn_predict`` (CommCNN probabilities for every community).
    With ``num_workers > 1`` Phase I runs through the shard executor
    (``num_shards`` shards) and the returned
    :class:`MeasuredPhaseTimes` carries the run's
    :class:`~repro.runtime.executor.TransportStats`.
    With ``options.phase2_workers >= 1`` Phase II aggregation routes through
    the sharded runner (:class:`repro.runtime.phase2_exec.Phase2ShardedRunner`,
    bit-identical outputs) and the result carries the kernel-shipping
    ``phase2_transport_stats`` plus the projected ``phase2_makespan_seconds``.
    ``clock`` injects the time source (default :class:`repro.clock.
    SystemClock`); tests inject a ``FakeClock`` to get deterministic timings.
    """
    options = resolve_runtime_options(
        options,
        {
            "backend": backend,
            "ml_backend": ml_backend,
            "nn_backend": nn_backend,
            "transport": transport,
            "phase2_workers": phase2_workers,
        },
        caller="measure_phases",
    )
    clock = clock or SystemClock()
    egos = list(dataset.graph.nodes())
    if max_egos is not None:
        egos = egos[:max_egos]

    transport_stats: TransportStats | None = None
    start = clock.perf_counter()
    if num_workers > 1:
        # Phase I through the shard executor: same division (the executor's
        # core invariant), plus transport accounting for the report below.
        with ShardedDivisionExecutor(
            num_shards=num_shards,
            num_workers=num_workers,
            detector=detector,
            backend=options.backend,
            resilience=options.resolved_resilience()
            or ResilienceConfig(transport=options.transport),
        ) as executor:
            execution = executor.run(dataset.graph, egos=egos)
        division = execution.division
        transport_stats = execution.transport
    else:
        division = divide(
            dataset.graph, egos=egos, detector=detector, backend=options.backend
        )
    phase1_seconds = clock.perf_counter() - start

    builder = FeatureMatrixBuilder(
        dataset.features,
        dataset.interactions,
        k=k,
        options=options,
    )
    communities = list(division.all_communities())
    if communities:
        # Warm the once-per-fit kernel compilation (and, on the sharded
        # path, the one-time shm publish + pool spin-up) outside the timed
        # region (mirroring scripts/perf_report.py) so phase2_seconds stays
        # a pure per-item cost.
        builder.feature_matrices(communities[:1])
    start = clock.perf_counter()
    builder.feature_matrices(communities)
    phase2_seconds = clock.perf_counter() - start
    phase2_transport_stats: TransportStats | None = None
    phase2_makespan = 0.0
    phase2_report = builder.phase2_report
    if phase2_report is not None:
        phase2_transport_stats = phase2_report.transport
        phase2_makespan = phase2_report.makespan_seconds

    gbdt_fit_seconds = forest_predict_seconds = commcnn_tensor_seconds = 0.0
    commcnn_fit_seconds = commcnn_predict_seconds = 0.0
    if include_model_kernels and communities:
        import numpy as np

        from repro.core.commcnn import build_commcnn_classifier
        from repro.core.config import CommCNNConfig
        from repro.ml.gbdt import GradientBoostedClassifier

        design = builder.statistic_vectors(communities)
        # Deterministic synthetic labels: this times the kernels, it does
        # not evaluate accuracy, so any >=2-class assignment works.
        labels = [index % 3 for index in range(len(communities))]
        start = clock.perf_counter()
        model = GradientBoostedClassifier(
            num_rounds=gbdt_rounds, num_classes=3, backend=options.ml_backend
        ).fit(design, labels)
        gbdt_fit_seconds = clock.perf_counter() - start

        start = clock.perf_counter()
        model.predict_proba(design)
        model.leaf_values(design)
        forest_predict_seconds = clock.perf_counter() - start

        start = clock.perf_counter()
        tensor = builder.matrices_as_tensor(communities)
        commcnn_tensor_seconds = clock.perf_counter() - start

        cnn_config = CommCNNConfig(epochs=cnn_epochs, nn_backend=options.nn_backend)
        cnn = build_commcnn_classifier(
            k=k, num_columns=builder.num_columns, num_classes=3, config=cnn_config
        )
        cnn_labels = np.asarray(labels, dtype=np.int64)
        start = clock.perf_counter()
        cnn.fit(tensor, cnn_labels)
        commcnn_fit_seconds = clock.perf_counter() - start

        start = clock.perf_counter()
        cnn.predict_proba(tensor)
        commcnn_predict_seconds = clock.perf_counter() - start

    # Phase III per-edge work: Equation 4 assembly is two dictionary lookups
    # plus a concatenation; time it over the edges incident to the processed egos.
    processed = set(egos)
    edges = [
        edge
        for edge in dataset.graph.edges()
        if edge[0] in processed or edge[1] in processed
    ]
    start = clock.perf_counter()
    for u, v in edges:
        division.community_containing(v, u)
        division.community_containing(u, v)
    phase3_seconds = clock.perf_counter() - start

    builder.close()  # release sharded-path resources (pool + shm lease)
    return MeasuredPhaseTimes(
        num_nodes=len(egos),
        num_edges=len(edges),
        num_communities=len(communities),
        phase1_seconds=phase1_seconds,
        phase2_seconds=phase2_seconds,
        phase3_seconds=phase3_seconds,
        gbdt_fit_seconds=gbdt_fit_seconds,
        forest_predict_seconds=forest_predict_seconds,
        commcnn_tensor_seconds=commcnn_tensor_seconds,
        commcnn_fit_seconds=commcnn_fit_seconds,
        commcnn_predict_seconds=commcnn_predict_seconds,
        transport_stats=transport_stats,
        phase2_transport_stats=phase2_transport_stats,
        phase2_makespan_seconds=phase2_makespan,
    )


def measure_transport(
    dataset: SocialNetworkDataset,
    clock: Clock | None = None,
) -> TransportCalibration:
    """Measure attach-vs-pickle worker startup costs on a real graph.

    Times what each transport makes a worker pay to receive the graph:
    deserializing a full pickled copy (pickle transport) versus unpickling an
    O(1) handle and attaching the published shared-memory segments (shm
    transport).  The one-time publish cost is measured separately.  Returns a
    :class:`~repro.runtime.cost_model.TransportCalibration` ready to hand to
    :class:`~repro.runtime.cost_model.CostModel`.
    """
    import pickle

    from repro.graph.csr import CSRGraph
    from repro.graph.shm import SharedCSRGraph

    clock = clock or SystemClock()
    graph = dataset.graph
    csr = graph if isinstance(graph, CSRGraph) else CSRGraph.from_graph(graph)

    payload = pickle.dumps(graph, pickle.HIGHEST_PROTOCOL)
    start = clock.perf_counter()
    pickle.loads(payload)
    pickle_seconds = clock.perf_counter() - start

    start = clock.perf_counter()
    lease = SharedCSRGraph.publish(csr)
    publish_seconds = clock.perf_counter() - start
    try:
        handle_payload = pickle.dumps(lease.handle, pickle.HIGHEST_PROTOCOL)
        start = clock.perf_counter()
        attached = pickle.loads(handle_payload).attach()
        attach_seconds = clock.perf_counter() - start
        attached.close()
    finally:
        lease.close()

    return TransportCalibration.from_measurements(
        pickle_seconds=pickle_seconds,
        attach_seconds=attach_seconds,
        publish_seconds=publish_seconds,
        graph_bytes=len(payload),
        handle_bytes=len(handle_payload),
    )


def measure_phase2_scaling(
    dataset: SocialNetworkDataset,
    num_workers: int = 4,
    detector: str = "label_propagation",
    max_egos: int | None = 200,
    clock: Clock | None = None,
) -> Phase2ScalingCalibration:
    """Measure serial-vs-sharded Phase II aggregation scaling on a real run.

    Times the serial batched statistic-vector kernel over the full community
    batch, then the sharded path with ``num_workers`` shards executed
    in-process — like :func:`measure_worker_scaling`, the parallel side is
    projected from per-shard compute seconds (the runner's LPT makespan
    model) so the calibration is deterministic and independent of the host's
    actual core count.  Returns a
    :class:`~repro.runtime.cost_model.Phase2ScalingCalibration` ready to hand
    to :class:`~repro.runtime.cost_model.CostModel` (crossover community
    count, projected speedups).
    """
    from repro.graph.phase2 import Phase2Kernel
    from repro.runtime.phase2_exec import Phase2ShardedRunner

    clock = clock or SystemClock()
    egos = list(dataset.graph.nodes())
    if max_egos is not None:
        egos = egos[:max_egos]
    division = divide(dataset.graph, egos=egos, detector=detector)
    communities = list(division.all_communities())
    if not communities:
        raise ValueError("dataset produced no communities to calibrate on")
    pairs = [
        (community.members, community.members_by_tightness())
        for community in communities
    ]

    kernel = Phase2Kernel.compile(dataset.features, dataset.interactions)
    kernel.community_statistics(pairs[:1])  # warm any lazy allocations
    start = clock.perf_counter()
    kernel.community_statistics(pairs)
    serial_seconds = clock.perf_counter() - start

    with Phase2ShardedRunner(
        kernel, num_workers=1, num_shards=num_workers
    ) as runner:
        runner.statistics(pairs)
        report = runner.last_report
    assert report is not None
    # Floor the measured spans at 1ns: validate() demands positive costs and
    # very fast hosts (or an injected FakeClock) can report a zero span.
    return Phase2ScalingCalibration.from_measurements(
        serial_seconds=max(serial_seconds, 1e-9),
        sharded_compute_seconds=max(report.total_seconds, 1e-9),
        sharded_overhead_seconds=max(report.parent_seconds, 0.0),
        num_communities=len(communities),
        num_workers=num_workers,
    )


@dataclass
class ScalabilityStudy:
    """Generates the Table VI / Figure 12 numbers from a cost model."""

    calibration: CostCalibration = field(default_factory=CostCalibration)

    def table6(self) -> RuntimeEstimate:
        """Table VI: full WeChat network on 100 servers."""
        model = CostModel(self.calibration)
        return model.estimate(WorkloadSpec(), ClusterSpec(num_servers=100))

    def figure12a(
        self, node_counts_millions: list[int] = (100, 200, 500, 1000)
    ) -> list[tuple[int, RuntimeEstimate]]:
        """Figure 12(a): run time vs number of input nodes (50 servers)."""
        model = CostModel(self.calibration)
        return model.sweep_nodes(
            [count * 1_000_000 for count in node_counts_millions],
            ClusterSpec(num_servers=50),
        )

    def figure12b(
        self, server_counts: list[int] = (100, 150, 200)
    ) -> list[tuple[int, RuntimeEstimate]]:
        """Figure 12(b): run time vs number of servers (full network)."""
        model = CostModel(self.calibration)
        return model.sweep_servers(list(server_counts))


@dataclass
class ChaosReport:
    """Outcome of a seeded fault-injection (chaos) run of the shard executor.

    ``identical_to_clean`` is the headline resilience invariant: the merged
    division of the faulted run must be bit-identical to a clean run over
    the same egos whenever every shard eventually succeeded.
    """

    num_shards: int
    completed_shards: int
    failed_shards: list[int]
    injected_faults: int
    total_retries: int
    total_timeouts: int
    pool_rebuilds: int
    degraded_to_serial: bool
    identical_to_clean: bool
    transport: str = "inline"
    """Resolved graph transport of the faulted run."""
    swept_segments: int = 0
    """Shared-memory segments unlinked by rebuild/finalizer sweeps."""
    phase2_identical: bool | None = None
    """Phase II leg: all three sharded aggregation entry points bit-identical
    to the serial kernel under the fault schedule.  ``None`` when the chaos
    run did not exercise Phase II (``phase2_workers == 0``)."""
    phase2_injected_faults: int = 0
    phase2_retries: int = 0
    phase2_timeouts: int = 0
    phase2_pool_rebuilds: int = 0
    phase2_degraded_to_serial: bool = False
    phase2_transport: str = "inline"
    """Resolved kernel transport of the faulted Phase II runs."""

    def to_text(self) -> str:
        lines = [
            f"shards           : {self.completed_shards}/{self.num_shards} completed",
            f"injected faults  : {self.injected_faults}",
            f"retries          : {self.total_retries}",
            f"timeouts         : {self.total_timeouts}",
            f"pool rebuilds    : {self.pool_rebuilds}"
            + (" (degraded to serial)" if self.degraded_to_serial else ""),
            f"transport        : {self.transport}"
            + (
                f" ({self.swept_segments} segments swept)"
                if self.swept_segments
                else ""
            ),
            f"failed shards    : {self.failed_shards or 'none'}",
            f"identical to clean run: {self.identical_to_clean}",
        ]
        if self.phase2_identical is not None:
            lines += [
                f"phase2 faults    : {self.phase2_injected_faults} injected, "
                f"{self.phase2_retries} retries, {self.phase2_timeouts} timeouts",
                f"phase2 rebuilds  : {self.phase2_pool_rebuilds}"
                + (
                    " (degraded to serial)"
                    if self.phase2_degraded_to_serial
                    else ""
                ),
                f"phase2 transport : {self.phase2_transport}",
                f"phase2 identical to serial kernel: {self.phase2_identical}",
            ]
        return "\n".join(lines)


def run_chaos(
    dataset: SocialNetworkDataset,
    num_shards: int = 4,
    num_workers: int = 1,
    fault_rate: float = 0.25,
    seed: int = 0,
    max_egos: int | None = 80,
    detector: str = "label_propagation",
    on_shard_failure: str = "skip",
    shard_timeout: float = 30.0,
    kinds: tuple[str, ...] = ("transient", "hang", "kill"),
    transport: str = "auto",
    phase2_workers: int = 0,
) -> ChaosReport:
    """Chaos knob: run the shard executor under a seeded fault schedule.

    Builds a deterministic :class:`~repro.runtime.faultinject.FaultPlan`
    (faults only on non-final attempts, so every shard eventually succeeds),
    runs the supervised executor with an injected
    :class:`~repro.runtime.resilience.FakeClock` (no real backoff sleeps),
    and compares the merged division against a clean run of the same egos.

    With ``phase2_workers >= 1`` the run grows a second leg: all three
    sharded Phase II aggregation entry points
    (:class:`~repro.runtime.phase2_exec.Phase2ShardedRunner`) execute under
    their own seeded fault schedule over the clean division's communities,
    and each merged array is compared bit-for-bit against the serial kernel
    (``phase2_identical``).
    """
    from repro.core.config import ResilienceConfig
    from repro.runtime.faultinject import FaultPlan
    from repro.runtime.resilience import FakeClock

    egos = list(dataset.graph.nodes())
    if max_egos is not None:
        egos = egos[:max_egos]

    resilience = ResilienceConfig(
        max_attempts=3,
        on_shard_failure=on_shard_failure,
        shard_timeout=shard_timeout,
        seed=seed,
        transport=transport,
    )
    plan = FaultPlan.random(
        list(range(num_shards)),
        seed=seed,
        fault_rate=fault_rate,
        max_attempts=resilience.max_attempts,
        kinds=kinds,
    )
    with ShardedDivisionExecutor(
        num_shards=num_shards,
        num_workers=num_workers,
        detector=detector,
        resilience=resilience,
        fault_plan=plan,
        clock=FakeClock(),
    ) as executor:
        faulted = executor.run(dataset.graph, egos=egos)

    clean = ShardedDivisionExecutor(
        num_shards=num_shards, num_workers=1, detector=detector
    ).run(dataset.graph, egos=egos)

    phase2_identical: bool | None = None
    phase2_faults = phase2_retries = phase2_timeouts = phase2_rebuilds = 0
    phase2_degraded = False
    phase2_transport = "inline"
    if phase2_workers > 0:
        import numpy as np

        from repro.graph.phase2 import Phase2Kernel
        from repro.runtime.phase2_exec import (
            Phase2ExecutionReport,
            Phase2ShardedRunner,
        )

        communities = list(clean.division.all_communities())
        k = 20
        tensor_pairs = [
            (community.members, community.members_by_tightness()[:k])
            for community in communities
        ]
        stat_pairs = [
            (community.members, community.members_by_tightness())
            for community in communities
        ]
        kernel = Phase2Kernel.compile(dataset.features, dataset.interactions)
        phase2_shards = max(2, phase2_workers)
        phase2_plan = FaultPlan.random(
            list(range(phase2_shards)),
            seed=seed + 1,
            fault_rate=fault_rate,
            max_attempts=resilience.max_attempts,
            kinds=kinds,
        )
        reports: list[Phase2ExecutionReport | None] = []
        with Phase2ShardedRunner(
            kernel,
            num_workers=phase2_workers,
            num_shards=phase2_shards,
            resilience=resilience,
            fault_plan=phase2_plan,
            clock=FakeClock(),
        ) as runner:
            rows, offsets = runner.rows_batch(tensor_pairs)
            reports.append(runner.last_report)
            stats = runner.statistics(stat_pairs)
            reports.append(runner.last_report)
            tensor = runner.tensor(tensor_pairs, k=k)
            reports.append(runner.last_report)
        serial_rows, serial_offsets = kernel.community_rows_batch(tensor_pairs)
        phase2_identical = (
            np.array_equal(rows, serial_rows)
            and np.array_equal(offsets, serial_offsets)
            and np.array_equal(stats, kernel.community_statistics(stat_pairs))
            and np.array_equal(tensor, kernel.community_tensor(tensor_pairs, k))
        )
        phase2_faults = len(phase2_plan)
        phase2_retries = sum(r.total_retries for r in reports if r is not None)
        phase2_timeouts = sum(r.total_timeouts for r in reports if r is not None)
        phase2_rebuilds = sum(r.pool_rebuilds for r in reports if r is not None)
        phase2_degraded = any(r.degraded_to_serial for r in reports if r is not None)
        phase2_transport = next(
            (r.transport.transport for r in reversed(reports) if r is not None),
            "inline",
        )

    return ChaosReport(
        num_shards=num_shards,
        completed_shards=len(faulted.shard_reports),
        failed_shards=[item.shard_id for item in faulted.failed_shards],
        injected_faults=len(plan),
        total_retries=faulted.total_retries,
        total_timeouts=faulted.total_timeouts,
        pool_rebuilds=faulted.pool_rebuilds,
        degraded_to_serial=faulted.degraded_to_serial,
        identical_to_clean=(
            faulted.division.communities_by_ego == clean.division.communities_by_ego
        ),
        transport=faulted.transport.transport,
        swept_segments=faulted.transport.swept_segments,
        phase2_identical=phase2_identical,
        phase2_injected_faults=phase2_faults,
        phase2_retries=phase2_retries,
        phase2_timeouts=phase2_timeouts,
        phase2_pool_rebuilds=phase2_rebuilds,
        phase2_degraded_to_serial=phase2_degraded,
        phase2_transport=phase2_transport,
    )


def measure_worker_scaling(
    dataset: SocialNetworkDataset,
    worker_counts: list[int] = (1, 2, 4),
    max_egos: int = 200,
    detector: str = "label_propagation",
) -> list[tuple[int, float]]:
    """Measured Phase I makespan vs simulated worker count (local analogue of Fig. 12b).

    Uses the shard makespan (slowest shard) under serial execution so the
    result is deterministic and does not depend on the host's actual core
    count.
    """
    egos = list(dataset.graph.nodes())[:max_egos]
    results: list[tuple[int, float]] = []
    for workers in worker_counts:
        executor = ShardedDivisionExecutor(
            num_shards=workers, num_workers=1, detector=detector
        )
        report = executor.run(dataset.graph, egos=egos)
        results.append((workers, report.makespan_seconds))
    return results
