"""Distributed-processing substrate: sharding, supervised executors for
Phases I and II, resilience/fault-injection layer and the WeChat-scale cost
model."""

from repro.runtime.cost_model import (
    ClusterSpec,
    CostCalibration,
    CostModel,
    Phase2ScalingCalibration,
    RuntimeEstimate,
    TransportCalibration,
    WorkloadSpec,
)
from repro.runtime.executor import (
    ExecutionReport,
    ShardedDivisionExecutor,
    ShardReport,
    TransportStats,
)
from repro.runtime.faultinject import (
    Fault,
    FaultPlan,
    InjectedFaultError,
    PermanentInjectedError,
    TransientInjectedError,
)
from repro.runtime.phase2_exec import (
    Phase2ExecutionReport,
    Phase2Shard,
    Phase2ShardedRunner,
    Phase2ShardReport,
    shard_communities,
)
from repro.runtime.resilience import (
    Clock,
    FakeClock,
    RetryPolicy,
    ShardCheckpointStore,
    ShardFailure,
    SystemClock,
    shard_fingerprint,
)
from repro.runtime.scalability import (
    ChaosReport,
    MeasuredPhaseTimes,
    ScalabilityStudy,
    measure_phase2_scaling,
    measure_phases,
    measure_transport,
    measure_worker_scaling,
    run_chaos,
)
from repro.runtime.sharding import Shard, shard_by_degree, shard_nodes, validate_shards

__all__ = [
    "Shard",
    "shard_nodes",
    "shard_by_degree",
    "validate_shards",
    "ShardedDivisionExecutor",
    "ExecutionReport",
    "ShardReport",
    "TransportStats",
    "Phase2ShardedRunner",
    "Phase2ExecutionReport",
    "Phase2ShardReport",
    "Phase2Shard",
    "shard_communities",
    "ShardFailure",
    "RetryPolicy",
    "Clock",
    "SystemClock",
    "FakeClock",
    "ShardCheckpointStore",
    "shard_fingerprint",
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "TransientInjectedError",
    "PermanentInjectedError",
    "CostModel",
    "CostCalibration",
    "TransportCalibration",
    "Phase2ScalingCalibration",
    "ClusterSpec",
    "WorkloadSpec",
    "RuntimeEstimate",
    "ScalabilityStudy",
    "MeasuredPhaseTimes",
    "measure_phases",
    "measure_phase2_scaling",
    "measure_transport",
    "measure_worker_scaling",
    "ChaosReport",
    "run_chaos",
]
