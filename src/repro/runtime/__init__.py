"""Distributed-processing substrate: sharding, executor and WeChat-scale cost model."""

from repro.runtime.cost_model import (
    ClusterSpec,
    CostCalibration,
    CostModel,
    RuntimeEstimate,
    WorkloadSpec,
)
from repro.runtime.executor import ExecutionReport, ShardedDivisionExecutor, ShardReport
from repro.runtime.scalability import (
    MeasuredPhaseTimes,
    ScalabilityStudy,
    measure_phases,
    measure_worker_scaling,
)
from repro.runtime.sharding import Shard, shard_by_degree, shard_nodes

__all__ = [
    "Shard",
    "shard_nodes",
    "shard_by_degree",
    "ShardedDivisionExecutor",
    "ExecutionReport",
    "ShardReport",
    "CostModel",
    "CostCalibration",
    "ClusterSpec",
    "WorkloadSpec",
    "RuntimeEstimate",
    "ScalabilityStudy",
    "MeasuredPhaseTimes",
    "measure_phases",
    "measure_worker_scaling",
]
