"""Shard executor: runs Phase I over shards, serially or with worker processes.

The production system streams nodes through 50–200 servers; this executor
reproduces the decomposition (shard → per-ego work → merge) at laptop scale.
The default mode is deterministic serial execution; ``num_workers > 1`` uses
a process pool, which demonstrates the parallel speed-up the cost model and
Figure 12(b) reason about.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.division import DivisionResult, divide, resolve_backend
from repro.graph.graph import Graph
from repro.runtime.sharding import Shard, shard_nodes
from repro.types import Node

_WORKER_GRAPH = None


def _prepare_graph(graph: Graph, backend: str):
    """Resolve the backend once per process: CSR snapshots are per-graph,
    not per-shard, so the O(V+E) conversion must not repeat for every task."""
    if resolve_backend(backend) == "csr":
        from repro.graph.csr import CSRGraph

        if not isinstance(graph, CSRGraph):
            return CSRGraph.from_graph(graph)
    return graph


def _init_worker(graph: Graph, backend: str) -> None:
    """Process-pool initializer: receive the graph once per worker process.

    The graph is pickled exactly once per worker instead of once per shard
    task, which matters because the graph is by far the largest object in a
    task and shards typically outnumber workers severalfold.
    """
    global _WORKER_GRAPH
    _WORKER_GRAPH = _prepare_graph(graph, backend)


def _process_shard_in_worker(
    shard: Shard, detector: str, backend: str
) -> tuple[int, DivisionResult, float]:
    assert _WORKER_GRAPH is not None, "worker initializer did not run"
    return _process_shard(_WORKER_GRAPH, shard, detector, backend)


@dataclass
class ShardReport:
    """Timing and size information for one processed shard."""

    shard_id: int
    num_egos: int
    num_communities: int
    seconds: float


@dataclass
class ExecutionReport:
    """Result of a sharded Phase I execution."""

    division: DivisionResult
    shard_reports: list[ShardReport] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(report.seconds for report in self.shard_reports)

    @property
    def makespan_seconds(self) -> float:
        """Parallel wall-clock estimate: the slowest shard dominates."""
        if not self.shard_reports:
            return 0.0
        return max(report.seconds for report in self.shard_reports)

    def mean_seconds_per_ego(self) -> float:
        egos = sum(report.num_egos for report in self.shard_reports)
        return self.total_seconds / egos if egos else 0.0


def _process_shard(
    graph: Graph, shard: Shard, detector: str, backend: str = "auto"
) -> tuple[int, DivisionResult, float]:
    start = time.perf_counter()
    division = divide(graph, egos=shard.egos, detector=detector, backend=backend)
    return shard.shard_id, division, time.perf_counter() - start


class ShardedDivisionExecutor:
    """Run LoCEC Phase I shard by shard.

    Parameters
    ----------
    num_shards:
        Number of shards the node set is split into.
    num_workers:
        1 for serial (deterministic) execution; >1 uses a process pool.
    detector:
        Community detector to run inside each ego network.
    strategy:
        Sharding strategy (see :func:`repro.runtime.sharding.shard_nodes`).
    backend:
        Graph backend for Phase I (``"auto"``/``"dict"``/``"csr"``, see
        :func:`repro.core.division.divide`).
    """

    def __init__(
        self,
        num_shards: int = 4,
        num_workers: int = 1,
        detector: str = "girvan_newman",
        strategy: str = "round_robin",
        backend: str = "auto",
    ) -> None:
        self.num_shards = num_shards
        self.num_workers = num_workers
        self.detector = detector
        self.strategy = strategy
        self.backend = backend

    def run(self, graph: Graph, egos: list[Node] | None = None) -> ExecutionReport:
        """Execute Phase I over all (or the given) egos and merge shard results."""
        nodes = list(graph.nodes()) if egos is None else list(egos)
        shards = shard_nodes(nodes, self.num_shards, strategy=self.strategy)
        report = ExecutionReport(division=DivisionResult())

        if self.num_workers <= 1:
            prepared = _prepare_graph(graph, self.backend)
            results = [
                _process_shard(prepared, shard, self.detector, self.backend)
                for shard in shards
            ]
        else:
            # The graph travels to each worker once via the pool initializer;
            # shard tasks then carry only the (small) shard and settings.
            with ProcessPoolExecutor(
                max_workers=self.num_workers,
                initializer=_init_worker,
                initargs=(graph, self.backend),
            ) as pool:
                futures = [
                    pool.submit(
                        _process_shard_in_worker, shard, self.detector, self.backend
                    )
                    for shard in shards
                ]
                results = [future.result() for future in futures]

        for shard_id, division, seconds in sorted(results, key=lambda item: item[0]):
            report.division = report.division.merge(division)
            report.shard_reports.append(
                ShardReport(
                    shard_id=shard_id,
                    num_egos=division.num_egos,
                    num_communities=division.num_communities,
                    seconds=seconds,
                )
            )
        return report
