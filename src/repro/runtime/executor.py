"""Supervised shard executor: fault-tolerant Phase I over shards.

The production system streams nodes through 50–200 servers where worker
crashes, stragglers and partial failures are routine; this executor
reproduces the decomposition (shard → per-ego work → merge) at laptop scale
*with the supervision that makes it survivable*:

* per-shard **retries** under a :class:`~repro.runtime.resilience.RetryPolicy`
  (exponential backoff, deterministic jitter, retryable-error
  classification),
* per-shard **timeouts** (``future.result(timeout=...)`` under a process
  pool; simulated on the injected clock under serial fault injection),
* a broken process pool is **rebuilt** up to ``max_pool_rebuilds`` times and
  then the executor **degrades to in-process serial execution** for the
  remaining shards,
* ``on_shard_failure`` selects the failure semantics once a shard's attempt
  budget is spent — abort (``"raise"``), keep going with a first-class
  partial result (``"skip"``), or retry once in-process
  (``"serial_fallback"``),
* completed shard results optionally **checkpoint** to disk, and
  ``run(resume_from=...)`` skips fingerprint-matching shards so a killed run
  resumes instead of recomputing.

The invariant throughout: any fault schedule that eventually succeeds yields
a merged :class:`~repro.core.division.DivisionResult` bit-identical to the
clean serial run — supervision changes *when* work happens, never *what* it
computes.
"""

from __future__ import annotations

import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only import (lazy at runtime)
    from repro.graph.csr import CSRGraph
    from repro.graph.shm import ShmHandle, ShmLease

from repro.core.config import ResilienceConfig
from repro.core.division import DivisionResult, divide, resolve_backend
from repro.exceptions import (
    ExecutorError,
    RetryExhaustedError,
    ShardFailedError,
    ShardTimeoutError,
    WorkerCrashError,
)
from repro.graph.graph import Graph
from repro.runtime.faultinject import FaultPlan
from repro.runtime.resilience import (
    Clock,
    RetryPolicy,
    RetryState,
    ShardCheckpointStore,
    ShardFailure,
    SystemClock,
)
from repro.runtime.sharding import Shard, shard_nodes, validate_shards
from repro.types import Node

_WORKER_GRAPH: "Graph | CSRGraph | None" = None
_WORKER_FAULT_PLAN: FaultPlan | None = None
_WORKER_TIMEOUT: float | None = None


def _reset_worker_state() -> None:
    """Explicit worker teardown: drop the cached graph and fault plan.

    The worker globals used to persist for the life of the process — a stale
    graph (and, for shm transport, its segment mappings) survived across
    runs and pool generations.  ``_init_worker`` calls this before installing
    new state, and :meth:`ShardedDivisionExecutor.close` calls it in the
    parent so in-process tests can assert nothing lingers.
    """
    global _WORKER_GRAPH, _WORKER_FAULT_PLAN, _WORKER_TIMEOUT
    graph, _WORKER_GRAPH = _WORKER_GRAPH, None
    _WORKER_FAULT_PLAN = None
    _WORKER_TIMEOUT = None
    close = getattr(graph, "close", None)
    if callable(close):
        close()


def _prepare_graph(graph: Graph, backend: str) -> "Graph | CSRGraph":
    """Resolve the backend once per process: CSR snapshots are per-graph,
    not per-shard, so the O(V+E) conversion must not repeat for every task."""
    if resolve_backend(backend) == "csr":
        from repro.graph.csr import CSRGraph

        if not isinstance(graph, CSRGraph):
            return CSRGraph.from_graph(graph)
    return graph


def _init_worker(
    payload: "Graph | CSRGraph | ShmHandle",
    backend: str,
    fault_plan: FaultPlan | None = None,
    shard_timeout: float | None = None,
) -> None:
    """Process-pool initializer: receive the graph once per worker process.

    Under ``transport="pickle"`` the payload is the graph itself — pickled
    once per worker instead of once per shard task.  Under ``"shm"`` it is a
    :class:`~repro.graph.shm.ShmHandle` of a few hundred bytes and the
    worker attaches the published segments zero-copy, so startup cost stops
    scaling with graph size.  The fault plan (tests / chaos runs only)
    travels alongside either way.
    """
    global _WORKER_GRAPH, _WORKER_FAULT_PLAN, _WORKER_TIMEOUT
    _reset_worker_state()
    attach = getattr(payload, "attach", None)
    if callable(attach):  # ShmHandle
        _WORKER_GRAPH = attach()
    else:
        _WORKER_GRAPH = _prepare_graph(payload, backend)  # type: ignore[arg-type]
    _WORKER_FAULT_PLAN = fault_plan
    _WORKER_TIMEOUT = shard_timeout


def _peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kilobytes everywhere else.
    scale = 1 if sys.platform == "darwin" else 1024
    return int(peak) * scale


def _process_shard_in_worker(
    shard: Shard, detector: str, backend: str, attempt: int = 0
) -> tuple[int, DivisionResult, float, int]:
    assert _WORKER_GRAPH is not None, "worker initializer did not run"
    if _WORKER_FAULT_PLAN is not None:
        _WORKER_FAULT_PLAN.apply(
            shard.shard_id, attempt, in_worker=True, timeout=_WORKER_TIMEOUT
        )
    shard_id, division, seconds = _process_shard(
        _WORKER_GRAPH, shard, detector, backend
    )
    return shard_id, division, seconds, _peak_rss_bytes()


@dataclass
class ShardReport:
    """Timing, size and supervision information for one processed shard."""

    shard_id: int
    num_egos: int
    num_communities: int
    seconds: float
    attempts: int = 1
    """Total attempts made (1 = succeeded first try)."""
    timeouts: int = 0
    """How many of the failed attempts were per-shard timeouts."""
    from_checkpoint: bool = False
    """True when the result was loaded from a checkpoint, not recomputed."""

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class TransportStats:
    """How the graph reached the workers, and what that shipping cost.

    ``transport`` is the *resolved* mode (``"auto"`` never appears here):
    ``"inline"`` for serial in-process runs where nothing is shipped,
    ``"pickle"`` when each worker deserializes its own copy of the graph,
    ``"shm"`` when workers attach a published shared-memory CSR snapshot.
    """

    transport: str = "inline"
    payload_bytes: int = 0
    """Pickled size of the per-worker payload (the graph, or an ShmHandle)."""
    segment_bytes: int = 0
    """Total bytes of published shared-memory segments (shm transport only)."""
    num_workers: int = 0
    peak_worker_rss_bytes: int = 0
    """Largest per-process peak RSS sampled at shard completion (bytes)."""
    swept_segments: int = 0
    """Shared-memory segments unlinked by pool-rebuild / finalizer sweeps."""

    @property
    def shipped_bytes(self) -> int:
        """Bytes serialized across the pool at startup (payload × workers)."""
        return self.payload_bytes * max(self.num_workers, 1)


@dataclass
class ExecutionReport:
    """Result of a sharded Phase I execution.

    Partial results are first-class: under ``on_shard_failure="skip"`` the
    merged ``division`` covers every shard that succeeded and
    ``failed_shards`` names the ones that did not (with attempt counts and
    the final error), so callers can re-drive exactly the missing work.
    """

    division: DivisionResult
    shard_reports: list[ShardReport] = field(default_factory=list)
    failed_shards: list[ShardFailure] = field(default_factory=list)
    pool_rebuilds: int = 0
    """Times a broken process pool was torn down and rebuilt."""
    degraded_to_serial: bool = False
    """True when repeated pool breakage forced in-process serial execution."""
    transport: TransportStats = field(default_factory=TransportStats)
    """Graph-shipping accounting (resolved transport, bytes, peak RSS)."""

    @property
    def total_seconds(self) -> float:
        return sum(report.seconds for report in self.shard_reports)

    @property
    def makespan_seconds(self) -> float:
        """Parallel wall-clock estimate: the slowest shard dominates."""
        if not self.shard_reports:
            return 0.0
        return max(report.seconds for report in self.shard_reports)

    @property
    def total_retries(self) -> int:
        retried = sum(report.retries for report in self.shard_reports)
        return retried + sum(max(0, item.attempts - 1) for item in self.failed_shards)

    @property
    def total_timeouts(self) -> int:
        return sum(report.timeouts for report in self.shard_reports)

    def mean_seconds_per_ego(self) -> float:
        egos = sum(report.num_egos for report in self.shard_reports)
        return self.total_seconds / egos if egos else 0.0


def _process_shard(
    graph: Graph, shard: Shard, detector: str, backend: str = "auto"
) -> tuple[int, DivisionResult, float]:
    # Worker-side duration measurement: the injectable Clock lives in the
    # supervisor process and deliberately does not travel to workers (a
    # FakeClock would report zero-length shards).  Measurement-only — the
    # division result itself is time-independent.
    start = time.perf_counter()  # repro-lint: disable=DET001
    division = divide(graph, egos=shard.egos, detector=detector, backend=backend)
    return shard.shard_id, division, time.perf_counter() - start  # repro-lint: disable=DET001


@dataclass
class _ShardOutcome:
    """Internal: one shard's final state after supervision."""

    shard: Shard
    division: DivisionResult
    seconds: float
    attempts: int
    timeouts: int
    from_checkpoint: bool = False


class ShardedDivisionExecutor:
    """Run LoCEC Phase I shard by shard under supervision.

    Parameters
    ----------
    num_shards:
        Number of shards the node set is split into.
    num_workers:
        1 for serial (deterministic) execution; >1 uses a process pool.
    detector:
        Community detector to run inside each ego network.
    strategy:
        Sharding strategy (see :func:`repro.runtime.sharding.shard_nodes`).
    backend:
        Graph backend for Phase I (``"auto"``/``"dict"``/``"csr"``, see
        :func:`repro.core.division.divide`).
    resilience:
        Fault-tolerance knobs (:class:`repro.core.config.ResilienceConfig`):
        retry budget and backoff, per-shard timeout, ``on_shard_failure``
        mode, checkpoint directory, pool-rebuild budget.
    retry_policy:
        Optional explicit :class:`~repro.runtime.resilience.RetryPolicy`;
        derived from ``resilience`` when omitted.
    fault_plan:
        Optional :class:`~repro.runtime.faultinject.FaultPlan` injecting
        deterministic faults into shard attempts (tests / chaos runs).
    clock:
        Injectable time source for backoff sleeps and simulated hangs;
        defaults to the system clock.  Tests inject
        :class:`~repro.runtime.resilience.FakeClock` so no retry path ever
        wall-sleeps.
    """

    def __init__(
        self,
        num_shards: int = 4,
        num_workers: int = 1,
        detector: str = "girvan_newman",
        strategy: str = "round_robin",
        backend: str = "auto",
        resilience: ResilienceConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.num_shards = num_shards
        self.num_workers = num_workers
        self.detector = detector
        self.strategy = strategy
        self.backend = backend
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.resilience.validate()
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy.from_config(self.resilience)
        )
        self.retry_policy.validate()
        self.fault_plan = fault_plan
        self.clock = clock if clock is not None else SystemClock()
        # Parent-process graph, built lazily per run.
        self._prepared_graph: "Graph | CSRGraph | None" = None
        # Published shared-memory lease while a pool is live (shm transport).
        self._lease: "ShmLease | None" = None

    # ------------------------------------------------------------------ run
    def run(
        self,
        graph: Graph,
        egos: list[Node] | None = None,
        resume_from: str | None = None,
    ) -> ExecutionReport:
        """Execute Phase I over all (or the given) egos and merge shard results.

        ``resume_from`` names a checkpoint directory from a previous run:
        shards whose checkpoint fingerprint (id + ego list + detector)
        matches are loaded instead of recomputed, so a killed run resumes
        where it stopped.  When ``resilience.checkpoint_dir`` is set, every
        completed shard spills there as it finishes.
        """
        nodes = list(graph.nodes()) if egos is None else list(egos)
        shards = validate_shards(
            shard_nodes(nodes, self.num_shards, strategy=self.strategy)
        )
        report = ExecutionReport(division=DivisionResult())
        report.transport.num_workers = self.num_workers
        self._prepared_graph = None

        # Spilled graphs (``load_csr_npz``) carry a content-addressed identity;
        # folding it into checkpoint fingerprints keeps checkpoints from one
        # spill file from resuming a run over a different file at the same
        # path.  In-memory graphs have no identity and keep the old hashes.
        graph_id = getattr(graph, "spill_identity", None)
        write_store = (
            ShardCheckpointStore(self.resilience.checkpoint_dir, graph_id=graph_id)
            if self.resilience.checkpoint_dir
            else None
        )
        resume_store = (
            ShardCheckpointStore(resume_from, graph_id=graph_id) if resume_from else None
        )

        outcomes: dict[int, _ShardOutcome] = {}
        pending: list[RetryState] = []
        for shard in shards:
            checkpoint = resume_store.load(shard, self.detector) if resume_store else None
            if checkpoint is not None:
                outcomes[shard.shard_id] = _ShardOutcome(
                    shard=shard,
                    division=checkpoint.division,
                    seconds=checkpoint.seconds,
                    attempts=0,
                    timeouts=0,
                    from_checkpoint=True,
                )
            else:
                pending.append(RetryState(shard))

        if pending:
            try:
                if self.num_workers <= 1:
                    self._run_serial(graph, pending, report, outcomes, write_store)
                else:
                    self._run_pool(graph, pending, report, outcomes, write_store)
            finally:
                # Finalizer sweep: whatever happened above, no published
                # segment outlives the run that published it.
                self._sweep_lease(report)

        for shard_id in sorted(outcomes):
            outcome = outcomes[shard_id]
            report.division = report.division.merge(outcome.division)
            report.shard_reports.append(
                ShardReport(
                    shard_id=shard_id,
                    num_egos=outcome.division.num_egos,
                    num_communities=outcome.division.num_communities,
                    seconds=outcome.seconds,
                    attempts=max(outcome.attempts, 1) if not outcome.from_checkpoint
                    else outcome.attempts,
                    timeouts=outcome.timeouts,
                    from_checkpoint=outcome.from_checkpoint,
                )
            )
        report.failed_shards.sort(key=lambda item: item.shard_id)
        return report

    # ------------------------------------------------------------- internals
    def _parent_graph(self, graph: Graph) -> "Graph | CSRGraph":
        if self._prepared_graph is None:
            self._prepared_graph = _prepare_graph(graph, self.backend)
        return self._prepared_graph

    def _resolve_transport(self, prepared: "Graph | CSRGraph") -> str:
        """Resolve the configured transport against graph and platform.

        ``"auto"`` picks shm exactly when the prepared graph is a CSR
        snapshot and the platform has POSIX shared memory; ``"shm"`` raises
        when either precondition is missing instead of silently shipping a
        full pickle.
        """
        mode = self.resilience.transport
        if mode == "pickle":
            return "pickle"
        try:
            from repro.graph.csr import CSRGraph
            from repro.graph.shm import shm_supported
        except ImportError:
            supported = False
        else:
            supported = shm_supported() and isinstance(prepared, CSRGraph)
        if mode == "shm":
            if not supported:
                raise ExecutorError(
                    "transport='shm' requires the CSR graph backend and a "
                    "platform with POSIX shared memory"
                )
            return "shm"
        return "shm" if supported else "pickle"

    def _worker_payload(
        self, graph: Graph, report: ExecutionReport
    ) -> "Graph | CSRGraph | ShmHandle":
        """Build the per-worker initializer payload and record its cost.

        Under shm transport the CSR arrays are published once here and every
        worker receives only the O(1) handle; under pickle transport each
        worker deserializes its own full copy of the graph (the historical
        behaviour, and the fallback when ``"auto"`` cannot use shm or
        publishing fails).
        """
        prepared = self._parent_graph(graph)
        transport = self._resolve_transport(prepared)
        if transport == "shm":
            from repro.graph.shm import SharedCSRGraph, handle_nbytes

            try:
                lease = SharedCSRGraph.publish(prepared)  # type: ignore[arg-type]
            except Exception:  # noqa: BLE001 — fall back rather than fail startup
                if self.resilience.transport == "shm":
                    raise
            else:
                self._lease = lease
                report.transport.transport = "shm"
                report.transport.payload_bytes = handle_nbytes(lease.handle)
                report.transport.segment_bytes = lease.segment_nbytes
                return lease.handle
        report.transport.transport = "pickle"
        report.transport.payload_bytes = len(
            pickle.dumps(graph, pickle.HIGHEST_PROTOCOL)
        )
        report.transport.segment_bytes = 0
        return graph

    def _sweep_lease(self, report: ExecutionReport | None = None) -> None:
        """Unlink the published lease (idempotent; rebuilds and finalizers)."""
        lease, self._lease = self._lease, None
        if lease is None:
            return
        swept = 0 if lease.released else len(lease.segment_names)
        lease.close()
        if report is not None:
            report.transport.swept_segments += swept

    def _checkpoint(
        self,
        write_store: ShardCheckpointStore | None,
        shard: Shard,
        division: DivisionResult,
        seconds: float,
    ) -> None:
        if write_store is not None:
            write_store.save(shard, self.detector, division, seconds)

    def _run_serial(
        self,
        graph: Graph,
        states: list[RetryState],
        report: ExecutionReport,
        outcomes: dict[int, _ShardOutcome],
        write_store: ShardCheckpointStore | None,
        apply_faults: bool = True,
    ) -> None:
        """Supervised in-process execution.

        Faults (when a plan is injected) run in *simulation* mode: hangs
        advance the injected clock and surface as ``ShardTimeoutError``,
        kills surface as ``WorkerCrashError`` — the parent process is never
        actually stalled or killed.
        """
        prepared = self._parent_graph(graph)
        for state in states:
            shard = state.shard
            while True:
                try:
                    if apply_faults and self.fault_plan is not None:
                        self.fault_plan.apply(
                            shard.shard_id,
                            state.attempt,
                            in_worker=False,
                            clock=self.clock,
                            timeout=self.resilience.shard_timeout,
                        )
                    _, division, seconds = _process_shard(
                        prepared, shard, self.detector, self.backend
                    )
                except Exception as exc:  # noqa: BLE001 — supervision boundary
                    state.record_failure(exc)
                    if self._should_retry(state, exc):
                        self.clock.sleep(
                            self.retry_policy.delay(state.attempt, key=shard.shard_id)
                        )
                        continue
                    self._handle_exhausted(
                        graph, state, exc, report, outcomes, write_store
                    )
                    break
                outcomes[shard.shard_id] = _ShardOutcome(
                    shard=shard,
                    division=division,
                    seconds=seconds,
                    attempts=state.attempt + 1,
                    timeouts=state.timeouts,
                )
                report.transport.peak_worker_rss_bytes = max(
                    report.transport.peak_worker_rss_bytes, _peak_rss_bytes()
                )
                self._checkpoint(write_store, shard, division, seconds)
                break

    def _run_pool(
        self,
        graph: Graph,
        states: list[RetryState],
        report: ExecutionReport,
        outcomes: dict[int, _ShardOutcome],
        write_store: ShardCheckpointStore | None,
    ) -> None:
        """Supervised process-pool execution with pool-rebuild recovery."""
        timeout = self.resilience.shard_timeout
        pool = self._make_pool(graph, report)
        pending = list(states)
        try:
            while pending:
                futures: list[tuple[RetryState, object | None]] = []
                broken = False
                for state in pending:
                    if broken:
                        futures.append((state, None))
                        continue
                    try:
                        futures.append(
                            (
                                state,
                                pool.submit(
                                    _process_shard_in_worker,
                                    state.shard,
                                    self.detector,
                                    self.backend,
                                    state.attempt,
                                ),
                            )
                        )
                    except BrokenProcessPool:
                        broken = True
                        futures.append((state, None))

                retry_wave: list[RetryState] = []
                for state, future in futures:
                    shard = state.shard
                    if future is None:
                        exc: Exception = WorkerCrashError(
                            shard.shard_id, detail="process pool broken"
                        )
                    else:
                        try:
                            _, division, seconds, worker_rss = future.result(
                                timeout=timeout
                            )
                            outcomes[shard.shard_id] = _ShardOutcome(
                                shard=shard,
                                division=division,
                                seconds=seconds,
                                attempts=state.attempt + 1,
                                timeouts=state.timeouts,
                            )
                            report.transport.peak_worker_rss_bytes = max(
                                report.transport.peak_worker_rss_bytes, worker_rss
                            )
                            self._checkpoint(write_store, shard, division, seconds)
                            continue
                        except FutureTimeoutError:
                            exc = ShardTimeoutError(shard.shard_id, timeout)
                            future.cancel()
                        except BrokenProcessPool:
                            broken = True
                            exc = WorkerCrashError(
                                shard.shard_id, detail="worker process died"
                            )
                        except Exception as raw:  # noqa: BLE001 — supervision boundary
                            exc = raw
                    state.record_failure(exc)
                    if self._should_retry(state, exc):
                        retry_wave.append(state)
                    else:
                        self._handle_exhausted(
                            graph, state, exc, report, outcomes, write_store
                        )

                if broken:
                    pool.shutdown(wait=False, cancel_futures=True)
                    # Unlink-on-rebuild sweep: a crashed worker cannot close
                    # its attachments, so the parent unlinks the published
                    # segments here and (re)publishes for the next pool.
                    self._sweep_lease(report)
                    report.pool_rebuilds += 1
                    if report.pool_rebuilds > self.resilience.max_pool_rebuilds:
                        # The pool keeps dying: degrade to in-process serial
                        # execution for everything still unfinished.
                        report.degraded_to_serial = True
                        self._run_serial(
                            graph, retry_wave, report, outcomes, write_store
                        )
                        return
                    pool = self._make_pool(graph, report)

                if retry_wave:
                    # One backoff per wave: the longest of the per-shard
                    # delays (per-shard sleeps would serialize the pool).
                    self.clock.sleep(
                        max(
                            self.retry_policy.delay(s.attempt, key=s.shard.shard_id)
                            for s in retry_wave
                        )
                    )
                pending = retry_wave
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _make_pool(self, graph: Graph, report: ExecutionReport) -> ProcessPoolExecutor:
        payload = self._worker_payload(graph, report)
        return ProcessPoolExecutor(
            max_workers=self.num_workers,
            initializer=_init_worker,
            initargs=(
                payload,
                self.backend,
                self.fault_plan,
                self.resilience.shard_timeout,
            ),
        )

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release everything the executor holds between runs.

        Unlinks any published shared-memory lease, drops the cached
        parent-process graph and resets the module-level worker globals (the
        serial path and in-process tests run in this interpreter).  Idempotent
        and safe to call at any point; the context-manager form calls it on
        exit.
        """
        self._sweep_lease(None)
        self._prepared_graph = None
        _reset_worker_state()

    def __enter__(self) -> "ShardedDivisionExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _should_retry(self, state: RetryState, exc: Exception) -> bool:
        return (
            self.retry_policy.is_retryable(exc)
            and state.attempt < self.retry_policy.max_attempts
        )

    def _handle_exhausted(
        self,
        graph: Graph,
        state: RetryState,
        exc: Exception,
        report: ExecutionReport,
        outcomes: dict[int, _ShardOutcome],
        write_store: ShardCheckpointStore | None,
    ) -> None:
        """Apply ``on_shard_failure`` once a shard's attempt budget is spent."""
        shard = state.shard
        mode = self.resilience.on_shard_failure
        if mode == "serial_fallback":
            # Last resort: run the shard in-process, bypassing the pool and
            # the fault-injection layer (both model infrastructure faults,
            # and the in-process path has neither workers nor injectors).
            try:
                _, division, seconds = _process_shard(
                    self._parent_graph(graph), shard, self.detector, self.backend
                )
            except Exception as fallback_exc:  # noqa: BLE001 — supervision boundary
                raise ShardFailedError(
                    shard.shard_id, state.attempt + 1, fallback_exc
                ) from fallback_exc
            outcomes[shard.shard_id] = _ShardOutcome(
                shard=shard,
                division=division,
                seconds=seconds,
                attempts=state.attempt + 1,
                timeouts=state.timeouts,
            )
            self._checkpoint(write_store, shard, division, seconds)
            return
        if mode == "skip":
            report.failed_shards.append(
                ShardFailure.from_error(shard.shard_id, state.attempt, exc)
            )
            return
        if self.retry_policy.is_retryable(exc):
            raise RetryExhaustedError(shard.shard_id, state.attempt, exc) from exc
        raise ShardFailedError(shard.shard_id, state.attempt, exc) from exc
