"""Calibrated cost model projecting LoCEC run time to WeChat scale.

The paper's scalability results (Table VI, Figure 12) are measured on the
full WeChat network (≈10⁹ nodes, ≈1.4·10¹¹ edges) on 50–200 servers.  We
cannot run that workload, but LoCEC's phases are all per-node / per-edge
streaming computations, so the total cost decomposes as

``time(phase) = per_item_cost(phase) × num_items / (servers × cores × efficiency)``

The per-item costs are *calibrated* from real measurements on the local
simulator (:class:`CostCalibration` can be produced by timing a real run) or
taken from defaults back-solved from the paper's own Table VI, which is what
keeps the projected shapes (linear in nodes, inverse in servers, Phase I
dominating) faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ModelConfigError

#: Reference WeChat-scale workload reported by the paper.
WECHAT_NUM_NODES = 1_000_000_000
WECHAT_NUM_EDGES = 140_000_000_000
WECHAT_NUM_COMMUNITIES = 5_200_000_000
REFERENCE_SERVERS = 100
REFERENCE_CORES_PER_SERVER = 12


@dataclass
class CostCalibration:
    """Per-item processing costs (in core-seconds).

    The defaults are back-solved from Table VI of the paper: with 100 servers
    × 12 cores, Phase I took 46.5 h over 10⁹ nodes, Phase II 15.3 h over
    5.2·10⁹ communities and Phase III 7.4 h over 1.4·10¹¹ edges.
    """

    phase1_per_node: float = 46.5 * 3600 * REFERENCE_SERVERS * REFERENCE_CORES_PER_SERVER / WECHAT_NUM_NODES
    phase2_per_community: float = 15.3 * 3600 * REFERENCE_SERVERS * REFERENCE_CORES_PER_SERVER / WECHAT_NUM_COMMUNITIES
    phase3_per_edge: float = 7.4 * 3600 * REFERENCE_SERVERS * REFERENCE_CORES_PER_SERVER / WECHAT_NUM_EDGES
    training_hours: float = 4.5
    parallel_efficiency: float = 1.0

    def validate(self) -> None:
        if min(self.phase1_per_node, self.phase2_per_community, self.phase3_per_edge) <= 0:
            raise ModelConfigError("per-item costs must be positive")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ModelConfigError("parallel_efficiency must be in (0, 1]")

    @classmethod
    def from_measurements(
        cls,
        phase1_seconds: float,
        num_nodes: int,
        phase2_seconds: float,
        num_communities: int,
        phase3_seconds: float,
        num_edges: int,
        training_hours: float = 4.5,
    ) -> "CostCalibration":
        """Calibrate per-item costs from a measured local (single-core) run."""
        if min(num_nodes, num_communities, num_edges) <= 0:
            raise ModelConfigError("calibration item counts must be positive")
        return cls(
            phase1_per_node=phase1_seconds / num_nodes,
            phase2_per_community=phase2_seconds / num_communities,
            phase3_per_edge=phase3_seconds / num_edges,
            training_hours=training_hours,
        )


@dataclass
class TransportCalibration:
    """Measured cost of shipping the graph to one worker, per transport.

    ``pickle_seconds`` is the measured deserialize time of one full graph
    copy — every worker pays it under pickle transport, so fleet startup is
    linear in both graph size and worker count.  ``attach_seconds`` is the
    measured cost of attaching the published shared-memory segments, O(1) in
    graph size; ``publish_seconds`` is the one-time parent-side publish cost
    paid once per pool.  Produce one with :func:`from_measurements` from real
    timings (``repro.runtime.scalability.measure_transport`` does exactly
    that) and hand it to :class:`CostModel` to project fleet startup.
    """

    pickle_seconds: float
    attach_seconds: float
    publish_seconds: float = 0.0
    graph_bytes: int = 0
    """Pickled size of the full graph (per-worker bytes under pickle)."""
    handle_bytes: int = 0
    """Pickled size of the shm handle (per-worker bytes under shm)."""

    def validate(self) -> None:
        if min(self.pickle_seconds, self.attach_seconds, self.publish_seconds) < 0:
            raise ModelConfigError("transport costs must be non-negative")
        if self.graph_bytes < 0 or self.handle_bytes < 0:
            raise ModelConfigError("transport byte counts must be non-negative")

    @classmethod
    def from_measurements(
        cls,
        pickle_seconds: float,
        attach_seconds: float,
        publish_seconds: float = 0.0,
        graph_bytes: int = 0,
        handle_bytes: int = 0,
    ) -> "TransportCalibration":
        """Build a calibration from measured attach-vs-pickle timings."""
        calibration = cls(
            pickle_seconds=pickle_seconds,
            attach_seconds=attach_seconds,
            publish_seconds=publish_seconds,
            graph_bytes=graph_bytes,
            handle_bytes=handle_bytes,
        )
        calibration.validate()
        return calibration

    @property
    def attach_speedup(self) -> float:
        """How much faster one worker starts under shm than under pickle."""
        if self.attach_seconds <= 0:
            return float("inf")
        return self.pickle_seconds / self.attach_seconds

    def worker_startup_seconds(self, transport: str) -> float:
        """Graph-shipping cost of starting one worker under ``transport``."""
        if transport == "shm":
            return self.attach_seconds
        if transport == "pickle":
            return self.pickle_seconds
        raise ModelConfigError(
            f"transport must be 'pickle' or 'shm', got {transport!r}"
        )

    def fleet_startup_seconds(self, transport: str, num_workers: int) -> float:
        """Total graph-shipping cost of starting ``num_workers`` workers."""
        if num_workers < 1:
            raise ModelConfigError("num_workers must be >= 1")
        total = self.worker_startup_seconds(transport) * num_workers
        if transport == "shm":
            total += self.publish_seconds
        return total


@dataclass
class Phase2ScalingCalibration:
    """Measured serial-vs-sharded Phase II aggregation scaling.

    The sharded Phase II path (:class:`repro.runtime.phase2_exec.
    Phase2ShardedRunner`) trades a fixed per-call overhead — shard
    partitioning, the one-time kernel publish amortized across calls, block
    merging — for spreading the per-community kernel cost over workers.  The
    calibration captures both sides from real sweeps
    (:func:`repro.runtime.scalability.measure_phase2_scaling`) so the model
    can answer the operational question: *from how many communities up does
    sharding win?*
    """

    serial_seconds_per_community: float
    """Per-community cost of the serial batched kernel (core-seconds)."""
    sharded_seconds_per_community: float
    """Per-community worker compute cost under the sharded path."""
    sharded_overhead_seconds: float = 0.0
    """Fixed per-call cost of the sharded path: partition + publish + merge."""
    num_workers: int = 4
    """Worker count the sharded side was measured (or projected) at."""

    def validate(self) -> None:
        if self.serial_seconds_per_community <= 0:
            raise ModelConfigError("serial_seconds_per_community must be positive")
        if self.sharded_seconds_per_community <= 0:
            raise ModelConfigError("sharded_seconds_per_community must be positive")
        if self.sharded_overhead_seconds < 0:
            raise ModelConfigError("sharded_overhead_seconds must be non-negative")
        if self.num_workers < 1:
            raise ModelConfigError("num_workers must be >= 1")

    @classmethod
    def from_measurements(
        cls,
        serial_seconds: float,
        sharded_compute_seconds: float,
        sharded_overhead_seconds: float,
        num_communities: int,
        num_workers: int,
    ) -> "Phase2ScalingCalibration":
        """Calibrate from one measured serial run and one sharded run."""
        if num_communities <= 0:
            raise ModelConfigError("num_communities must be positive")
        calibration = cls(
            serial_seconds_per_community=serial_seconds / num_communities,
            sharded_seconds_per_community=sharded_compute_seconds / num_communities,
            sharded_overhead_seconds=sharded_overhead_seconds,
            num_workers=num_workers,
        )
        calibration.validate()
        return calibration

    def serial_seconds(self, num_communities: int) -> float:
        """Projected serial aggregation seconds for a community batch."""
        return self.serial_seconds_per_community * num_communities

    def sharded_seconds(
        self, num_communities: int, num_workers: int | None = None
    ) -> float:
        """Projected sharded makespan: compute spread over workers + overhead."""
        workers = self.num_workers if num_workers is None else num_workers
        if workers < 1:
            raise ModelConfigError("num_workers must be >= 1")
        return (
            self.sharded_seconds_per_community * num_communities / workers
            + self.sharded_overhead_seconds
        )

    def speedup(self, num_communities: int, num_workers: int | None = None) -> float:
        """Projected serial/sharded ratio at a given batch size."""
        sharded = self.sharded_seconds(num_communities, num_workers)
        if sharded <= 0:
            return float("inf")
        return self.serial_seconds(num_communities) / sharded

    def crossover_communities(self, num_workers: int | None = None) -> float:
        """Community count above which the sharded path wins.

        Solves ``serial(n) = sharded(n)`` for ``n``; ``inf`` when the
        sharded per-community cost divided by workers never undercuts the
        serial cost (sharding then never pays off at this worker count).
        """
        workers = self.num_workers if num_workers is None else num_workers
        if workers < 1:
            raise ModelConfigError("num_workers must be >= 1")
        margin = (
            self.serial_seconds_per_community
            - self.sharded_seconds_per_community / workers
        )
        if margin <= 0:
            return float("inf")
        return self.sharded_overhead_seconds / margin


@dataclass
class ClusterSpec:
    """A compute cluster: servers × cores per server."""

    num_servers: int = REFERENCE_SERVERS
    cores_per_server: int = REFERENCE_CORES_PER_SERVER

    @property
    def total_cores(self) -> int:
        return self.num_servers * self.cores_per_server


@dataclass
class WorkloadSpec:
    """A network-scale workload: node/edge/community counts."""

    num_nodes: int = WECHAT_NUM_NODES
    num_edges: int = WECHAT_NUM_EDGES
    num_communities: int = WECHAT_NUM_COMMUNITIES

    @classmethod
    def scaled_wechat(cls, num_nodes: int) -> "WorkloadSpec":
        """A workload with WeChat-like edge/community densities at ``num_nodes``."""
        scale = num_nodes / WECHAT_NUM_NODES
        return cls(
            num_nodes=num_nodes,
            num_edges=int(WECHAT_NUM_EDGES * scale),
            num_communities=int(WECHAT_NUM_COMMUNITIES * scale),
        )


@dataclass
class RuntimeEstimate:
    """Projected wall-clock hours per phase (Table VI layout)."""

    training_hours: float
    phase1_hours: float
    phase2_hours: float
    phase3_hours: float

    @property
    def total_hours(self) -> float:
        return (
            self.training_hours
            + self.phase1_hours
            + self.phase2_hours
            + self.phase3_hours
        )

    def as_row(self) -> dict[str, float]:
        return {
            "Training": round(self.training_hours, 1),
            "Phase I": round(self.phase1_hours, 1),
            "Phase II": round(self.phase2_hours, 1),
            "Phase III": round(self.phase3_hours, 1),
            "Total": round(self.total_hours, 1),
        }


@dataclass
class CostModel:
    """Projects LoCEC run time for a workload on a cluster."""

    calibration: CostCalibration = field(default_factory=CostCalibration)
    transport: TransportCalibration | None = None
    """Optional measured attach-vs-pickle shipping costs; enables
    :meth:`startup_overhead_hours`."""
    phase2_scaling: Phase2ScalingCalibration | None = None
    """Optional measured serial-vs-sharded Phase II aggregation scaling;
    enables :meth:`phase2_crossover_communities` and
    :meth:`phase2_speedup`."""

    def __post_init__(self) -> None:
        self.calibration.validate()
        if self.transport is not None:
            self.transport.validate()
        if self.phase2_scaling is not None:
            self.phase2_scaling.validate()

    def _require_phase2_scaling(self) -> Phase2ScalingCalibration:
        if self.phase2_scaling is None:
            raise ModelConfigError(
                "CostModel needs a Phase2ScalingCalibration to project "
                "sharded Phase II scaling"
            )
        return self.phase2_scaling

    def phase2_crossover_communities(self, num_workers: int | None = None) -> float:
        """Community count above which sharded Phase II beats serial."""
        return self._require_phase2_scaling().crossover_communities(num_workers)

    def phase2_speedup(
        self, num_communities: int, num_workers: int | None = None
    ) -> float:
        """Projected serial/sharded Phase II ratio for a batch size."""
        return self._require_phase2_scaling().speedup(num_communities, num_workers)

    def startup_overhead_hours(self, transport: str, cluster: ClusterSpec) -> float:
        """Projected fleet startup cost (graph shipping) in wall-clock hours.

        One worker per core: under pickle transport every core deserializes
        its own graph copy, under shm each server publishes once and every
        core attaches in O(1).  Requires a :class:`TransportCalibration`.
        """
        if self.transport is None:
            raise ModelConfigError(
                "CostModel needs a TransportCalibration to project startup cost"
            )
        return (
            self.transport.fleet_startup_seconds(transport, cluster.total_cores)
            / 3600.0
        )

    def estimate(
        self,
        workload: WorkloadSpec,
        cluster: ClusterSpec,
        include_training: bool = True,
    ) -> RuntimeEstimate:
        """Projected per-phase hours of one LoCEC-CNN run."""
        effective_cores = cluster.total_cores * self.calibration.parallel_efficiency
        if effective_cores <= 0:
            raise ModelConfigError("cluster must have at least one effective core")
        to_hours = 1.0 / 3600.0
        return RuntimeEstimate(
            training_hours=self.calibration.training_hours if include_training else 0.0,
            phase1_hours=self.calibration.phase1_per_node
            * workload.num_nodes
            / effective_cores
            * to_hours,
            phase2_hours=self.calibration.phase2_per_community
            * workload.num_communities
            / effective_cores
            * to_hours,
            phase3_hours=self.calibration.phase3_per_edge
            * workload.num_edges
            / effective_cores
            * to_hours,
        )

    def incremental_estimate(
        self,
        num_dirty_egos: int,
        num_dirty_communities: int,
        num_touched_edges: int,
        cores: int = 1,
    ) -> RuntimeEstimate:
        """Projected cost of one ``LoCEC.apply_updates`` batch.

        An incremental update pays the per-item phase costs only for the
        *dirty* slice of the workload — Phase I re-division per dirty ego,
        Phase II re-aggregation per dirty community, Phase III
        re-featurization per touched edge — so the projection scales with
        the delta, not the graph (the property the
        ``serving_update_*_incremental`` benchmark ratio-gates).  Training
        hours are always zero: updates keep the fitted models warm.
        """
        if min(num_dirty_egos, num_dirty_communities, num_touched_edges) < 0:
            raise ModelConfigError("incremental workload counts must be >= 0")
        return self.estimate(
            WorkloadSpec(
                num_nodes=num_dirty_egos,
                num_edges=num_touched_edges,
                num_communities=num_dirty_communities,
            ),
            ClusterSpec(num_servers=1, cores_per_server=cores),
            include_training=False,
        )

    def sweep_nodes(
        self,
        node_counts: list[int],
        cluster: ClusterSpec,
    ) -> list[tuple[int, RuntimeEstimate]]:
        """Figure 12(a): run time as the number of input nodes grows."""
        return [
            (count, self.estimate(WorkloadSpec.scaled_wechat(count), cluster, include_training=False))
            for count in node_counts
        ]

    def sweep_servers(
        self,
        server_counts: list[int],
        workload: WorkloadSpec | None = None,
        cores_per_server: int = REFERENCE_CORES_PER_SERVER,
    ) -> list[tuple[int, RuntimeEstimate]]:
        """Figure 12(b): run time as the number of servers grows."""
        workload = workload or WorkloadSpec()
        return [
            (
                count,
                self.estimate(
                    workload,
                    ClusterSpec(num_servers=count, cores_per_server=cores_per_server),
                    include_training=False,
                ),
            )
            for count in server_counts
        ]
