"""Synthetic WeChat-like data generation (substitute for the proprietary dataset)."""

from repro.synthetic.config import (
    CircleConfig,
    GroupConfig,
    InteractionProfile,
    WeChatConfig,
)
from repro.synthetic.groups import ChatGroup, GroupCollection, generate_groups
from repro.synthetic.interactions_gen import sample_interaction_delta
from repro.synthetic.network import (
    Circle,
    SocialNetworkDataset,
    generate_network,
)
from repro.synthetic.survey import SurveyResult, run_survey
from repro.synthetic.users import UserProfile, generate_profiles, profiles_to_store
from repro.synthetic.workloads import ExperimentWorkload, cached_workload, make_workload

__all__ = [
    "WeChatConfig",
    "CircleConfig",
    "GroupConfig",
    "InteractionProfile",
    "Circle",
    "SocialNetworkDataset",
    "generate_network",
    "ChatGroup",
    "GroupCollection",
    "generate_groups",
    "SurveyResult",
    "run_survey",
    "UserProfile",
    "generate_profiles",
    "profiles_to_store",
    "ExperimentWorkload",
    "make_workload",
    "cached_workload",
    "sample_interaction_delta",
]
