"""Synthetic user survey (the ground-truth collection process of Section II).

The paper pays a sample of users to label the relationship type of their
contacts; the first category is mandatory, the second optional.  This module
simulates that process on a synthetic network, producing the
:class:`repro.types.LabeledEdge` set (``E_labeled``) and the Table I style
category statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.synthetic.config import WeChatConfig
from repro.synthetic.network import SocialNetworkDataset
from repro.types import (
    Edge,
    LabeledEdge,
    Node,
    RelationType,
    SecondCategory,
    canonical_edge,
)

#: Conditional second-category distribution given the first category,
#: matching the ratios of Table I (renormalised within each first category).
SECOND_CATEGORY_DISTRIBUTION: dict[RelationType, list[tuple[SecondCategory, float]]] = {
    RelationType.FAMILY: [
        (SecondCategory.KIN, 0.16 / 0.28),
        (SecondCategory.IN_LAW, 0.05 / 0.28),
        (SecondCategory.FAMILY_UNKNOWN, 0.07 / 0.28),
    ],
    RelationType.COLLEAGUE: [
        (SecondCategory.CURRENT_COLLEAGUE, 0.14 / 0.41),
        (SecondCategory.PAST_COLLEAGUE, 0.25 / 0.41),
        (SecondCategory.COLLEAGUE_UNKNOWN, 0.03 / 0.41),
    ],
    RelationType.SCHOOLMATE: [
        (SecondCategory.PRIMARY_SCHOOL, 0.02 / 0.15),
        (SecondCategory.MIDDLE_SCHOOL, 0.04 / 0.15),
        (SecondCategory.UNIVERSITY, 0.08 / 0.15),
        (SecondCategory.SCHOOL_UNKNOWN, 0.01 / 0.15),
    ],
    RelationType.OTHER: [
        (SecondCategory.INTEREST, 0.09 / 0.16),
        (SecondCategory.BUSINESS, 0.01 / 0.16),
        (SecondCategory.AGENT, 0.01 / 0.16),
        (SecondCategory.OTHER_UNKNOWN, 0.05 / 0.16),
    ],
}


@dataclass
class SurveyResult:
    """Output of the synthetic survey."""

    surveyed_users: list[Node]
    labeled_edges: list[LabeledEdge] = field(default_factory=list)

    @property
    def num_labeled(self) -> int:
        return len(self.labeled_edges)

    def first_category_ratios(self) -> dict[RelationType, float]:
        """Fraction of labeled edges per first category (Table I, column 2)."""
        total = len(self.labeled_edges)
        if total == 0:
            return {}
        ratios: dict[RelationType, float] = {}
        for relation in RelationType:
            count = sum(1 for item in self.labeled_edges if item.label == relation)
            if count:
                ratios[relation] = count / total
        return ratios

    def second_category_ratios(self) -> dict[SecondCategory, float]:
        """Fraction of labeled edges per second category (Table I, column 4)."""
        total = len(self.labeled_edges)
        if total == 0:
            return {}
        ratios: dict[SecondCategory, float] = {}
        for item in self.labeled_edges:
            if item.second_category is None:
                continue
            ratios[item.second_category] = ratios.get(item.second_category, 0.0) + 1
        return {category: count / total for category, count in ratios.items()}

    def major_type_edges(self) -> list[LabeledEdge]:
        """Labeled edges restricted to the three major types (the paper's focus)."""
        targets = set(RelationType.classification_targets())
        return [item for item in self.labeled_edges if item.label in targets]


def run_survey(
    dataset: SocialNetworkDataset,
    config: WeChatConfig | None = None,
    seed: int | None = None,
) -> SurveyResult:
    """Simulate the user survey on a synthetic network.

    A fraction of users is sampled; each surveyed user labels most of its
    friends with their true first category, and — with probability
    ``1 - survey_unknown_second_prob`` — a second category drawn from the
    Table I conditional distribution.
    """
    config = config or dataset.config
    rng = random.Random(config.seed + 7919 if seed is None else seed)

    users = [node for node in dataset.graph.nodes() if dataset.graph.degree(node) > 0]
    num_surveyed = max(1, int(round(len(users) * config.surveyed_user_fraction)))
    surveyed = rng.sample(users, num_surveyed)

    seen: set[Edge] = set()
    labeled: list[LabeledEdge] = []
    for user in surveyed:
        for friend in dataset.graph.neighbors(user):
            edge = canonical_edge(user, friend)
            if edge in seen:
                continue
            if rng.random() >= config.survey_friend_coverage:
                continue
            seen.add(edge)
            label = dataset.edge_types[edge]
            second = _sample_second_category(label, config, rng)
            labeled.append(
                LabeledEdge(u=edge[0], v=edge[1], label=label, second_category=second)
            )
    return SurveyResult(surveyed_users=surveyed, labeled_edges=labeled)


def _sample_second_category(
    label: RelationType, config: WeChatConfig, rng: random.Random
) -> SecondCategory | None:
    if rng.random() < config.survey_unknown_second_prob:
        return None
    distribution = SECOND_CATEGORY_DISTRIBUTION.get(label)
    if not distribution:
        return None
    threshold = rng.random()
    cumulative = 0.0
    for category, probability in distribution:
        cumulative += probability
        if threshold <= cumulative:
            return category
    return distribution[-1][0]
