"""Synthetic chat groups with (occasionally indicative) names.

Used for the Figure 2 common-group analysis and the Table II rule-based
group-name classifier.  Most group names are generic; a small fraction
contains a pattern that reveals the underlying circle type ("... Family",
"... Department", "Class of ..."), which is why the rule-based classifier
achieves high precision but very low recall in the paper.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.synthetic.config import WeChatConfig
from repro.types import Edge, Node, RelationType, canonical_edge

INDICATIVE_NAME_TEMPLATES: dict[RelationType, list[str]] = {
    RelationType.FAMILY: ["{} Family", "The {} Household", "{} Family Reunion"],
    RelationType.COLLEAGUE: [
        "{} Department",
        "{} Project Team",
        "{} Company All-Hands",
    ],
    RelationType.SCHOOLMATE: [
        "Class of {} Middle School",
        "{} University Alumni",
        "Grade {} Classmates",
    ],
}

GENERIC_NAME_TEMPLATES = [
    "Happy Group {}",
    "Weekend Plans {}",
    "Foodies {}",
    "Best Friends {}",
    "Chat {}",
    "Travel Buddies {}",
    "Night Owls {}",
]


@dataclass(frozen=True)
class ChatGroup:
    """A chat group: a name plus a member set (and its true circle type)."""

    group_id: int
    name: str
    members: frozenset[Node]
    circle_type: RelationType

    @property
    def size(self) -> int:
        return len(self.members)

    def member_pairs(self) -> list[Edge]:
        """All unordered member pairs (canonical form)."""
        return [
            canonical_edge(u, v) for u, v in itertools.combinations(sorted(self.members, key=repr), 2)
        ]


@dataclass
class GroupCollection:
    """All chat groups of one synthetic network."""

    groups: list[ChatGroup] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups)

    def common_group_counts(self) -> dict[Edge, int]:
        """Number of common groups for every pair that shares at least one group."""
        counts: dict[Edge, int] = {}
        for group in self.groups:
            for pair in group.member_pairs():
                counts[pair] = counts.get(pair, 0) + 1
        return counts

    def groups_of(self, node: Node) -> list[ChatGroup]:
        return [group for group in self.groups if node in group.members]


def generate_groups(
    circles: list[tuple[RelationType, list[Node]]],
    config: WeChatConfig,
    rng: random.Random,
) -> GroupCollection:
    """Generate chat groups from social circles.

    Each circle spawns a Poisson-distributed number of groups; every group
    includes a random subset of the circle members and receives either an
    indicative or a generic name.
    """
    collection = GroupCollection()
    next_group_id = 0
    for circle_type, members in circles:
        group_config = config.groups.get(circle_type)
        if group_config is None or len(members) < 2:
            continue
        num_groups = _poisson(group_config.groups_per_circle, rng)
        for _ in range(num_groups):
            joined = [
                member
                for member in members
                if rng.random() < group_config.member_participation
            ]
            if len(joined) < 2:
                continue
            indicative = (
                circle_type in INDICATIVE_NAME_TEMPLATES
                and rng.random() < group_config.indicative_name_prob
            )
            if indicative:
                template = rng.choice(INDICATIVE_NAME_TEMPLATES[circle_type])
                name = template.format(rng.randint(1, 999))
            else:
                name = rng.choice(GENERIC_NAME_TEMPLATES).format(rng.randint(1, 9999))
            collection.groups.append(
                ChatGroup(
                    group_id=next_group_id,
                    name=name,
                    members=frozenset(joined),
                    circle_type=circle_type,
                )
            )
            next_group_id += 1
    return collection


def _poisson(rate: float, rng: random.Random) -> int:
    """Sample a Poisson variate via inversion (small rates only)."""
    if rate <= 0:
        return 0
    threshold = rng.random()
    cumulative = 0.0
    probability = 2.718281828459045 ** (-rate)
    k = 0
    while cumulative + probability < threshold and k < 50:
        cumulative += probability
        k += 1
        probability *= rate / k
    return k
